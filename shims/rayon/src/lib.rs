//! Offline API-subset shim of `rayon`.
//!
//! Provides the `par_iter().map(..).collect()` shape the workspace's hot
//! paths use — ensemble training and batch inference — backed by real
//! parallelism: the input slice is chunked across `std::thread::scope`
//! threads (one per available core) and results are reassembled in order,
//! so `collect()` observes exactly the sequential ordering.
//!
//! Unlike real rayon there is no work-stealing pool; each `collect()` spawns
//! short-lived scoped threads. For the coarse-grained tasks here (training a
//! base classifier, scoring a feature row) the spawn cost is noise.

#![deny(unsafe_code)]

use std::num::NonZeroUsize;
use std::thread;

/// Everything downstream code imports via `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{FromParallelResults, IntoParallelRefIterator, ParIter, ParMap};
}

/// Number of worker threads used for a job of `len` independent items.
fn num_workers(len: usize) -> usize {
    let cores = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(len).max(1)
}

/// Runs `f` over every element of `items` on scoped worker threads and
/// returns the outputs in input order.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let workers = num_workers(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        for chunk in items.chunks(chunk_len) {
            let (slot, tail) = rest.split_at_mut(chunk.len());
            rest = tail;
            scope.spawn(move || {
                for (dst, item) in slot.iter_mut().zip(chunk) {
                    *dst = Some(f(item));
                }
            });
        }
    });
    out.into_iter()
        .map(|r| r.expect("worker thread filled every slot"))
        .collect()
}

/// Conversion from `&collection` to a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type yielded by reference.
    type Item: Sync + 'a;

    /// Borrowing parallel iterator over the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A pending parallel map, consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Evaluates the map on worker threads and gathers the results.
    pub fn collect<C: FromParallelResults<R>>(self) -> C {
        C::from_results(parallel_map(self.items, &self.f))
    }
}

/// Collection targets for [`ParMap::collect`] — the shim's stand-in for
/// rayon's `FromParallelIterator`.
pub trait FromParallelResults<R>: Sized {
    /// Builds the collection from the in-order mapped results.
    fn from_results(results: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_results(results: Vec<R>) -> Vec<R> {
        results
    }
}

impl<T, E> FromParallelResults<Result<T, E>> for Result<Vec<T>, E> {
    fn from_results(results: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn result_collection_short_circuits_to_first_error() {
        let xs: Vec<u64> = (0..100).collect();
        let ok: Result<Vec<u64>, String> = xs.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u64>, String> = xs
            .par_iter()
            .map(|&x| {
                if x == 41 {
                    Err(format!("boom {x}"))
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom 41");
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let none: Vec<u8> = Vec::new();
        let out: Vec<u8> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn really_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let xs: Vec<u64> = (0..64).collect();
        let _out: Vec<()> = xs
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(
                threads > 1,
                "expected parallel execution, saw {threads} thread(s)"
            );
        }
    }
}
