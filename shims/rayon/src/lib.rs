//! Offline API-subset shim of `rayon`.
//!
//! Provides the `par_iter().map(..).collect()` shape the workspace's hot
//! paths use — ensemble training and batch inference — backed by real
//! parallelism on a **persistent worker pool**: one worker thread per
//! available core is spawned lazily on first use and kept alive for the
//! process lifetime, fed through a channel. Each `collect()` chunks the
//! input across the workers and reassembles results in order, so callers
//! observe exactly the sequential ordering.
//!
//! Compared with spawning `std::thread::scope` threads per call (the
//! previous design), the pool removes thread-spawn latency from every
//! `detect_batch`, which dominated small-batch serving cost. Nested
//! `par_iter` calls from inside a worker run inline on that worker — the
//! work is already parallel one level up, and blocking a fixed-size pool on
//! its own queue could deadlock it.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// Everything downstream code imports via `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::{FromParallelResults, IntoParallelRefIterator, ParIter, ParMap};
}

/// A unit of work shipped to the pool. Tasks are lifetime-erased closures;
/// soundness is provided by the submitting call, which always blocks on a
/// completion latch before returning (see [`parallel_map`]).
type Task = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    sender: Mutex<mpsc::Sender<Task>>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set on pool workers so nested parallel calls run inline instead of
    /// re-entering (and potentially deadlocking) the fixed-size pool.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        let (sender, receiver) = mpsc::channel::<Task>();
        let receiver = Arc::new(Mutex::new(receiver));
        for i in 0..workers {
            let receiver = Arc::clone(&receiver);
            thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || {
                    IS_POOL_WORKER.with(|flag| flag.set(true));
                    loop {
                        // Hold the lock only while dequeuing, never while
                        // running a task.
                        let task = match receiver.lock() {
                            Ok(guard) => guard.recv(),
                            Err(_) => break,
                        };
                        match task {
                            Ok(task) => task(),
                            Err(_) => break, // channel closed: process exit
                        }
                    }
                })
                .expect("spawn rayon-shim worker");
        }
        Pool {
            sender: Mutex::new(sender),
            workers,
        }
    })
}

/// Number of threads the persistent pool runs (rayon's API of the same
/// name). Callers use this to skip chunking overhead on single-core hosts.
pub fn current_num_threads() -> usize {
    pool().workers
}

/// Counts outstanding chunks of one `parallel_map` call; the submitting
/// thread blocks on it before returning, which is what makes the lifetime
/// erasure of [`Task`] sound.
struct Latch {
    remaining: Mutex<usize>,
    all_done: Condvar,
}

impl Latch {
    fn new(count: usize) -> Latch {
        Latch {
            remaining: Mutex::new(count),
            all_done: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        *remaining -= 1;
        if *remaining == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock");
        while *remaining > 0 {
            remaining = self.all_done.wait(remaining).expect("latch wait");
        }
    }
}

/// Waits on the latch when dropped, so the submitting stack frame cannot be
/// unwound (e.g. by a panic in the inline chunk) while workers still hold
/// borrows into it.
struct WaitOnDrop<'a>(&'a Latch);

impl Drop for WaitOnDrop<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// Runs `f` over every element of `items` on the persistent worker pool and
/// returns the outputs in input order.
fn parallel_map<'a, T, R, F>(items: &'a [T], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    let on_worker = IS_POOL_WORKER.with(|flag| flag.get());
    if items.len() <= 1 || on_worker {
        return items.iter().map(f).collect();
    }
    let pool = pool();
    let workers = pool.workers.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let chunk_len = items.len().div_ceil(workers);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);

    let num_chunks = items.len().div_ceil(chunk_len);
    let latch = Latch::new(num_chunks - 1); // first chunk runs inline
    let panicked = AtomicBool::new(false);

    {
        // From here until the latch opens, workers may hold borrows of
        // `items`, `f`, `out` slots, `latch` and `panicked`; the guard waits
        // even if this frame unwinds.
        let _guard = WaitOnDrop(&latch);
        let mut slots = out.as_mut_slice();
        let mut inline: Option<(&mut [Option<R>], &'a [T])> = None;
        for (index, chunk) in items.chunks(chunk_len).enumerate() {
            let (slot, rest) = slots.split_at_mut(chunk.len());
            slots = rest;
            if index == 0 {
                inline = Some((slot, chunk));
                continue;
            }
            let latch = &latch;
            let panicked = &panicked;
            let job = move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    for (dst, item) in slot.iter_mut().zip(chunk) {
                        *dst = Some(f(item));
                    }
                }));
                if outcome.is_err() {
                    panicked.store(true, Ordering::SeqCst);
                }
                latch.count_down();
            };
            let job: Box<dyn FnOnce() + Send + '_> = Box::new(job);
            // SAFETY: the task borrows stack data of this call, but the
            // latch guarantees — including on unwind, via `_guard` — that
            // this frame outlives every submitted task. Erasing the borrow
            // lifetime to `'static` is therefore sound: no task can run
            // after the borrows expire.
            #[allow(clippy::missing_transmute_annotations)]
            let job: Task = unsafe { std::mem::transmute(job) };
            pool.sender
                .lock()
                .expect("pool sender lock")
                .send(job)
                .expect("pool workers alive for process lifetime");
        }
        // The submitting thread works too: zero hand-off latency for the
        // first chunk, and the pool only ever serves the remainder.
        let (slot, chunk) = inline.expect("at least two chunks");
        for (dst, item) in slot.iter_mut().zip(chunk) {
            *dst = Some(f(item));
        }
    }

    if panicked.load(Ordering::SeqCst) {
        panic!("a rayon shim worker task panicked");
    }
    out.into_iter()
        .map(|r| r.expect("worker thread filled every slot"))
        .collect()
}

/// Conversion from `&collection` to a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'a> {
    /// The element type yielded by reference.
    type Item: Sync + 'a;

    /// Borrowing parallel iterator over the collection.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A pending parallel map, consumed by [`ParMap::collect`].
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T, R, F> ParMap<'a, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    /// Evaluates the map on the worker pool and gathers the results.
    pub fn collect<C: FromParallelResults<R>>(self) -> C {
        C::from_results(parallel_map(self.items, &self.f))
    }
}

/// Collection targets for [`ParMap::collect`] — the shim's stand-in for
/// rayon's `FromParallelIterator`.
pub trait FromParallelResults<R>: Sized {
    /// Builds the collection from the in-order mapped results.
    fn from_results(results: Vec<R>) -> Self;
}

impl<R> FromParallelResults<R> for Vec<R> {
    fn from_results(results: Vec<R>) -> Vec<R> {
        results
    }
}

impl<T, E> FromParallelResults<Result<T, E>> for Result<Vec<T>, E> {
    fn from_results(results: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
        results.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let xs: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<u64>>());
    }

    #[test]
    fn result_collection_short_circuits_to_first_error() {
        let xs: Vec<u64> = (0..100).collect();
        let ok: Result<Vec<u64>, String> = xs.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<u64>, String> = xs
            .par_iter()
            .map(|&x| {
                if x == 41 {
                    Err(format!("boom {x}"))
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom 41");
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let none: Vec<u8> = Vec::new();
        let out: Vec<u8> = none.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u8];
        let out: Vec<u8> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn really_runs_on_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        let xs: Vec<u64> = (0..64).collect();
        let _out: Vec<()> = xs
            .par_iter()
            .map(|_| {
                seen.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let threads = seen.lock().unwrap().len();
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores > 1 {
            assert!(
                threads > 1,
                "expected parallel execution, saw {threads} thread(s)"
            );
        }
    }

    #[test]
    fn worker_threads_persist_across_calls() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let mut rounds: Vec<HashSet<std::thread::ThreadId>> = Vec::new();
        let xs: Vec<u64> = (0..256).collect();
        for _ in 0..2 {
            let seen = Mutex::new(HashSet::new());
            let _out: Vec<()> = xs
                .par_iter()
                .map(|_| {
                    seen.lock().unwrap().insert(std::thread::current().id());
                    std::thread::sleep(std::time::Duration::from_micros(200));
                })
                .collect();
            rounds.push(seen.into_inner().unwrap());
        }
        // Ignoring the calling thread (which executes its chunk inline), any
        // pool thread observed twice proves workers outlive a single call.
        let caller = std::thread::current().id();
        let first: HashSet<_> = rounds[0].iter().filter(|&&id| id != caller).collect();
        let second: HashSet<_> = rounds[1].iter().filter(|&&id| id != caller).collect();
        if !first.is_empty() && !second.is_empty() {
            assert!(
                first.intersection(&second).next().is_some(),
                "expected the persistent pool to reuse worker threads"
            );
        }
    }

    #[test]
    fn nested_parallel_calls_do_not_deadlock() {
        let outer: Vec<u64> = (0..16).collect();
        let result: Vec<u64> = outer
            .par_iter()
            .map(|&x| {
                let inner: Vec<u64> = (0..8).collect();
                let sums: Vec<u64> = inner.par_iter().map(|&y| x * 10 + y).collect();
                sums.iter().sum()
            })
            .collect();
        assert_eq!(result.len(), 16);
        assert_eq!(result[1], (0..8).map(|y| 10 + y).sum::<u64>());
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let xs: Vec<u64> = (0..128).collect();
        let outcome = std::panic::catch_unwind(|| {
            let _out: Vec<u64> = xs
                .par_iter()
                .map(|&x| {
                    // Panic in a late chunk so it lands on a pool worker, not
                    // the caller's inline chunk.
                    assert!(x != 127, "task failure");
                    x
                })
                .collect();
        });
        assert!(outcome.is_err(), "worker panic must surface to the caller");
        // The pool must stay usable after a task panicked.
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 128);
    }
}
