//! Offline no-op shim of serde's derive macros.
//!
//! The workspace builds without a crates.io registry, so `#[derive(Serialize,
//! Deserialize)]` attributes in the source expand to nothing. Actual model
//! persistence is hand-rolled in `hmd_codec` (see `hmd_core::detector::persist`),
//! which does not rely on these derives.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
