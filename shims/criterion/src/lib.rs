//! Offline API-subset shim of `criterion`.
//!
//! Supports the `criterion_group!`/`criterion_main!` + `bench_function`
//! surface the workspace's benches use, backed by a plain wall-clock timing
//! loop: one warm-up iteration, then `sample_size` timed iterations, with
//! mean/min/max printed per benchmark. There is no statistical analysis,
//! HTML report or outlier rejection — the benches exist to track relative
//! regressions between PRs, and a mean over a fixed iteration count does
//! that offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver handed to every target of a `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Times `routine` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        bencher.report(id);
        self
    }
}

/// Per-benchmark iteration driver (the `b` in `b.iter(..)`).
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<40} (no samples — b.iter was never called)");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        println!(
            "{id:<40} mean {:>12} min {:>12} max {:>12} ({} samples)",
            fmt_duration(mean),
            fmt_duration(*min),
            fmt_duration(*max),
            self.samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group: a plain function that runs every target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running every group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_warmup_plus_samples() {
        let mut calls = 0usize;
        Criterion::default()
            .sample_size(5)
            .bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 6, "1 warm-up + 5 timed iterations");
    }

    #[test]
    fn duration_formatting_covers_all_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
