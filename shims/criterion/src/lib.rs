//! Offline API-subset shim of `criterion`.
//!
//! Supports the `criterion_group!`/`criterion_main!` + `bench_function`
//! surface the workspace's benches use, backed by a plain wall-clock timing
//! loop: one warm-up iteration, then `sample_size` timed iterations, with
//! mean/min/max printed per benchmark. There is no statistical analysis,
//! HTML report or outlier rejection — the benches exist to track relative
//! regressions between PRs, and a mean over a fixed iteration count does
//! that offline.
//!
//! Unlike real criterion, the shim can also emit **machine-readable
//! results**: configure [`Criterion::with_json_report`] and every
//! `bench_function` record (name, mean/min/max ns, and — when a
//! [`Throughput`] was declared — elements per iteration and derived
//! elements/second) is written as a JSON document when the `Criterion`
//! value drops, so CI and cross-PR tooling can diff performance without
//! scraping console output.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for the next benchmark (criterion's API subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many elements per iteration (e.g. the
    /// batch size of a batch-inference call).
    Elements(u64),
}

/// One finished benchmark, as recorded for the JSON report.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    mean_ns: u128,
    min_ns: u128,
    max_ns: u128,
    samples: usize,
    elements: Option<u64>,
}

impl Record {
    fn elements_per_sec(&self) -> Option<f64> {
        let elements = self.elements?;
        if self.mean_ns == 0 {
            return None;
        }
        Some(elements as f64 * 1e9 / self.mean_ns as f64)
    }

    fn to_json(&self) -> String {
        let mut fields = vec![
            format!("\"name\": {}", json_string(&self.id)),
            format!("\"mean_ns\": {}", self.mean_ns),
            format!("\"min_ns\": {}", self.min_ns),
            format!("\"max_ns\": {}", self.max_ns),
            format!("\"samples\": {}", self.samples),
        ];
        if let Some(elements) = self.elements {
            fields.push(format!("\"elements_per_iter\": {elements}"));
        }
        if let Some(rate) = self.elements_per_sec() {
            fields.push(format!("\"elements_per_sec\": {rate:.1}"));
        }
        format!("    {{{}}}", fields.join(", "))
    }
}

fn json_string(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Benchmark driver handed to every target of a `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
    next_throughput: Option<u64>,
    json_path: Option<PathBuf>,
    notes: Vec<(String, String)>,
    records: Vec<Record>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            next_throughput: None,
            json_path: None,
            notes: Vec::new(),
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Writes every recorded benchmark to `path` as a JSON document when
    /// this `Criterion` is dropped (i.e. at the end of the group).
    #[must_use]
    pub fn with_json_report(mut self, path: impl Into<PathBuf>) -> Criterion {
        self.json_path = Some(path.into());
        self
    }

    /// Attaches a free-form key/value note to the JSON report (pipeline
    /// name, scale, baseline numbers from earlier PRs, ...).
    pub fn json_note(&mut self, key: &str, value: impl Into<String>) -> &mut Criterion {
        self.notes.push((key.to_string(), value.into()));
        self
    }

    /// Declares the throughput of the *next* `bench_function` call, so its
    /// JSON record carries `elements_per_iter` and `elements_per_sec`.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Criterion {
        let Throughput::Elements(elements) = throughput;
        self.next_throughput = Some(elements);
        self
    }

    /// Times `routine` and prints a one-line summary.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        routine(&mut bencher);
        let elements = self.next_throughput.take();
        if bencher.samples.is_empty() {
            println!("{id:<40} (no samples — b.iter was never called)");
            return self;
        }
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / bencher.samples.len() as u32;
        let min = *bencher.samples.iter().min().expect("non-empty");
        let max = *bencher.samples.iter().max().expect("non-empty");
        let record = Record {
            id: id.to_string(),
            mean_ns: mean.as_nanos(),
            min_ns: min.as_nanos(),
            max_ns: max.as_nanos(),
            samples: bencher.samples.len(),
            elements,
        };
        let rate = record
            .elements_per_sec()
            .map(|r| format!(" ({r:.0} elem/s)"))
            .unwrap_or_default();
        println!(
            "{id:<40} mean {:>12} min {:>12} max {:>12} ({} samples){rate}",
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            record.samples,
        );
        self.records.push(record);
        self
    }

    fn write_json_report(&self) {
        let Some(path) = &self.json_path else {
            return;
        };
        let mut doc = String::from("{\n");
        if !self.notes.is_empty() {
            doc.push_str("  \"notes\": {\n");
            let lines: Vec<String> = self
                .notes
                .iter()
                .map(|(k, v)| format!("    {}: {}", json_string(k), json_string(v)))
                .collect();
            doc.push_str(&lines.join(",\n"));
            doc.push_str("\n  },\n");
        }
        doc.push_str("  \"results\": [\n");
        let lines: Vec<String> = self.records.iter().map(Record::to_json).collect();
        doc.push_str(&lines.join(",\n"));
        doc.push_str("\n  ]\n}\n");
        if let Err(err) = std::fs::write(path, doc) {
            eprintln!("criterion shim: failed to write {}: {err}", path.display());
        } else {
            println!("json report written to {}", path.display());
        }
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.write_json_report();
    }
}

/// Per-benchmark iteration driver (the `b` in `b.iter(..)`).
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` timed iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group: a plain function that runs every target.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, running every group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_warmup_plus_samples() {
        let mut calls = 0usize;
        Criterion::default()
            .sample_size(5)
            .bench_function("counting", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 6, "1 warm-up + 5 timed iterations");
    }

    #[test]
    fn duration_formatting_covers_all_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }

    #[test]
    fn json_report_is_written_with_throughput_and_notes() {
        let path = std::env::temp_dir().join("criterion_shim_report_test.json");
        let _ = std::fs::remove_file(&path);
        {
            let mut criterion = Criterion::default().sample_size(3).with_json_report(&path);
            criterion.json_note("pipeline", "test-pipeline");
            criterion.throughput(Throughput::Elements(64));
            criterion.bench_function("bench_64", |b| {
                b.iter(|| std::thread::sleep(Duration::from_micros(50)))
            });
            criterion.bench_function("no_throughput", |b| b.iter(|| 1 + 1));
        } // drop writes the report
        let text = std::fs::read_to_string(&path).expect("report written");
        assert!(text.contains("\"name\": \"bench_64\""));
        assert!(text.contains("\"elements_per_iter\": 64"));
        assert!(text.contains("\"elements_per_sec\":"));
        assert!(text.contains("\"pipeline\": \"test-pipeline\""));
        assert!(text.contains("\"no_throughput\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
    }
}
