//! Offline API-subset shim of the `rand` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the thin slice of the `rand` 0.8 API it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`] and [`seq::SliceRandom::shuffle`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — deterministic, fast and statistically solid for the
//! simulation workloads here. It does **not** reproduce the upstream
//! `StdRng` stream (upstream is ChaCha12), and makes no security claims.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform random source: 64 fresh bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore` (the shim's
/// equivalent of sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty f64 range");
        start + f64::sample(rng) * (end - start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < 2^-64 for the spans used here.
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty integer range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must lie in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion of the seed into the xoshiro state; this
            // is the initialisation recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (the subset of `rand::seq::SliceRandom` in use).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range_and_vary() {
        let mut rng = StdRng::seed_from_u64(1);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen::<f64>()).collect();
        assert!(samples.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&v));
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let k = rng.gen_range(-4..=4i64);
            assert!((-4..=4).contains(&k));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "rate {rate}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes_in_place() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut xs: Vec<u32> = (0..64).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(
            xs, sorted,
            "64 elements virtually never shuffle to identity"
        );
    }
}
