//! Offline API-subset shim of `serde`.
//!
//! `Serialize` / `Deserialize` exist both as marker traits and as no-op
//! derive macros so that `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile unchanged without a registry.
//! Real persistence of fitted detectors is provided by `hmd_codec`'s
//! hand-rolled JSON codec instead of serde's data model.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
