//! Facade crate for the HMD uncertainty workspace.
//!
//! This reproduction of *"Towards Improving the Trustworthiness of Hardware
//! based Malware Detector using Online Uncertainty Estimation"* (DAC 2021) is
//! split into focused crates; `hmd` re-exports them so applications and the
//! runnable examples only need a single dependency:
//!
//! * [`data`] ([`hmd_data`]) — datasets, matrices, splits, scalers.
//! * [`ml`] ([`hmd_ml`]) — hand-rolled learners, bagging, metrics, PCA, t-SNE.
//! * [`dvfs`] ([`hmd_dvfs`]) — the DVFS power-management HMD substrate.
//! * [`hpc`] ([`hmd_hpc`]) — the hardware-performance-counter HMD substrate.
//! * [`core`] ([`hmd_core`]) — the paper's contribution: online ensemble
//!   uncertainty estimation, rejection policies and the trusted HMD pipeline.
//!
//! # Quickstart
//!
//! ```
//! use hmd::core::trusted::TrustedHmdBuilder;
//! use hmd::dvfs::dataset::DvfsCorpusBuilder;
//! use hmd::ml::tree::DecisionTreeParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Simulate a small DVFS corpus and train a trusted HMD on it.
//! let split = DvfsCorpusBuilder::new()
//!     .with_samples_per_app(8)
//!     .with_trace_len(128)
//!     .build_split(1)?;
//! let hmd = TrustedHmdBuilder::new(DecisionTreeParams::new())
//!     .with_num_estimators(15)
//!     .fit(&split.train, 7)?;
//! let report = hmd.detect(split.unknown.features().row(0))?;
//! println!("decision: {:?}, entropy {:.3}", report.decision, report.prediction.entropy);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hmd_core as core;
pub use hmd_data as data;
pub use hmd_dvfs as dvfs;
pub use hmd_hpc as hpc;
pub use hmd_ml as ml;

/// Commonly used items, re-exported for convenient glob imports in examples
/// and applications.
pub mod prelude {
    pub use hmd_core::analysis::{EntropySummary, KnownUnknownEntropy};
    pub use hmd_core::estimator::{EnsembleUncertaintyEstimator, UncertainPrediction};
    pub use hmd_core::rejection::{threshold_grid, F1Curve, RejectionCurve, RejectionPolicy};
    pub use hmd_core::trusted::{Decision, TrustedHmd, TrustedHmdBuilder, UntrustedHmd};
    pub use hmd_data::{Dataset, Label, Matrix};
    pub use hmd_dvfs::dataset::DvfsCorpusBuilder;
    pub use hmd_hpc::dataset::HpcCorpusBuilder;
    pub use hmd_ml::bagging::BaggingParams;
    pub use hmd_ml::forest::RandomForestParams;
    pub use hmd_ml::logistic::LogisticRegressionParams;
    pub use hmd_ml::metrics::{f1_score, ClassificationReport};
    pub use hmd_ml::svm::LinearSvmParams;
    pub use hmd_ml::tree::DecisionTreeParams;
    pub use hmd_ml::{Classifier, Estimator};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_are_usable() {
        use crate::prelude::*;
        let policy = RejectionPolicy::new(0.4);
        assert!((policy.entropy_threshold - 0.4).abs() < 1e-12);
        assert_eq!(Label::Malware.index(), 1);
    }
}
