//! Facade crate for the HMD uncertainty workspace.
//!
//! This reproduction of *"Towards Improving the Trustworthiness of Hardware
//! based Malware Detector using Online Uncertainty Estimation"* (DAC 2021) is
//! split into focused crates; `hmd` re-exports them so applications and the
//! runnable examples only need a single dependency:
//!
//! * [`data`] ([`hmd_data`]) — datasets, matrices, splits, scalers.
//! * [`ml`] ([`hmd_ml`]) — hand-rolled learners, bagging, metrics, PCA, t-SNE.
//! * [`dvfs`] ([`hmd_dvfs`]) — the DVFS power-management HMD substrate.
//! * [`hpc`] ([`hmd_hpc`]) — the hardware-performance-counter HMD substrate.
//! * [`core`] ([`hmd_core`]) — the paper's contribution: online ensemble
//!   uncertainty estimation, rejection policies, the trusted HMD pipeline and
//!   the unified [`core::detector`] serving API.
//! * [`serve`] ([`hmd_serve`]) — the fleet serving layer: named, versioned,
//!   micro-batching detector endpoints with hot swap, rollback, sharded
//!   replicas with load-aware routing, and supervision — a background
//!   deadline flusher, bounded admission, per-replica circuit breakers,
//!   and a deterministic fault-injection harness. [`serve::net`] puts a
//!   length-prefixed loopback wire protocol (`PROTOCOL.md`) in front of a
//!   sharded fleet — [`serve::FleetServer`] / [`serve::FleetClient`] with
//!   backpressure, per-request deadlines, stable error codes, and
//!   deterministic client retry/backoff under injected transport faults.
//! * [`closed_loop`] ([`hmd_loop`]) — closes the online loop: Page–Hinkley
//!   drift detection over the fleet's reset-on-read window statistics,
//!   shadow champion/challenger deployment (the challenger scores the same
//!   served tiles into isolated statistics, so served rows stay
//!   bit-identical to the champion), and the caller-driven
//!   [`closed_loop::LoopSupervisor`] state machine that retrains on a
//!   labelled sliding window, promotes through a gate, verifies, and rolls
//!   back automatically on regression — with an auditable
//!   [`closed_loop::LoopEvent`] log. See the "Closed-loop serving" section
//!   of `ARCHITECTURE.md` and `examples/closed_loop.rs`.
//! * [`threat`] ([`hmd_threat`]) — adversarial threat corpora layered over
//!   the streaming generators: mimicry blending, gradual drift schedules,
//!   sensor dropout/saturation/stuck-at faults, and perturbation-bounded
//!   black-box evasion search against fitted detectors. See the "Threat
//!   corpora & robustness evaluation" section of `ARCHITECTURE.md`.
//!
//! `ARCHITECTURE.md` at the repository root maps the whole workspace — the
//! layer diagram, each crate's derived-state invariants, and where to add a
//! new model family, detector backend, or routing policy.
//!
//! # The `Detector` API
//!
//! Every deployable pipeline — the paper's trusted ensemble detector, the
//! conventional black box and the Platt confidence baseline — serves behind
//! one object-safe trait, [`core::detector::Detector`]. A serialisable
//! [`core::detector::DetectorConfig`] describes *what* to train
//! (pipeline kind × base learner × ensemble size × PCA × threshold);
//! `config.fit(&train, seed)` compiles it into a `Box<dyn Detector>`; and
//! [`core::detector::save`] / [`core::detector::load`] persist a fitted
//! pipeline so it can be trained once and served many times with
//! bit-identical reports.
//!
//! The inference surface is **view-first**: the object-safe hot path
//! [`core::detector::Detector::detect_rows`] scores a borrowed
//! [`data::RowsView`] — a whole matrix, any row range of one
//! ([`data::Matrix::rows_view`]), or a single borrowed signature — with zero
//! input copies, and the blanket
//! [`core::detector::DetectorExt::detect_batch`] accepts anything
//! `Into<RowsView>` so `detector.detect_batch(&matrix)` keeps reading the
//! way it always has. Single-window [`core::detector::Detector::detect`] is
//! the provided 1×d-view case of the same path, so per-window and batch
//! scoring are bit-identical by construction.
//!
//! # The serving fleet
//!
//! [`serve::DetectorFleet`] turns individual detectors into a deployment
//! surface shaped like a DAQ central unit: producers submit signatures to
//! *named endpoints*; each endpoint owns a versioned stack of
//! `Box<dyn Detector>` models, its own running
//! [`core::detector::MonitorStats`], and a micro-batching request tile.
//! Single-row [`serve::DetectorFleet::score`] calls enqueue into the tile
//! and return an ordered [`serve::Ticket`]; the tile drains through the
//! detector's flat-engine batch path when it reaches
//! [`serve::FlushPolicy::max_batch`] rows or the oldest waiter exceeds
//! [`serve::FlushPolicy::max_wait`] — recovering batch-sized throughput at
//! request granularity while staying **bit-identical** to direct
//! `detect_batch` (enforced by a seeded multi-threaded equivalence test).
//! [`serve::DetectorFleet::deploy`] hot-swaps a new model version while
//! in-flight tickets finish on the version that accepted them,
//! [`serve::DetectorFleet::rollback`] restores the previous one, and every
//! result arrives as a version-stamped [`serve::VersionedReport`] envelope.
//! `BENCH_serve.json` tracks the fleet-vs-direct throughput gap.
//!
//! When concurrent scorers outgrow one endpoint's tile,
//! [`serve::ShardedFleet`] replicates each endpoint across N shards — every
//! replica a full endpoint with its own tile, version stack and statistics —
//! and routes requests with a pluggable [`serve::RoutePolicy`]: round-robin,
//! least-loaded by open-tile depth, or key affinity
//! ([`serve::ShardedFleet::score_keyed`]) so a session's requests micro-batch
//! together. Replicas are bit-identical codec clones on lock-stepped
//! versions, deploy/rollback fan out atomically per replica, and
//! [`serve::ShardedFleet::stats`] merges per-replica
//! [`core::detector::MonitorStats`] into one fleet-wide view.
//! `BENCH_serve_scaling.json` tracks the scorer-threads × shards matrix.
//!
//! # The flat inference engine
//!
//! Training grows trees as nested tagged-enum nodes; serving runs on the
//! compiled [`ml::flat`] engine instead. Fitted trees, forests and bagging
//! ensembles flatten into cache-packed struct-of-arrays node storage
//! ([`ml::flat::FlatTree`], [`ml::flat::FlatForest`]) with leaves encoded as
//! tagged indices and hard votes precompiled per leaf; batches are traversed
//! in 64-row tiles with ensemble votes accumulated into reusable buffers and
//! group majorities decided early. The compiled form is derived state —
//! rebuilt on training and on [`core::detector::load`], never persisted —
//! and predicts **bit-identically** to the nested walk (labels,
//! probabilities, entropies), which the seeded randomized equivalence suite
//! in `crates/ml/tests/flat_equivalence.rs` enforces. On the smoke
//! random-forest pipeline this lifted `detect_batch` from ~95k to ~2.7M
//! samples/s at batch 1 and from ~2.4M to ~4.2M samples/s at batch 4096
//! (single-core container; see `BENCH_detect_batch.json`).
//!
//! # The fast-fit training engine
//!
//! Training is presorted and columnar ([`ml::fastfit`]): every feature of a
//! training matrix is sorted once per dataset into a cached per-column row
//! order ([`data::Matrix::presorted_rows`], built next to the lazy
//! column-major cache [`data::Matrix::columnar`] — derived state, never
//! persisted), each tree derives its per-feature index arrays from that
//! shared sort with a linear gather and partitions them down the tree, and
//! bootstrap replicates train as **weighted zero-copy views** (unique rows +
//! multiplicities) that share the parent's caches instead of materialising
//! copies. The engine sits behind the unchanged `fit` signatures and grows
//! trees **bit-identical** to the retained pre-optimisation fitters (the
//! `fit_reference` paths), which `crates/ml/tests/fit_equivalence.rs`
//! enforces. On the smoke 15-estimator bagged-forest pipeline this lifted
//! training from ~91 to ~409 fits/s (4.5×, single-core container; see
//! `BENCH_fit.json`); cross-validation folds also run in parallel over the
//! same views.
//!
//! ```
//! use hmd::core::detector::{load, save, DetectorBackend, DetectorConfig, MonitorSession};
//! use hmd::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Simulate a small DVFS corpus.
//! let split = DvfsCorpusBuilder::new()
//!     .with_samples_per_app(8)
//!     .with_trace_len(128)
//!     .build_split(1)?;
//!
//! // Describe the detector, then compile the description into a pipeline.
//! let config = DetectorConfig::trusted(DetectorBackend::decision_tree())
//!     .with_num_estimators(15)
//!     .with_entropy_threshold(0.4);
//! let detector = config.fit(&split.train, 7)?;
//!
//! // Train once, serve many times: the restored detector is bit-identical.
//! let document = save(detector.as_ref())?;
//! let served = load(&document)?;
//!
//! // Batch-first inference over the whole unknown set at once.
//! let reports = served.detect_batch(split.unknown.features())?;
//! assert_eq!(reports, detector.detect_batch(split.unknown.features())?);
//!
//! // Or stream windows through an online monitoring session.
//! let mut session = MonitorSession::new(served.as_ref());
//! session.observe_batch(split.unknown.features())?;
//! println!(
//!     "{}: {} windows, {:.0}% escalated, mean entropy {:.3}",
//!     served.name(),
//!     session.stats().windows,
//!     100.0 * session.stats().escalation_rate(),
//!     session.stats().mean_entropy(),
//! );
//!
//! // Or deploy it behind the serving fleet: a named, versioned endpoint
//! // with micro-batched single-row scoring and per-endpoint statistics.
//! let fleet = DetectorFleet::new();
//! fleet.deploy("dvfs-hmd", served);
//! let scored = fleet.score_batch("dvfs-hmd", split.unknown.features())?;
//! assert!(scored.iter().all(|r| r.version == 1));
//! assert_eq!(fleet.stats("dvfs-hmd")?.windows, split.unknown.len());
//!
//! // Scaling out: the same endpoint replicated across two shards with
//! // session-sticky routing — replicas are bit-identical codec clones, so
//! // the reports match the direct path no matter which replica serves.
//! let sharded = ShardedFleet::with_config(
//!     ShardConfig::new(2).with_policy(RoutePolicy::KeyAffinity),
//! );
//! sharded.deploy("dvfs-hmd", load(&document)?)?;
//! let session_key = 7u64;
//! let window = split.unknown.features().row(0);
//! let ticket = sharded.score_keyed("dvfs-hmd", session_key, window)?;
//! sharded.flush("dvfs-hmd")?;
//! let sticky = ticket.wait()?;
//! assert_eq!((sticky.version, &sticky.report), (1, &reports[0]));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use hmd_core as core;
pub use hmd_data as data;
pub use hmd_dvfs as dvfs;
pub use hmd_hpc as hpc;
pub use hmd_ml as ml;
// `loop` is a Rust keyword, so the closed-loop crate re-exports under a
// descriptive alias instead of its package name.
pub use hmd_loop as closed_loop;
pub use hmd_serve as serve;
pub use hmd_threat as threat;

/// Commonly used items, re-exported for convenient glob imports in examples
/// and applications.
pub mod prelude {
    pub use hmd_core::analysis::{EntropySummary, KnownUnknownEntropy};
    pub use hmd_core::detector::{
        Detector, DetectorBackend, DetectorConfig, DetectorExt, DetectorKind, MonitorSession,
        MonitorStats,
    };
    pub use hmd_core::estimator::{EnsembleUncertaintyEstimator, UncertainPrediction};
    pub use hmd_core::platt_baseline::PlattHmd;
    pub use hmd_core::rejection::{
        threshold_grid, EscalationBreakdown, F1Curve, RejectionCurve, RejectionPolicy,
    };
    pub use hmd_core::trusted::{
        Decision, DetectionReport, TrustedHmd, TrustedHmdBuilder, UntrustedHmd,
    };
    pub use hmd_data::{Dataset, Label, Matrix, RowsView};
    pub use hmd_dvfs::dataset::DvfsCorpusBuilder;
    pub use hmd_hpc::dataset::HpcCorpusBuilder;
    pub use hmd_loop::{
        DriftBaseline, DriftDetector, DriftPolicy, DriftVerdict, LoopConfig, LoopError, LoopEvent,
        LoopState, LoopSupervisor, PromotionGate,
    };
    pub use hmd_ml::bagging::BaggingParams;
    pub use hmd_ml::forest::RandomForestParams;
    pub use hmd_ml::logistic::LogisticRegressionParams;
    pub use hmd_ml::metrics::{f1_score, ClassificationReport};
    pub use hmd_ml::svm::LinearSvmParams;
    pub use hmd_ml::tree::DecisionTreeParams;
    pub use hmd_ml::{Classifier, Estimator, ModelTag};
    pub use hmd_serve::{
        degraded_escalation, AdmissionPolicy, BreakerPolicy, BreakerState, ClientConfig,
        ClientStats, DetectorFleet, FallbackPolicy, FaultCounters, FaultInjector, FaultPlan,
        FleetClient, FleetConfig, FleetError, FleetServer, FlushPolicy, HealthSnapshot, NetError,
        RetryPolicy, RoutePolicy, ServerConfig, ServerStats, ShadowSnapshot, ShardConfig,
        ShardTicket, ShardedFleet, ShardedReport, Ticket, VersionedReport,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_are_usable() {
        use crate::prelude::*;
        let policy = RejectionPolicy::new(0.4);
        assert!((policy.entropy_threshold - 0.4).abs() < 1e-12);
        assert_eq!(Label::Malware.index(), 1);
        let config = DetectorConfig::trusted(DetectorBackend::random_forest());
        assert_eq!(config.num_estimators, 25);
    }
}
