//! Fixture-driven rule tests: every rule fires on its seeded-violation
//! fixture, stays silent on its clean fixture, honors reasoned suppressions,
//! and reports reasonless/unknown/malformed suppressions — plus a self-lint
//! proving the real workspace is clean.
//!
//! Fixtures live under `tests/fixtures/` (never compiled, excluded from
//! workspace discovery) and are scanned with a pretend workspace path so
//! each rule's `applies` gate sees the crate the fixture impersonates.

use hmd_lint::diagnostics::Diagnostic;
use hmd_lint::engine::{self, SUPPRESSION_RULE};
use hmd_lint::source::SourceFile;
use hmd_lint::workspace::{self, FileContext, FileKind};
use std::path::Path;

/// Lints a fixture as if it lived at `crates/<krate>/src/<fixture>`.
fn check(fixture: &str, krate: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    let rel = format!("crates/{krate}/src/{fixture}");
    let file = SourceFile::read(&path, &rel).expect("fixture file reads");
    engine::check_file(&file, &FileContext::new(krate, FileKind::Lib, false))
}

fn count(diags: &[Diagnostic], rule: &str) -> usize {
    diags.iter().filter(|d| d.rule == rule).count()
}

#[test]
fn float_total_cmp_fires_on_partial_cmp_and_raw_comparators() {
    let diags = check("float_bad.rs", "lint");
    assert_eq!(count(&diags, "float-total-cmp"), 2, "{diags:?}");
}

#[test]
fn float_total_cmp_accepts_total_cmp_and_reasoned_allows() {
    let diags = check("float_ok.rs", "lint");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn unsafe_rule_fires_on_blocks_fns_and_orphaned_comments() {
    let diags = check("unsafe_bad.rs", "lint");
    assert_eq!(count(&diags, "unsafe-safety-comment"), 3, "{diags:?}");
}

#[test]
fn unsafe_rule_accepts_safety_comments_through_attributes() {
    let diags = check("unsafe_ok.rs", "lint");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn no_panic_fires_on_unwrap_expect_and_panic_macros() {
    let diags = check("no_panic_bad.rs", "core");
    assert_eq!(count(&diags, "no-panic-in-lib"), 4, "{diags:?}");
}

#[test]
fn no_panic_accepts_results_allows_domain_expect_and_test_code() {
    let diags = check("no_panic_ok.rs", "core");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn no_panic_polices_corpus_generator_lib_code() {
    // The corpus generators (dvfs/hpc/threat) feed long-running soak and
    // robustness streams, so their lib code is in scope for the no-panic
    // rule — while their integration tests (the million-row stream suites)
    // stay free to assert.
    for krate in ["dvfs", "hpc", "threat"] {
        let diags = check("no_panic_bad.rs", krate);
        assert_eq!(
            count(&diags, "no-panic-in-lib"),
            4,
            "{krate} lib code must be policed: {diags:?}"
        );
    }
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("no_panic_bad.rs");
    let file = SourceFile::read(&path, "crates/dvfs/tests/stream.rs").unwrap();
    let diags = engine::check_file(&file, &FileContext::new("dvfs", FileKind::Test, false));
    assert!(diags.is_empty(), "stream tests panic freely: {diags:?}");
}

#[test]
fn no_panic_ignores_non_serving_crates_and_non_lib_code() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join("no_panic_bad.rs");
    let file = SourceFile::read(&path, "crates/bench/src/no_panic_bad.rs").unwrap();
    let diags = engine::check_file(&file, &FileContext::new("bench", FileKind::Lib, false));
    assert!(diags.is_empty(), "bench is not a serving crate: {diags:?}");
    let file = SourceFile::read(&path, "crates/core/tests/no_panic_bad.rs").unwrap();
    let diags = engine::check_file(&file, &FileContext::new("core", FileKind::Test, false));
    assert!(diags.is_empty(), "tests panic freely: {diags:?}");
}

#[test]
fn lock_discipline_fires_on_nesting_and_long_calls() {
    let diags = check("lock_bad.rs", "serve");
    assert_eq!(count(&diags, "lock-discipline"), 5, "{diags:?}");
}

#[test]
fn lock_discipline_accepts_scoped_dropped_and_temporary_guards() {
    let diags = check("lock_ok.rs", "serve");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn lock_discipline_only_polices_the_serving_crate() {
    let diags = check("lock_bad.rs", "ml");
    assert_eq!(count(&diags, "lock-discipline"), 0, "{diags:?}");
}

#[test]
fn derived_state_fires_on_identifiers_and_json_keys_in_codec() {
    let diags = check("derived_bad.rs", "codec");
    assert_eq!(count(&diags, "derived-state-persistence"), 3, "{diags:?}");
}

#[test]
fn derived_state_accepts_caches_outside_persistence_paths() {
    let diags = check("derived_ok.rs", "ml");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn suppression_failure_modes_are_reported_and_do_not_suppress() {
    let diags = check("suppression_cases.rs", "core");
    assert_eq!(
        count(&diags, "no-panic-in-lib"),
        1,
        "a reasonless allow must not suppress: {diags:?}"
    );
    assert_eq!(count(&diags, SUPPRESSION_RULE), 3, "{diags:?}");
}

#[test]
fn fixtures_are_excluded_from_workspace_discovery() {
    let root = workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let files = workspace::discover(&root).unwrap();
    assert!(
        files.iter().all(|(_, rel, _)| !rel.contains("fixtures")),
        "fixture files must never be linted as workspace source"
    );
}

/// The dogfood gate: the real workspace tree must lint clean. This is the
/// same check CI runs via `cargo run -p hmd_lint -- --workspace`.
#[test]
fn the_workspace_itself_lints_clean() {
    let root = workspace::find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
    let report = engine::run_workspace(&root).unwrap();
    assert!(
        report.is_clean(),
        "workspace findings:\n{}",
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.files_scanned > 100, "discovery walked the workspace");
}
