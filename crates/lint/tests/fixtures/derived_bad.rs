//! Fixture: derived-cache identifiers inside persistence paths, which
//! `derived-state-persistence` must flag (both identifier tokens and JSON
//! key strings).

pub fn encode(doc: &Document) -> String {
    let cache = doc.presorted_rows.len();
    format!("{{\"flat\": {cache}}}")
}

pub struct Document {
    pub presorted_rows: Vec<u32>,
}
