//! Fixture: `unsafe` without a SAFETY justification, in the three shapes
//! `unsafe-safety-comment` distinguishes.

pub fn undocumented_block(values: &[u8]) -> u8 {
    unsafe { *values.as_ptr() }
}

// A comment that is not a SAFETY comment does not count.
pub unsafe fn undocumented_fn(ptr: *const u8) -> u8 {
    *ptr
}

pub fn interposed_code(values: &[u8]) -> u8 {
    // SAFETY: this comment is orphaned by the statement below it.
    let _checked = !values.is_empty();
    unsafe { *values.as_ptr() }
}
