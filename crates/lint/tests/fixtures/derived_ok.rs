//! Fixture: derived-cache usage `derived-state-persistence` must accept —
//! caches built freely outside persistence fns, and a `from_json` that
//! *rebuilds* the cache through a constructor without naming it.

pub fn fit() -> Forest {
    let flat = compile_groups();
    Forest { flat }
}

pub fn from_json(doc: &str) -> Forest {
    let trees = parse_trees(doc);
    Forest::rebuild(trees)
}

pub struct Forest {
    pub flat: usize,
}

impl Forest {
    pub fn rebuild(_trees: usize) -> Forest {
        fit()
    }
}

pub fn compile_groups() -> usize {
    0
}

pub fn parse_trees(_doc: &str) -> usize {
    0
}
