//! Fixture: panicking forms `no-panic-in-lib` must flag in serving-path
//! library code.

pub fn riskily(values: &[f64]) -> f64 {
    let first = values.first().unwrap();
    let last = values.last().expect("caller passes a non-empty slice");
    if values.len() > 64 {
        panic!("tile too large");
    }
    first + last
}

pub fn unfinished() {
    todo!()
}
