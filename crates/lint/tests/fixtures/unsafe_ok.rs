//! Fixture: `unsafe` forms `unsafe-safety-comment` must accept.

pub fn commented_above(values: &[u8]) -> u8 {
    assert!(!values.is_empty());
    // SAFETY: the assert above guarantees at least one element, so reading
    // the first byte through the raw pointer stays in bounds.
    #[allow(unused_unsafe)]
    unsafe {
        *values.as_ptr()
    }
}

pub fn trailing_comment(values: &[u8]) -> u8 {
    unsafe { *values.as_ptr().add(0) } // SAFETY: offset 0 of a valid slice pointer
}

// `unsafe impl` declares a contract documented at the trait definition; the
// rule only polices blocks and fns, where invariants are *relied on*.
unsafe impl Send for Wrapper {}

pub struct Wrapper(*const u8);
