//! Fixture: forms `no-panic-in-lib` must accept — propagated errors,
//! reasoned allows, domain methods named `expect`, asserts, and test code.

pub fn first(values: &[f64]) -> Result<f64, String> {
    values.first().copied().ok_or_else(|| "empty".to_string())
}

pub fn head(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "asserts encode invariants and stay");
    // hmd-lint: allow(no-panic-in-lib) construction-guaranteed: the assert above proves non-empty
    values.first().copied().unwrap()
}

pub struct Parser;

impl Parser {
    fn expect(&self, _byte: u8) -> bool {
        true
    }
}

/// `expect` with a non-string argument is a domain method (the codec
/// parser's `expect(b'{')`), not `Option::expect`.
pub fn domain_expect(parser: &Parser) -> bool {
    parser.expect(b'{')
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_panic_freely() {
        assert_eq!(super::head(&[1.0]), 1.0);
        let _ = Some(3).unwrap();
        let _ = "7".parse::<u8>().expect("tests may expect");
    }
}
