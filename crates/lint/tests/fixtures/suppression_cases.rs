//! Fixture: the suppression syntax's own failure modes, reported under
//! `lint-suppression`.

pub fn reasonless_allow_does_not_suppress(values: &[f64]) -> f64 {
    // hmd-lint: allow(no-panic-in-lib)
    values.first().copied().unwrap()
}

pub fn unknown_rule_is_reported() {
    // hmd-lint: allow(definitely-not-a-rule) even with a reason
    let _x = 1;
}

pub fn malformed_directive_is_reported() {
    // hmd-lint: deny(everything)
    let _y = 2;
}
