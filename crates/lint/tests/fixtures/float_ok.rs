//! Fixture: float orderings `float-total-cmp` must accept — `total_cmp`
//! comparators, unspaced generics, and a reasoned suppression.

pub fn sorted(values: &mut Vec<f64>) -> Option<f64> {
    values.sort_by(|a, b| a.total_cmp(b));
    // Generics like Vec<f64> and `a<b` written unspaced are inert: rustfmt
    // (CI-enforced) always spaces real binary comparisons.
    // hmd-lint: allow(float-total-cmp) intentional NaN-rejecting boundary check, mirroring hmd_ml::tsne::validate
    let boundary = 1.0_f64.partial_cmp(&0.5);
    values.first().copied().filter(|_| boundary.is_some())
}
