//! Fixture: critical-section shapes `lock-discipline` must flag in the
//! serving crate.

use std::sync::Mutex;

pub struct State {
    rows: Mutex<Vec<f64>>,
    count: Mutex<usize>,
}

pub fn save(_rows: usize) {}

impl State {
    pub fn nested_acquisition(&self) -> usize {
        let rows = self.rows.lock_unpoisoned();
        let count = self.count.lock_unpoisoned();
        rows.len() + *count
    }

    pub fn guard_held_across_save(&self) {
        let rows = self.rows.lock_unpoisoned();
        save(rows.len());
    }

    pub fn flusher_sleeps_holding_the_tile(&self) {
        let rows = self.rows.lock_unpoisoned();
        std::thread::sleep(std::time::Duration::from_millis(rows.len() as u64));
    }

    pub fn guard_held_across_socket_write(&self, stream: &mut std::net::TcpStream) {
        let rows = self.rows.lock_unpoisoned();
        stream.write_all(&[rows.len() as u8]).ok();
    }

    pub fn guard_held_across_accept(&self, listener: &std::net::TcpListener) {
        let count = self.count.lock_unpoisoned();
        let _ = listener.accept();
        drop(count);
    }
}
