//! Fixture: lock usage `lock-discipline` must accept — scoped guards,
//! within-statement temporaries, and explicit drops before long calls.

use std::sync::Mutex;

pub struct State {
    rows: Mutex<Vec<f64>>,
    count: Mutex<usize>,
}

pub fn save(_rows: usize) {}

impl State {
    pub fn scoped_guards(&self) -> usize {
        let len = {
            let rows = self.rows.lock_unpoisoned();
            rows.len()
        };
        let count = *self.count.lock_unpoisoned();
        save(len);
        len + count
    }

    pub fn dropped_before_save(&self) {
        let rows = self.rows.lock_unpoisoned();
        let len = rows.len();
        drop(rows);
        save(len);
    }

    pub fn chained_temporary(&self) -> usize {
        let taken = self.rows.lock_unpoisoned().len();
        save(taken);
        taken
    }

    pub fn flusher_scans_scoped_then_sleeps(&self) {
        let pending = {
            let rows = self.rows.lock_unpoisoned();
            rows.len()
        };
        std::thread::sleep(std::time::Duration::from_millis(pending as u64));
    }

    pub fn socket_read_is_not_an_acquisition(&self, stream: &mut std::net::TcpStream) {
        // `.read(&mut buf)` has an argument: byte-stream I/O, not an
        // `RwLock` acquisition — it must not create a phantom guard that
        // poisons the rest of the function.
        let mut buf = [0u8; 8];
        let n = stream.read(&mut buf).unwrap_or(0);
        let mut rows = self.rows.lock_unpoisoned();
        rows.push(n as f64);
    }

    pub fn dropped_before_socket_write(&self, stream: &mut std::net::TcpStream) {
        let rows = self.rows.lock_unpoisoned();
        let len = rows.len() as u8;
        drop(rows);
        stream.write_all(&[len]).ok();
    }
}
