//! Fixture: float orderings that `float-total-cmp` must flag.
//!
//! Fixtures are excluded from workspace discovery (and never compiled);
//! they exist to be scanned by `tests/rules.rs` with a pretend path.

pub fn worst(values: &mut [f64]) -> Option<std::cmp::Ordering> {
    values.sort_by(|a, b| {
        if a < b {
            std::cmp::Ordering::Less
        } else {
            std::cmp::Ordering::Greater
        }
    });
    values.first().and_then(|v| v.partial_cmp(&0.5))
}
