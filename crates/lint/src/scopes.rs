//! Lightweight brace/expression tracking over the token stream.
//!
//! The rules need just enough structure to reason about scopes without a full
//! parse: matching-delimiter spans, and the token ranges of function bodies
//! (`fn name ... { body }`). The lock-discipline tracker in
//! [`crate::rules::lock_discipline`] builds its guard-liveness model on top
//! of these primitives.

use crate::tokens::Token;

/// Returns the index of the delimiter closing the one at `open`, treating
/// `(`/`)`, `[`/`]`, and `{`/`}` uniformly (all three nest through each
/// other). `None` when the stream ends unbalanced.
pub fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0isize;
    for (i, token) in tokens.iter().enumerate().skip(open) {
        if token.is_punct('(') || token.is_punct('[') || token.is_punct('{') {
            depth += 1;
        } else if token.is_punct(')') || token.is_punct(']') || token.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// A function item found in the token stream.
#[derive(Debug, Clone)]
pub struct FnBody {
    /// The function's name.
    pub name: String,
    /// Token range of the body: indices of the opening and closing braces.
    pub body: (usize, usize),
}

/// Finds every `fn <name> ... { body }` in the stream (trait-method
/// *declarations* ending in `;` have no body and are skipped). Nested
/// functions and closures inside a body are part of the enclosing body's
/// range and also reported as their own entries when they are named `fn`s.
pub fn fn_bodies(tokens: &[Token]) -> Vec<FnBody> {
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if !tokens[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != crate::tokens::TokenKind::Ident {
            continue;
        }
        // Scan forward to the body's `{`, stopping at `;` (a bodyless
        // declaration). Generic bounds, argument lists, and return types may
        // contain nested delimiters; skip over complete groups, and also over
        // `where` clauses (whose bound lists are delimiter-free).
        let mut j = i + 2;
        let mut body = None;
        while let Some(tok) = tokens.get(j) {
            if tok.is_punct(';') {
                break;
            }
            if tok.is_punct('(') || tok.is_punct('[') {
                match matching_close(tokens, j) {
                    Some(close) => j = close + 1,
                    None => break,
                }
                continue;
            }
            if tok.is_punct('{') {
                body = matching_close(tokens, j).map(|close| (j, close));
                break;
            }
            j += 1;
        }
        if let Some(body) = body {
            out.push(FnBody {
                name: name_tok.text.clone(),
                body,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::tokenize;

    #[test]
    fn fn_bodies_skip_signatures_and_find_braces() {
        let (tokens, _) = tokenize(
            "trait T { fn decl(&self) -> Vec<u8>; }\n\
             fn to_json(x: (u8, u8)) -> String { let y = { 1 }; format(y) }\n",
        );
        let bodies = fn_bodies(&tokens);
        assert_eq!(bodies.len(), 1);
        assert_eq!(bodies[0].name, "to_json");
        let (open, close) = bodies[0].body;
        assert!(tokens[open].is_punct('{'));
        assert!(tokens[close].is_punct('}'));
        // The inner block belongs to the same body span.
        assert!(close > open + 5);
    }

    #[test]
    fn matching_close_handles_mixed_nesting() {
        let (tokens, _) = tokenize("f(a[b{c}d], e)");
        let open = tokens.iter().position(|t| t.is_punct('(')).unwrap();
        let close = matching_close(&tokens, open).unwrap();
        assert!(tokens[close].is_punct(')'));
        assert_eq!(close, tokens.len() - 1);
    }
}
