//! A parsed source file: tokens, comments, line classification, `#[cfg(test)]`
//! spans, and `// hmd-lint: allow(...)` suppressions.

use crate::tokens::{tokenize, Comment, Token};
use std::collections::BTreeSet;
use std::path::Path;

/// The inline suppression syntax: `// hmd-lint: allow(rule-name) <reason>`.
///
/// A suppression on its own line targets the next line containing code; a
/// trailing suppression targets its own line. The `<reason>` is **required**
/// for the suppression to take effect — a bare `allow(rule)` is itself
/// reported (rule `lint-suppression`) and suppresses nothing.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// 1-based line of the comment itself.
    pub line: u32,
    /// 1-based line the suppression applies to.
    pub target_line: u32,
    /// The rule name inside `allow(...)`.
    pub rule: String,
    /// The justification after the closing paren, if any.
    pub reason: Option<String>,
}

/// A `hmd-lint:` comment that could not be parsed as `allow(rule) reason`.
#[derive(Debug, Clone)]
pub struct MalformedSuppression {
    /// 1-based line of the comment.
    pub line: u32,
    /// What was wrong with it.
    pub message: String,
}

/// One fully lexed and classified source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative display path (also used in diagnostics).
    pub rel_path: String,
    /// The raw source lines (1-based access via [`SourceFile::line_text`]).
    pub lines: Vec<String>,
    /// The code token stream (comments and literals already separated).
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
    /// `hmd-lint:` comments that did not parse.
    pub malformed: Vec<MalformedSuppression>,
    code_lines: BTreeSet<u32>,
    test_spans: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `text` (read from `rel_path`) and computes line classifications.
    pub fn parse(rel_path: &str, text: &str) -> SourceFile {
        let (tokens, comments) = tokenize(text);
        let code_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
        let test_spans = find_test_spans(&tokens);
        let mut file = SourceFile {
            rel_path: rel_path.to_string(),
            lines: text.lines().map(str::to_string).collect(),
            tokens,
            comments,
            suppressions: Vec::new(),
            malformed: Vec::new(),
            code_lines,
            test_spans,
        };
        file.collect_suppressions();
        file
    }

    /// Convenience constructor reading the file from disk.
    pub fn read(path: &Path, rel_path: &str) -> std::io::Result<SourceFile> {
        Ok(SourceFile::parse(rel_path, &std::fs::read_to_string(path)?))
    }

    /// The text of 1-based line `line` (empty for out-of-range lines).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    /// True when `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test_span(&self, line: u32) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| line >= start && line <= end)
    }

    fn collect_suppressions(&mut self) {
        for comment in &self.comments {
            let Some(rest) = find_directive(&comment.text) else {
                continue;
            };
            match parse_allow(rest) {
                Ok((rule, reason)) => {
                    let target_line = if self.code_lines.contains(&comment.line) {
                        comment.line
                    } else {
                        // Own-line comment: applies to the next code line.
                        self.code_lines
                            .range(comment.end_line + 1..)
                            .next()
                            .copied()
                            .unwrap_or(comment.line)
                    };
                    self.suppressions.push(Suppression {
                        line: comment.line,
                        target_line,
                        rule,
                        reason,
                    });
                }
                Err(message) => self.malformed.push(MalformedSuppression {
                    line: comment.line,
                    message,
                }),
            }
        }
    }
}

/// Returns the text after `hmd-lint:` when the comment is a lint directive.
///
/// A directive must *start* with `hmd-lint:` (after leading whitespace) —
/// comments that merely mention the syntax in prose are not directives, and
/// doc comments (whose text starts with `/` or `!`) can never be directives.
fn find_directive(comment: &str) -> Option<&str> {
    comment
        .trim_start()
        .strip_prefix("hmd-lint:")
        .map(str::trim)
}

/// Parses `allow(rule) reason...` into the rule name and optional reason.
fn parse_allow(rest: &str) -> Result<(String, Option<String>), String> {
    let Some(args) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "expected `allow(rule) <reason>` after `hmd-lint:`, found `{rest}`"
        ));
    };
    let Some(close) = args.find(')') else {
        return Err("unclosed `allow(` in lint directive".to_string());
    };
    let rule = args[..close].trim();
    if rule.is_empty() || rule.contains(char::is_whitespace) {
        return Err(format!(
            "`allow(...)` needs a single rule name, found `{rule}`"
        ));
    }
    let reason = args[close + 1..].trim();
    Ok((
        rule.to_string(),
        if reason.is_empty() {
            None
        } else {
            Some(reason.to_string())
        },
    ))
}

/// Finds the line spans of `#[cfg(test)]` items (modules, fns) so rules that
/// exempt test code can skip them.
fn find_test_spans(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 6 < tokens.len() {
        let is_cfg_test = tokens[i].is_punct('#')
            && tokens[i + 1].is_punct('[')
            && tokens[i + 2].is_ident("cfg")
            && tokens[i + 3].is_punct('(')
            && tokens[i + 4].is_ident("test")
            && tokens[i + 5].is_punct(')')
            && tokens[i + 6].is_punct(']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip to the item body: the first `{` at depth 0 (a `;` first means
        // an out-of-line `mod tests;` — span ends there).
        let mut j = i + 7;
        let mut end_line = start_line;
        while j < tokens.len() {
            if tokens[j].is_punct(';') {
                end_line = tokens[j].line;
                break;
            }
            if tokens[j].is_punct('{') {
                let mut depth = 1usize;
                j += 1;
                while j < tokens.len() && depth > 0 {
                    if tokens[j].is_punct('{') {
                        depth += 1;
                    } else if tokens[j].is_punct('}') {
                        depth -= 1;
                    }
                    end_line = tokens[j].line;
                    j += 1;
                }
                break;
            }
            j += 1;
        }
        spans.push((start_line, end_line.max(start_line)));
        i = j.max(i + 7);
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_on_own_line_targets_next_code_line() {
        let src = "fn f() {\n    // hmd-lint: allow(no-panic-in-lib) provably non-empty\n    x.unwrap();\n}\n";
        let file = SourceFile::parse("t.rs", src);
        assert_eq!(file.suppressions.len(), 1);
        let s = &file.suppressions[0];
        assert_eq!(s.rule, "no-panic-in-lib");
        assert_eq!(s.target_line, 3);
        assert_eq!(s.reason.as_deref(), Some("provably non-empty"));
    }

    #[test]
    fn trailing_suppression_targets_its_own_line() {
        let src = "let x = y.unwrap(); // hmd-lint: allow(no-panic-in-lib) seeded above\n";
        let file = SourceFile::parse("t.rs", src);
        assert_eq!(file.suppressions[0].target_line, 1);
    }

    #[test]
    fn reasonless_allow_parses_with_no_reason() {
        let file = SourceFile::parse("t.rs", "// hmd-lint: allow(float-total-cmp)\nlet x = 1;\n");
        assert_eq!(file.suppressions[0].reason, None);
    }

    #[test]
    fn malformed_directives_are_reported() {
        let file = SourceFile::parse("t.rs", "// hmd-lint: disable(everything)\n");
        assert_eq!(file.suppressions.len(), 0);
        assert_eq!(file.malformed.len(), 1);
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let file = SourceFile::parse("t.rs", src);
        assert!(!file.in_test_span(1));
        assert!(file.in_test_span(2));
        assert!(file.in_test_span(5));
        assert!(!file.in_test_span(7));
    }
}
