//! The `hmd_lint` command-line entry point. See the crate docs in `lib.rs`
//! for what the linter checks and how suppressions work.

use hmd_lint::{engine, rules, workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: hmd_lint [--workspace] [--json] [--root <dir>] [--list-rules] [files...]

  --workspace   lint every .rs file in the workspace (default when no files given)
  --json        emit findings as JSON instead of human-readable lines
  --root <dir>  workspace root (default: ascend from the current directory)
  --list-rules  print the rule names and exit

exit codes: 0 clean, 1 findings, 2 usage or I/O error";

struct Options {
    workspace: bool,
    json: bool,
    root: Option<PathBuf>,
    list_rules: bool,
    files: Vec<String>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        workspace: false,
        json: false,
        root: None,
        list_rules: false,
        files: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => opts.workspace = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--root" => {
                i += 1;
                let dir = args.get(i).ok_or("--root needs a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            file => opts.files.push(file.to_string()),
        }
        i += 1;
    }
    if opts.workspace && !opts.files.is_empty() {
        return Err("pass either --workspace or explicit files, not both".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("hmd_lint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::all() {
            println!("{}", rule.name());
        }
        println!("{}", engine::SUPPRESSION_RULE);
        return ExitCode::SUCCESS;
    }

    let root = match opts.root.clone().or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|cwd| workspace::find_root(&cwd))
    }) {
        Some(root) => root,
        None => {
            eprintln!("hmd_lint: no workspace root found (pass --root <dir>)");
            return ExitCode::from(2);
        }
    };

    let result = if opts.files.is_empty() {
        engine::run_workspace(&root)
    } else {
        engine::run_paths(&root, &opts.files)
    };
    let report = match result {
        Ok(report) => report,
        Err(err) => {
            eprintln!("hmd_lint: {err}");
            return ExitCode::from(2);
        }
    };

    if opts.json {
        print!(
            "{}",
            hmd_lint::diagnostics::to_json(&report.diagnostics, report.files_scanned)
        );
    } else {
        for diag in &report.diagnostics {
            println!("{diag}");
        }
        if report.is_clean() {
            println!("hmd_lint: clean ({} files scanned)", report.files_scanned);
        } else {
            println!(
                "hmd_lint: {} finding{} across {} files scanned",
                report.diagnostics.len(),
                if report.diagnostics.len() == 1 {
                    ""
                } else {
                    "s"
                },
                report.files_scanned
            );
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
