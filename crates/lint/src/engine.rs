//! The lint engine: runs every rule over a file set, applies suppressions,
//! and validates the suppression comments themselves.
//!
//! Suppression semantics (the part most linters get wrong, so it is spelled
//! out here and enforced):
//!
//! - `// hmd-lint: allow(rule) <reason>` with a non-empty reason suppresses
//!   findings of `rule` on its target line (its own line for a trailing
//!   comment, the next code line for an own-line comment).
//! - a **reasonless** `allow(rule)` suppresses **nothing**: the original
//!   finding stands, and the bare allow is itself reported under the
//!   [`SUPPRESSION_RULE`] meta rule. An unjustified suppression is a worse
//!   smell than the finding it hides.
//! - an `allow(...)` naming an unknown rule, or a `hmd-lint:` comment that
//!   does not parse, is reported the same way. Typos must not silently
//!   disable enforcement.
//! - meta diagnostics are not themselves suppressible.

use crate::diagnostics::{self, Diagnostic};
use crate::rules;
use crate::source::SourceFile;
use crate::workspace::{self, FileContext};
use std::path::Path;

/// The meta rule name under which suppression-syntax problems are reported.
pub const SUPPRESSION_RULE: &str = "lint-suppression";

/// The outcome of a lint run.
#[derive(Debug)]
pub struct Report {
    /// All surviving findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the run produced no findings.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints one parsed file: runs every applicable rule, applies reasoned
/// suppressions, and reports suppression-syntax problems.
pub fn check_file(file: &SourceFile, ctx: &FileContext) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    for rule in rules::all() {
        if rule.applies(ctx) {
            rule.check(file, ctx, &mut raw);
        }
    }

    let known = rules::known_names();
    let mut out = Vec::new();

    // A finding survives unless a *reasoned* suppression targets its line
    // and names its rule.
    for diag in raw {
        let suppressed = file
            .suppressions
            .iter()
            .any(|s| s.target_line == diag.line && s.rule == diag.rule && s.reason.is_some());
        if !suppressed {
            out.push(diag);
        }
    }

    // Validate the suppression comments themselves.
    for s in &file.suppressions {
        if !known.contains(&s.rule.as_str()) {
            out.push(Diagnostic::new(
                &file.rel_path,
                s.line,
                SUPPRESSION_RULE,
                format!(
                    "`allow({})` names an unknown rule (known: {}) — a typo here \
                     would silently disable nothing",
                    s.rule,
                    known.join(", ")
                ),
            ));
        } else if s.reason.is_none() {
            out.push(Diagnostic::new(
                &file.rel_path,
                s.line,
                SUPPRESSION_RULE,
                format!(
                    "`allow({})` without a reason: suppressions must justify \
                     themselves (`// hmd-lint: allow({}) <why this is sound>`); \
                     the finding it targets still stands",
                    s.rule, s.rule
                ),
            ));
        }
    }
    for m in &file.malformed {
        out.push(Diagnostic::new(
            &file.rel_path,
            m.line,
            SUPPRESSION_RULE,
            format!("unparseable `hmd-lint:` directive: {}", m.message),
        ));
    }
    out
}

/// Lints every workspace source file under `root`.
pub fn run_workspace(root: &Path) -> std::io::Result<Report> {
    let files = workspace::discover(root)?;
    let mut diagnostics = Vec::new();
    let files_scanned = files.len();
    for (path, rel, ctx) in &files {
        let file = SourceFile::read(path, rel)?;
        diagnostics.extend(check_file(&file, ctx));
    }
    diagnostics::sort(&mut diagnostics);
    Ok(Report {
        diagnostics,
        files_scanned,
    })
}

/// Lints an explicit list of files (paths relative to, or absolute under,
/// `root` — classification uses the path relative to `root`).
pub fn run_paths(root: &Path, paths: &[String]) -> std::io::Result<Report> {
    let mut diagnostics = Vec::new();
    for given in paths {
        let path = {
            let p = Path::new(given);
            if p.is_absolute() {
                p.to_path_buf()
            } else {
                root.join(p)
            }
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(ctx) = workspace::classify(&rel) else {
            continue;
        };
        let file = SourceFile::read(&path, &rel)?;
        diagnostics.extend(check_file(&file, &ctx));
    }
    diagnostics::sort(&mut diagnostics);
    Ok(Report {
        diagnostics,
        files_scanned: paths.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::FileKind;

    fn lib_ctx(krate: &str) -> FileContext {
        FileContext::new(krate, FileKind::Lib, false)
    }

    #[test]
    fn reasoned_suppression_silences_the_finding() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    \
                   // hmd-lint: allow(no-panic-in-lib) checked non-empty two lines up\n    \
                   x.unwrap()\n}\n";
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        let out = check_file(&file, &lib_ctx("core"));
        assert!(out.is_empty(), "unexpected: {out:?}");
    }

    #[test]
    fn reasonless_suppression_reports_and_does_not_suppress() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    \
                   // hmd-lint: allow(no-panic-in-lib)\n    \
                   x.unwrap()\n}\n";
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        let out = check_file(&file, &lib_ctx("core"));
        let rules: Vec<&str> = out.iter().map(|d| d.rule.as_str()).collect();
        assert!(
            rules.contains(&"no-panic-in-lib"),
            "finding must stand: {out:?}"
        );
        assert!(
            rules.contains(&SUPPRESSION_RULE),
            "bare allow must report: {out:?}"
        );
    }

    #[test]
    fn unknown_rule_names_are_reported() {
        let src = "// hmd-lint: allow(no-such-rule) because reasons\nfn f() {}\n";
        let file = SourceFile::parse("crates/core/src/x.rs", src);
        let out = check_file(&file, &lib_ctx("core"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, SUPPRESSION_RULE);
        assert!(out[0].message.contains("unknown rule"));
    }
}
