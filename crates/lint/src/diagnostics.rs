//! Diagnostics: the `file:line` findings the rules produce, with human and
//! JSON renderings.

use std::fmt;

/// One finding: a rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// The rule that fired (e.g. `float-total-cmp`).
    pub rule: String,
    /// Human explanation of the violation and the expected fix.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(file: &str, line: u32, rule: &str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Sorts diagnostics by (file, line, rule) for stable output.
pub fn sort(diagnostics: &mut [Diagnostic]) {
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
}

/// Renders the findings as a JSON document (hand-rolled, like everything else
/// in this workspace): `{"findings": [...], "files_scanned": N}`.
pub fn to_json(diagnostics: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\"file\": ");
        json_string(&mut out, &d.file);
        out.push_str(", \"line\": ");
        out.push_str(&d.line.to_string());
        out.push_str(", \"rule\": ");
        json_string(&mut out, &d.rule);
        out.push_str(", \"message\": ");
        json_string(&mut out, &d.message);
        out.push('}');
    }
    if !diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"files_scanned\": ");
    out.push_str(&files_scanned.to_string());
    out.push_str("\n}\n");
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_quotes_and_newlines() {
        let d = Diagnostic::new("a.rs", 3, "r", "say \"no\"\nplease");
        let json = to_json(&[d], 1);
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\\n"));
        assert!(json.contains("\"files_scanned\": 1"));
    }

    #[test]
    fn display_is_file_line_rule_message() {
        let d = Diagnostic::new("crates/ml/src/tsne.rs", 78, "float-total-cmp", "msg");
        assert_eq!(
            d.to_string(),
            "crates/ml/src/tsne.rs:78: [float-total-cmp] msg"
        );
    }
}
