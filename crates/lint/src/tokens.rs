//! A comment- and string-aware Rust tokenizer.
//!
//! This is not a full Rust lexer: it produces exactly the token stream the
//! rules in [`crate::rules`] need — identifiers, literals, lifetimes, and
//! single-character punctuation, each stamped with its line and column — and
//! collects comments into a separate side channel (for `// SAFETY:`
//! justifications and `// hmd-lint: allow(...)` suppressions). What matters
//! for soundness is that *nothing inside a string, character, or comment can
//! ever be mistaken for code*: `"partial_cmp"` in a message, `b'{'` in the
//! JSON parser, and `// .unwrap()` in prose must all be inert.

/// The coarse classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `partial_cmp`, ...).
    Ident,
    /// A string literal of any flavour: `"..."`, `r"..."`, `r#"..."#`,
    /// `b"..."`, `br#"..."#`. `text` holds the *contents* (no quotes).
    Str,
    /// A character literal `'x'` (contents, no quotes).
    Char,
    /// A byte literal `b'x'` (contents, no quotes).
    Byte,
    /// A numeric literal (`1`, `0x9E`, `1.5e-3`, `1_000u64`, ...).
    Number,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`), without the
    /// leading quote.
    Lifetime,
    /// A single punctuation character (`.`, `{`, `<`, ...). Multi-character
    /// operators arrive as adjacent tokens; consumers that care (like the
    /// comparator-operator check) reassemble them via column adjacency.
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (for literals: the contents without delimiters).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 0-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True when this token is the given punctuation character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.starts_with(ch)
    }

    /// True when this token is the given identifier or keyword.
    pub fn is_ident(&self, word: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == word
    }
}

/// One comment (line or block) with the line range it covers.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//` comments).
    pub end_line: u32,
    /// The comment text without its `//` / `/* */` delimiters.
    pub text: String,
}

/// Lexes `src` into code tokens and a parallel list of comments.
pub fn tokenize(src: &str) -> (Vec<Token>, Vec<Comment>) {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl Lexer {
    fn new(src: &str) -> Lexer {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 0,
            tokens: Vec::new(),
            comments: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one character, keeping the line/column counters current.
    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if ch == '\n' {
            self.line += 1;
            self.col = 0;
        } else {
            self.col += 1;
        }
        Some(ch)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn run(mut self) -> (Vec<Token>, Vec<Comment>) {
        while let Some(ch) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match ch {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(TokenKind::Str, line, col),
                'r' | 'b' if self.raw_or_byte_prefix() => { /* handled inside */ }
                '\'' => self.quote(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line, col);
                }
            }
        }
        (self.tokens, self.comments)
    }

    /// Dispatches the `r`/`b`-prefixed literal forms (`r"..."`, `r#"..."#`,
    /// `b"..."`, `br#"..."#`, `b'x'`, raw identifiers `r#ident`). Returns
    /// true when it consumed something; false leaves the prefix to be lexed
    /// as a plain identifier.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let (line, col) = (self.line, self.col);
        let first = self.peek(0);
        // Work out the shape by lookahead only; consume nothing on fallback.
        let mut ahead = 1;
        if first == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        if first == Some('b') && self.peek(1) == Some('\'') {
            // b'x' byte literal.
            self.bump(); // b
            self.bump(); // '
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c == '\\' {
                    text.push(self.bump().unwrap_or_default());
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                } else if c == '\'' {
                    self.bump();
                    break;
                } else {
                    text.push(self.bump().unwrap_or_default());
                }
            }
            self.push(TokenKind::Byte, text, line, col);
            return true;
        }
        if first == Some('b') && self.peek(1) == Some('"') {
            self.bump(); // b
            self.string(TokenKind::Str, line, col);
            return true;
        }
        // r / br: count hashes, then require a quote for a raw string.
        let mut hashes = 0;
        while self.peek(ahead) == Some('#') {
            ahead += 1;
            hashes += 1;
        }
        if self.peek(ahead) == Some('"') && (first == Some('r') || hashes > 0 || ahead == 2) {
            if first != Some('r') && !(first == Some('b') && self.peek(1) == Some('r')) {
                return false;
            }
            for _ in 0..=ahead {
                self.bump(); // prefix, hashes, opening quote
            }
            let closer: String = std::iter::once('"')
                .chain((0..hashes).map(|_| '#'))
                .collect();
            let mut text = String::new();
            loop {
                if self.peek(0).is_none() {
                    break;
                }
                if self.remaining_starts_with(&closer) {
                    for _ in 0..closer.len() {
                        self.bump();
                    }
                    break;
                }
                text.push(self.bump().unwrap_or_default());
            }
            self.push(TokenKind::Str, text, line, col);
            return true;
        }
        if first == Some('r') && hashes > 0 {
            // Raw identifier r#ident: skip the prefix, lex the identifier.
            self.bump(); // r
            self.bump(); // #
            self.ident(line, col);
            return true;
        }
        false
    }

    fn remaining_starts_with(&self, needle: &str) -> bool {
        needle
            .chars()
            .enumerate()
            .all(|(i, c)| self.peek(i) == Some(c))
    }

    fn line_comment(&mut self, line: u32) {
        self.bump(); // /
        self.bump(); // /
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(self.bump().unwrap_or_default());
        }
        self.comments.push(Comment {
            line,
            end_line: line,
            text,
        });
    }

    fn block_comment(&mut self, line: u32) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                    text.push_str("/*");
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                    if depth > 0 {
                        text.push_str("*/");
                    }
                }
                (Some(_), _) => text.push(self.bump().unwrap_or_default()),
                (None, _) => break,
            }
        }
        self.comments.push(Comment {
            line,
            end_line: self.line,
            text,
        });
    }

    fn string(&mut self, kind: TokenKind, line: u32, col: u32) {
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(self.bump().unwrap_or_default());
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                self.bump();
                break;
            } else {
                text.push(self.bump().unwrap_or_default());
            }
        }
        self.push(kind, text, line, col);
    }

    /// A single quote starts either a lifetime/label (`'a`, `'outer`) or a
    /// character literal (`'x'`, `'\n'`, `'\u{1F980}'`). A lifetime is an
    /// identifier start NOT followed by a closing quote.
    fn quote(&mut self, line: u32, col: u32) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime =
            matches!(next, Some(c) if c.is_alphabetic() || c == '_') && after != Some('\'');
        if is_lifetime {
            self.bump(); // '
            let mut text = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(self.bump().unwrap_or_default());
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line, col);
            return;
        }
        // Character literal.
        self.bump(); // '
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(self.bump().unwrap_or_default());
                if let Some(esc) = self.bump() {
                    text.push(esc);
                    if esc == 'u' && self.peek(0) == Some('{') {
                        while let Some(u) = self.bump() {
                            text.push(u);
                            if u == '}' {
                                break;
                            }
                        }
                    }
                }
            } else if c == '\'' {
                self.bump();
                break;
            } else {
                text.push(self.bump().unwrap_or_default());
            }
        }
        self.push(TokenKind::Char, text, line, col);
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(self.bump().unwrap_or_default());
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let take = if c.is_alphanumeric() || c == '_' {
                true
            } else if c == '.' {
                // `1.5` continues the number; `0..10` does not.
                matches!(self.peek(1), Some(d) if d.is_ascii_digit())
            } else if c == '+' || c == '-' {
                // Exponent sign: only directly after `e`/`E`.
                matches!(text.chars().last(), Some('e') | Some('E'))
            } else {
                false
            };
            if !take {
                break;
            }
            text.push(self.bump().unwrap_or_default());
        }
        self.push(TokenKind::Number, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .0
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn code_inside_strings_and_comments_is_inert() {
        let src = r#"
            // .unwrap() in a comment
            let x = "partial_cmp and .lock()"; /* unsafe { } */
            let b = b'{';
        "#;
        let (tokens, comments) = tokenize(src);
        assert!(!tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!tokens
            .iter()
            .any(|t| t.is_ident("partial_cmp") && t.kind == TokenKind::Ident));
        assert!(!tokens.iter().any(|t| t.is_ident("unsafe")));
        assert_eq!(comments.len(), 2);
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.contains("partial_cmp")));
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Byte && t.text == "{"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> &'static str { 'x' }");
        assert!(toks.contains(&(TokenKind::Lifetime, "a".into())));
        assert!(toks.contains(&(TokenKind::Lifetime, "static".into())));
        assert!(toks.contains(&(TokenKind::Char, "x".into())));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let toks = kinds(r##"let s = r#"quote " inside"#; let r#fn = 1;"##);
        assert!(toks.contains(&(TokenKind::Str, "quote \" inside".into())));
        assert!(toks.contains(&(TokenKind::Ident, "fn".into())));
    }

    #[test]
    fn numbers_survive_ranges_and_exponents() {
        let toks = kinds("0..10 1.5e-3 0x9E37_79B9");
        assert!(toks.contains(&(TokenKind::Number, "0".into())));
        assert!(toks.contains(&(TokenKind::Number, "10".into())));
        assert!(toks.contains(&(TokenKind::Number, "1.5e-3".into())));
        assert!(toks.contains(&(TokenKind::Number, "0x9E37_79B9".into())));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let (tokens, comments) = tokenize("/* outer /* inner */ still */ fn x() {}");
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("inner"));
        assert!(tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn lines_and_columns_are_tracked() {
        let (tokens, _) = tokenize("a\n  bee\n");
        assert_eq!(tokens[0].line, 1);
        assert_eq!(tokens[1].line, 2);
        assert_eq!(tokens[1].col, 2);
    }
}
