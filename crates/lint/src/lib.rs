//! `hmd_lint` — a workspace-native static analysis pass.
//!
//! The workspace encodes several invariants that `rustc` and `clippy` cannot
//! see: float orderings must be total, every `unsafe` must justify itself,
//! serving-path library code must not panic, the serving crate's locks must
//! stay shallow and short, and derived caches must never leak into the
//! persistence format. Each of those was established by hand in an earlier
//! PR; this crate turns them into machine-checked rules so they stay
//! established.
//!
//! Like the rest of the workspace (see `hmd_codec`'s hand-rolled JSON
//! parser), the linter is dependency-free: a comment- and string-aware
//! tokenizer ([`tokens`]), a lightweight scope tracker ([`scopes`]), and five
//! lexical rules ([`rules`]) over classified workspace files ([`workspace`]).
//! It is deliberately *not* a type checker — each rule trades exhaustive
//! precision for zero-dependency robustness, and each module documents the
//! trade it makes.
//!
//! # Usage
//!
//! ```text
//! cargo run --release -p hmd_lint -- --workspace          # lint everything
//! cargo run --release -p hmd_lint -- --workspace --json   # machine output
//! cargo run --release -p hmd_lint -- crates/serve/src/fleet.rs
//! cargo run --release -p hmd_lint -- --list-rules
//! ```
//!
//! Exit codes: `0` clean, `1` findings, `2` usage or I/O error. CI runs the
//! `--workspace` form as a blocking job.
//!
//! # Suppressions
//!
//! ```text
//! // hmd-lint: allow(rule-name) <reason — mandatory>
//! ```
//!
//! on its own line (targets the next code line) or trailing (targets its own
//! line). A reasonless `allow` suppresses nothing and is itself a finding;
//! see [`engine`] for the full semantics.

#![deny(missing_docs)]

pub mod diagnostics;
pub mod engine;
pub mod rules;
pub mod scopes;
pub mod source;
pub mod tokens;
pub mod workspace;
