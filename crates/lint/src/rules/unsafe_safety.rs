//! `unsafe-safety-comment`: every `unsafe` block or function must carry a
//! `// SAFETY:` justification.
//!
//! The workspace keeps `unsafe` vanishingly rare (one lifetime-erasing
//! transmute in the rayon shim's worker pool), which is exactly why each
//! occurrence must spell out the invariant making it sound — the next reader
//! has no surrounding culture of unsafe reasoning to lean on. The rule
//! accepts a `SAFETY:` comment trailing on the same line or in the
//! contiguous comment/attribute block directly above the `unsafe` keyword;
//! any interposed code line breaks the association. Shims included; test
//! code included (an unsound test scaffold can still corrupt the process
//! that runs next to real assertions).

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;
use crate::workspace::FileContext;

/// See the module docs.
pub struct UnsafeSafetyComment;

impl Rule for UnsafeSafetyComment {
    fn name(&self) -> &'static str {
        "unsafe-safety-comment"
    }

    fn applies(&self, _ctx: &FileContext) -> bool {
        true
    }

    fn check(&self, file: &SourceFile, _ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if !tokens[i].is_ident("unsafe") {
                continue;
            }
            let Some(next) = tokens.get(i + 1) else {
                continue;
            };
            // `unsafe impl`/`unsafe trait` declare a contract documented at
            // the trait; blocks and fns are where invariants are *relied on*.
            let needs_comment = next.is_punct('{') || next.is_ident("fn");
            if !needs_comment {
                continue;
            }
            let line = tokens[i].line;
            if has_safety_comment(file, line) {
                continue;
            }
            out.push(Diagnostic::new(
                &file.rel_path,
                line,
                self.name(),
                format!(
                    "`unsafe` {} without a `// SAFETY:` justification: document, \
                     directly above it, why the invariants hold",
                    if next.is_ident("fn") { "fn" } else { "block" }
                ),
            ));
        }
    }
}

/// True when a `SAFETY:` comment covers the `unsafe` at `line`: trailing on
/// the same line, or in the contiguous run of comment/attribute/blank lines
/// immediately above it.
fn has_safety_comment(file: &SourceFile, line: u32) -> bool {
    // Trailing comment on the unsafe line itself.
    if file
        .comments
        .iter()
        .any(|c| c.line <= line && line <= c.end_line && c.text.contains("SAFETY:"))
    {
        return true;
    }
    let mut current = line;
    while current > 1 {
        current -= 1;
        let text = file.line_text(current);
        let t = text.trim();
        let is_comment =
            t.starts_with("//") || t.starts_with("/*") || t.starts_with('*') || t.ends_with("*/");
        if is_comment {
            // Walking up through a multi-line comment: accept as soon as any
            // of its lines carries the marker.
            if t.contains("SAFETY:") {
                return true;
            }
            continue;
        }
        // Attributes and blank lines may sit between the comment and the
        // unsafe token (e.g. `#[allow(...)]` on the transmute).
        if t.is_empty() || t.starts_with("#[") || t.starts_with("#!") {
            continue;
        }
        return false; // interposed code: the comment above is not "directly above"
    }
    false
}
