//! The rules engine: the [`Rule`] trait and the five repo-specific rules.
//!
//! | rule | enforces | scope |
//! |------|----------|-------|
//! | `float-total-cmp` | float orderings use `total_cmp`, never `partial_cmp` or raw `<`/`>` comparators | all non-test library code |
//! | `unsafe-safety-comment` | every `unsafe` block/fn carries a `// SAFETY:` justification | everywhere, shims included |
//! | `no-panic-in-lib` | no `.unwrap()` / `.expect("...")` / `panic!`-family in serving-path library code | `core`/`codec`/`data`/`ml`/`serve` src |
//! | `lock-discipline` | no nested guard acquisition; no guard held across flush/codec/inference calls | `crates/serve` src |
//! | `derived-state-persistence` | derived caches (columnar/presorted/flat) never touch encode/decode paths | `hmd_codec` + persistence fns |
//!
//! Suppressions use `// hmd-lint: allow(rule) <reason>`; the reason is
//! mandatory (see [`crate::source::Suppression`]).

pub mod derived_state;
pub mod float_total_cmp;
pub mod lock_discipline;
pub mod no_panic;
pub mod unsafe_safety;

use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;
use crate::workspace::FileContext;

/// One static-analysis rule.
pub trait Rule {
    /// The rule's stable name (what `allow(...)` references).
    fn name(&self) -> &'static str;

    /// Whether the rule runs on a file with this context at all.
    fn applies(&self, ctx: &FileContext) -> bool;

    /// Scans `file` and appends findings to `out`.
    fn check(&self, file: &SourceFile, ctx: &FileContext, out: &mut Vec<Diagnostic>);
}

/// The full rule set, in reporting order.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(float_total_cmp::FloatTotalCmp),
        Box::new(unsafe_safety::UnsafeSafetyComment),
        Box::new(no_panic::NoPanicInLib),
        Box::new(lock_discipline::LockDiscipline),
        Box::new(derived_state::DerivedStatePersistence),
    ]
}

/// Every valid rule name, including the meta rule for the suppression syntax
/// itself (used to validate `allow(...)` arguments).
pub fn known_names() -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all().iter().map(|r| r.name()).collect();
    names.push(crate::engine::SUPPRESSION_RULE);
    names
}
