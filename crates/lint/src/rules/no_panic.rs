//! `no-panic-in-lib`: serving-path library code must not panic.
//!
//! A detector fleet serving millions of users cannot afford a poisoned lock
//! or a dead scorer thread because someone `.unwrap()`ed an `Option` that was
//! "obviously" `Some`. Library code in the serving crates
//! (`core`/`codec`/`data`/`ml`/`serve`/`loop`) and the corpus generators
//! (`dvfs`/`hpc`/`threat` — their streams feed long-running soak and
//! robustness runs, where a panic kills hours of accumulated state) must
//! surface failures as `Result` values; tests, benches, and examples stay
//! free to assert. Flagged forms:
//!
//! - `panic!(`, `unreachable!(`, `todo!(`, `unimplemented!(`
//! - `.unwrap()`
//! - `.expect("...")` — only with a string-literal argument, which is what
//!   distinguishes `Option::expect`/`Result::expect` from same-named domain
//!   methods (the `hmd_codec` parser's `expect(b'{')` takes byte literals)
//!
//! `assert!`/`debug_assert!` are deliberately NOT flagged: they encode
//! documented invariants, and turning them into `Result`s would hide logic
//! errors instead of failing loudly in tests. Provably unreachable panics
//! keep a reasoned `hmd-lint: allow(no-panic-in-lib)` instead of dead
//! error-handling code.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;
use crate::tokens::TokenKind;
use crate::workspace::{FileContext, FileKind};

/// Crates whose library code is on the serving path, plus the corpus
/// generators whose streams drive long-running robustness evaluations.
const SERVING_CRATES: &[&str] = &[
    "core", "codec", "data", "ml", "serve", "loop", "dvfs", "hpc", "threat",
];

/// Panicking macros flagged by the rule.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// See the module docs.
pub struct NoPanicInLib;

impl Rule for NoPanicInLib {
    fn name(&self) -> &'static str {
        "no-panic-in-lib"
    }

    fn applies(&self, ctx: &FileContext) -> bool {
        ctx.kind == FileKind::Lib
            && !ctx.is_shim
            && SERVING_CRATES.contains(&ctx.crate_name.as_str())
    }

    fn check(&self, file: &SourceFile, _ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            let tok = &tokens[i];
            if tok.kind != TokenKind::Ident || file.in_test_span(tok.line) {
                continue;
            }
            let next_is =
                |ahead: usize, ch: char| tokens.get(i + ahead).is_some_and(|t| t.is_punct(ch));
            if PANIC_MACROS.contains(&tok.text.as_str()) && next_is(1, '!') {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    self.name(),
                    format!(
                        "`{}!` in library code: return an error (`Result`/`FleetError`) \
                         instead of taking the serving thread down",
                        tok.text
                    ),
                ));
                continue;
            }
            let after_dot = i > 0 && tokens[i - 1].is_punct('.');
            if after_dot && tok.text == "unwrap" && next_is(1, '(') && next_is(2, ')') {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    self.name(),
                    "`.unwrap()` in library code: propagate the error or recover \
                     (for mutex poisoning, use the `lock_unpoisoned` idiom)",
                ));
                continue;
            }
            if after_dot
                && tok.text == "expect"
                && next_is(1, '(')
                && tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Str)
            {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    self.name(),
                    "`.expect(\"...\")` in library code: propagate the error or prove \
                     the invariant in the type (a reasoned allow is acceptable only \
                     for construction-guaranteed invariants)",
                ));
            }
        }
    }
}
