//! `lock-discipline`: a static lock-acquisition tracker over `crates/serve`.
//!
//! The serving crate holds 20+ lock sites feeding one hot path; the two
//! failure shapes a fleet is most exposed to are (a) **nested acquisition** —
//! taking a second lock while a guard is live invites lock-ordering
//! deadlocks, and (b) **long critical sections** — a guard held across a
//! flush, codec round-trip, or model inference turns one slow request into
//! fleet-wide tail latency. This rule builds a lexical guard-liveness model
//! per function and flags both shapes.
//!
//! The tracker understands, token-by-token:
//!
//! - **acquisitions**: `.lock(`, `.read(`, `.write(` and the poison-recovering
//!   `.lock_unpoisoned(` / `.read_unpoisoned(` / `.write_unpoisoned(` idiom
//!   from `hmd_serve::sync`;
//! - **binding**: `let g = x.lock_unpoisoned();` creates a named guard that
//!   lives to the end of its block; an acquisition chained onward
//!   (`x.lock_unpoisoned().take()`) or used inside a larger expression is a
//!   temporary that dies at the end of its statement;
//! - **death**: block end `}`, explicit `drop(g)`, a by-value move as a bare
//!   call argument (`condvar.wait(g)`), or reassignment (`g = ...`);
//! - **long calls**: with any guard live, a call to a flush/codec/inference
//!   function (`flush`, `drain`, `save`, `load`, `encode`, `decode`,
//!   `serialize`, `deserialize`, `to_json`, `from_json`, `to_saved_json`,
//!   `parse`, `detect_rows`, `detect_batch`), to `sleep`, or to a blocking
//!   socket operation (`read`/`write` with arguments, `read_exact`,
//!   `write_all`, `accept`, `connect`, `read_request`, `write_response`) is
//!   flagged. The `sleep` entry polices the background flusher shape: the
//!   supervisor thread must scan endpoint deadlines in a scoped guard, then
//!   park *outside* it — a guard held across its sleep/wait would stall
//!   every scorer for the whole `max_wait` window. (Condvar waits are fine:
//!   they take the guard by value, which this tracker counts as a
//!   move-death.) The socket entries police the wire-protocol layer in
//!   `net/`: a guard held across blocking I/O hands the critical section's
//!   duration to the remote peer's TCP window. `.read(`/`.write(` are
//!   disambiguated from `RwLock` acquisitions by argument presence.
//!
//! The model is lexical, not interprocedural: it will not see a lock taken
//! inside a callee. That is the right trade for a workspace-native linter —
//! it catches the regression shapes PRs actually introduce (inlining a flush
//! into a critical section, adding a second `.lock()` to a scope) with zero
//! dependencies and no false positives from aliasing it cannot resolve.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::source::SourceFile;
use crate::tokens::{Token, TokenKind};
use crate::workspace::{FileContext, FileKind};

/// Method names that acquire a guard.
///
/// `read`/`write` are ambiguous: argument-free they are `RwLock`
/// acquisitions, with an argument they are `std::io::Read`/`Write` calls
/// on a byte stream. The tracker disambiguates lexically by argument
/// presence — see the acquisition branch in [`Tracker::ident`].
const ACQUIRE: &[&str] = &[
    "lock",
    "read",
    "write",
    "lock_unpoisoned",
    "read_unpoisoned",
    "write_unpoisoned",
];

/// Calls that must not run inside a critical section: flush/codec/
/// inference work, the flusher's park, and — since the wire protocol
/// landed — **blocking socket I/O** (`read`/`write` with arguments,
/// `read_exact`/`write_all`, `accept`, `connect`, and the frame helpers
/// `read_request`/`write_response`). A guard held across a socket call
/// couples every scorer on
/// that endpoint to one peer's TCP window.
const LONG_CALLS: &[&str] = &[
    "flush",
    "drain",
    "save",
    "load",
    "encode",
    "decode",
    "serialize",
    "deserialize",
    "to_json",
    "from_json",
    "to_saved_json",
    "parse",
    "detect_rows",
    "detect_batch",
    "sleep",
    "read",
    "write",
    "read_exact",
    "write_all",
    "accept",
    "connect",
    "read_request",
    "write_response",
];

/// See the module docs.
pub struct LockDiscipline;

impl Rule for LockDiscipline {
    fn name(&self) -> &'static str {
        "lock-discipline"
    }

    fn applies(&self, ctx: &FileContext) -> bool {
        ctx.crate_name == "serve" && ctx.kind == FileKind::Lib && !ctx.is_shim
    }

    fn check(&self, file: &SourceFile, _ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        Tracker {
            file,
            rule: self.name(),
            guards: Vec::new(),
            out,
        }
        .run();
    }
}

/// One live guard.
struct Guard {
    /// Binding name; `None` for within-statement temporaries.
    name: Option<String>,
    /// Line of the acquisition (for the finding message).
    line: u32,
    /// Brace depth the guard was created at (dies when the block closes).
    depth: usize,
    /// Statement counter at creation (temporaries die at statement end).
    stmt: u64,
}

struct Tracker<'a> {
    file: &'a SourceFile,
    rule: &'static str,
    guards: Vec<Guard>,
    out: &'a mut Vec<Diagnostic>,
}

impl Tracker<'_> {
    fn run(mut self) {
        let tokens = &self.file.tokens;
        let mut depth = 0usize;
        let mut stmt = 0u64;
        // The `let`-binding target of the current statement, if any.
        let mut let_name: Option<String> = None;
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            if tok.is_punct('{') {
                depth += 1;
                i += 1;
                continue;
            }
            if tok.is_punct('}') {
                self.guards.retain(|g| g.depth < depth);
                depth = depth.saturating_sub(1);
                stmt += 1;
                let_name = None;
                i += 1;
                continue;
            }
            if tok.is_punct(';') {
                // Temporaries of this statement die here.
                self.guards.retain(|g| g.name.is_some() || g.stmt != stmt);
                stmt += 1;
                let_name = None;
                i += 1;
                continue;
            }
            if tok.is_ident("let") {
                let_name = match (tokens.get(i + 1), tokens.get(i + 2)) {
                    (Some(m), Some(name)) if m.is_ident("mut") && name.kind == TokenKind::Ident => {
                        Some(name.text.clone())
                    }
                    (Some(name), _) if name.kind == TokenKind::Ident && !name.is_ident("mut") => {
                        Some(name.text.clone())
                    }
                    _ => None,
                };
                i += 1;
                continue;
            }
            // `let g = *x.lock();` deref-copies the value out of the guard:
            // the acquisition is a within-statement temporary, the binding a
            // plain copy — clear the binding target so it does not capture
            // the guard.
            if tok.is_punct('*') && i > 0 && tokens[i - 1].is_punct('=') {
                let_name = None;
            }
            if tok.kind == TokenKind::Ident {
                self.ident(tokens, i, depth, stmt, &mut let_name);
            }
            i += 1;
        }
    }

    fn ident(
        &mut self,
        tokens: &[Token],
        i: usize,
        depth: usize,
        stmt: u64,
        let_name: &mut Option<String>,
    ) {
        let tok = &tokens[i];
        let prev = i.checked_sub(1).map(|p| &tokens[p]);
        let next = tokens.get(i + 1);
        let after_dot = prev.is_some_and(|p| p.is_punct('.'));
        let called = next.is_some_and(|n| n.is_punct('('));

        // drop(g): explicit guard death.
        if tok.is_ident("drop") && called {
            if let Some(arg) = tokens.get(i + 2) {
                if arg.kind == TokenKind::Ident {
                    let name = arg.text.clone();
                    self.guards.retain(|g| g.name.as_deref() != Some(&name));
                }
            }
            return;
        }

        // Acquisition. `.read(` / `.write(` are only acquisitions when
        // argument-free: `RwLock::read`/`write` take no arguments, while
        // `std::io::Read::read(&mut buf)` / `Write::write(&buf)` always do.
        // Argful calls fall through to the long-call branch below.
        let io_call = matches!(tok.text.as_str(), "read" | "write")
            && tokens.get(i + 2).is_some_and(|t| !t.is_punct(')'));
        if after_dot && called && !io_call && ACQUIRE.contains(&tok.text.as_str()) {
            if let Some(live) = self.guards.first() {
                self.out.push(Diagnostic::new(
                    &self.file.rel_path,
                    tok.line,
                    self.rule,
                    format!(
                        "`.{}()` acquired while guard{} from line {} is still live: \
                         release the first guard (scope it, `drop` it, or merge the \
                         critical sections) — nested acquisition is the deadlock shape",
                        tok.text,
                        live.name
                            .as_ref()
                            .map(|n| format!(" `{n}`"))
                            .unwrap_or_default(),
                        live.line
                    ),
                ));
            }
            // Bound or temporary? Find the call's closing paren: a `;`
            // directly after (through closing delimiters) means the guard is
            // the statement's bound value.
            let close = crate::scopes::matching_close(tokens, i + 1).unwrap_or(i + 1);
            let mut k = close + 1;
            while tokens
                .get(k)
                .is_some_and(|t| t.is_punct(')') || t.is_punct('?'))
            {
                k += 1;
            }
            let bound = tokens.get(k).is_some_and(|t| t.is_punct(';'));
            self.guards.push(Guard {
                name: if bound { let_name.clone() } else { None },
                line: tok.line,
                depth,
                stmt,
            });
            return;
        }

        // Long call while any guard is live.
        if called
            && LONG_CALLS.contains(&tok.text.as_str())
            && !prev.is_some_and(|p| p.is_ident("fn"))
        {
            if let Some(live) = self.guards.first() {
                self.out.push(Diagnostic::new(
                    &self.file.rel_path,
                    tok.line,
                    self.rule,
                    format!(
                        "guard{} from line {} held across `{}()`: flush/codec/inference \
                         and blocking socket work must run outside critical sections \
                         (tail-latency and deadlock hazard)",
                        live.name
                            .as_ref()
                            .map(|n| format!(" `{n}`"))
                            .unwrap_or_default(),
                        live.line,
                        tok.text
                    ),
                ));
            }
            return;
        }

        // Guard moves and reassignment.
        let prev_ok = prev.is_none_or(|p| !(p.is_punct('.') || p.is_punct('&') || p.is_punct('*')));
        if !prev_ok {
            return;
        }
        // Assignment `x = ...` (not `==`, `=>`, part of `<=`/`>=`/`!=`):
        // kills a live guard of that name, and seeds the binding target so a
        // fresh acquisition on the right-hand side binds back to the name —
        // whether or not the old value was a guard (re-lock after `drop`).
        let assigned = next.is_some_and(|n| n.is_punct('='))
            && !tokens
                .get(i + 2)
                .is_some_and(|n| n.is_punct('=') || n.is_punct('>'))
            && prev.is_none_or(|p| {
                !(p.is_punct('=') || p.is_punct('<') || p.is_punct('>') || p.is_punct('!'))
            });
        let guard_idx = self
            .guards
            .iter()
            .position(|g| g.name.as_deref() == Some(tok.text.as_str()));
        if assigned {
            if let Some(idx) = guard_idx {
                self.guards.remove(idx);
            }
            *let_name = Some(tok.text.clone());
            return;
        }
        if let Some(idx) = guard_idx {
            // By-value move as a bare call argument: `( g ,` / `, g )` ...
            let moved = prev.is_some_and(|p| p.is_punct('(') || p.is_punct(','))
                && next.is_some_and(|n| n.is_punct(',') || n.is_punct(')'));
            if moved {
                self.guards.remove(idx);
            }
        }
    }
}
