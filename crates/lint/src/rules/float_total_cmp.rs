//! `float-total-cmp`: float orderings must use `f64::total_cmp`.
//!
//! PR 3 swept a whole class of NaN-ordering bugs by replacing
//! `partial_cmp`-based comparators in sort/max contexts with `total_cmp`;
//! this rule keeps them out. Two patterns fire:
//!
//! 1. any `.partial_cmp(` call in non-test library code — `partial_cmp`
//!    returns `None` on NaN, and every `.unwrap()`/default on that result is
//!    a latent mis-sort. The intentional NaN-*rejecting* validation in
//!    `hmd_ml::tsne` carries a reasoned allow.
//! 2. a raw `<`/`>`/`<=`/`>=` comparison inside a comparator closure passed
//!    to `sort_by` / `sort_unstable_by` / `max_by` / `min_by` /
//!    `binary_search_by` — hand-rolled float comparators are the same bug
//!    with extra steps. (Operators are recognised space-delimited, which is
//!    what rustfmt — enforced in CI — produces for binary comparisons;
//!    generics like `Vec<f64>` stay unspaced and inert.)

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::scopes::matching_close;
use crate::source::SourceFile;
use crate::tokens::TokenKind;
use crate::workspace::{FileContext, FileKind};

/// Comparator-taking adapters whose closures the rule inspects.
const COMPARATOR_CALLS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// See the module docs.
pub struct FloatTotalCmp;

impl Rule for FloatTotalCmp {
    fn name(&self) -> &'static str {
        "float-total-cmp"
    }

    fn applies(&self, ctx: &FileContext) -> bool {
        ctx.kind == FileKind::Lib
    }

    fn check(&self, file: &SourceFile, _ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        let tokens = &file.tokens;
        for i in 0..tokens.len() {
            if file.in_test_span(tokens[i].line) {
                continue;
            }
            if tokens[i].is_ident("partial_cmp") && i > 0 && tokens[i - 1].is_punct('.') {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    tokens[i].line,
                    self.name(),
                    "`.partial_cmp()` in library code: float orderings must use \
                     `f64::total_cmp` (NaN-ordering bug class swept in PR 3); suppress \
                     with a reasoned allow only for intentional NaN-rejecting checks",
                ));
            }
            // Comparator closures: `.sort_by(` ... `)` containing a raw
            // space-delimited comparison operator.
            let is_comparator = tokens[i].kind == TokenKind::Ident
                && COMPARATOR_CALLS.contains(&tokens[i].text.as_str())
                && i > 0
                && tokens[i - 1].is_punct('.')
                && tokens.get(i + 1).is_some_and(|t| t.is_punct('('));
            if !is_comparator {
                continue;
            }
            let Some(close) = matching_close(tokens, i + 1) else {
                continue;
            };
            for j in i + 2..close {
                let tok = &tokens[j];
                if !(tok.is_punct('<') || tok.is_punct('>')) {
                    continue;
                }
                // Merge `<=` / `>=` written as adjacent tokens.
                let mut end_col = tok.col + 1;
                if tokens
                    .get(j + 1)
                    .is_some_and(|n| n.is_punct('=') && n.line == tok.line && n.col == end_col)
                {
                    end_col += 1;
                }
                let line = file.line_text(tok.line);
                let chars: Vec<char> = line.chars().collect();
                let before_space = tok.col == 0
                    || chars
                        .get(tok.col as usize - 1)
                        .is_some_and(|c| c.is_whitespace());
                let after_space = chars
                    .get(end_col as usize)
                    .is_none_or(|c| c.is_whitespace());
                if before_space && after_space {
                    out.push(Diagnostic::new(
                        &file.rel_path,
                        tok.line,
                        self.name(),
                        format!(
                            "raw `{}` comparison inside a `{}` comparator: use \
                             `total_cmp` so NaN has a defined order",
                            if end_col > tok.col + 1 {
                                format!("{}=", tok.text)
                            } else {
                                tok.text.clone()
                            },
                            tokens[i].text
                        ),
                    ));
                }
            }
        }
    }
}
