//! `derived-state-persistence`: derived caches never reach the codec.
//!
//! The persistence invariant (see ARCHITECTURE.md, "What is persisted vs
//! derived"): a saved model document holds only the *source of truth* — tree
//! structures, hyperparameters, feature metadata. Everything derived for
//! speed (the columnar training cache with its `presorted_rows`, the
//! flattened `FlatForest` inference representation built by
//! `compile_groups`) is rebuilt on load, never serialized. Persisting
//! derived state silently couples the wire format to internal layout and
//! rots the moment the cache changes shape.
//!
//! The rule scans two territories for derived-cache identifiers:
//!
//! 1. **all of `hmd_codec`'s library code** — the codec must be wholly
//!    ignorant of derived representations;
//! 2. **persistence functions elsewhere** (`to_json`, `from_json`,
//!    `to_saved_json`, `save`, `load`) — the identifiers may exist in the
//!    crate, but not inside the encode/decode paths. (`from_json`
//!    *rebuilding* a cache via a constructor like `from_trees` is fine and
//!    matches the current code; naming the cache fields directly is not.)
//!
//! Both identifier tokens and string literals (JSON keys!) are checked.

use super::Rule;
use crate::diagnostics::Diagnostic;
use crate::scopes::fn_bodies;
use crate::source::SourceFile;
use crate::tokens::TokenKind;
use crate::workspace::{FileContext, FileKind};

/// Identifiers naming derived-cache state.
const DERIVED: &[&str] = &[
    "columnar",
    "presorted",
    "presorted_rows",
    "flat",
    "FlatForest",
    "FlatTree",
    "FlatForestBuilder",
    "compile_groups",
    "append_flat_group",
];

/// Function names whose bodies are persistence paths.
const PERSIST_FNS: &[&str] = &["to_json", "from_json", "to_saved_json", "save", "load"];

/// See the module docs.
pub struct DerivedStatePersistence;

impl Rule for DerivedStatePersistence {
    fn name(&self) -> &'static str {
        "derived-state-persistence"
    }

    fn applies(&self, ctx: &FileContext) -> bool {
        ctx.kind == FileKind::Lib && !ctx.is_shim
    }

    fn check(&self, file: &SourceFile, ctx: &FileContext, out: &mut Vec<Diagnostic>) {
        if ctx.crate_name == "codec" {
            // The whole crate is a persistence path.
            for i in 0..file.tokens.len() {
                self.check_token(file, i, "the codec crate", out);
            }
            return;
        }
        for body in fn_bodies(&file.tokens) {
            if !PERSIST_FNS.contains(&body.name.as_str()) {
                continue;
            }
            if file.in_test_span(file.tokens[body.body.0].line) {
                continue;
            }
            let context = format!("persistence fn `{}`", body.name);
            for i in body.body.0..=body.body.1 {
                self.check_token(file, i, &context, out);
            }
        }
    }
}

impl DerivedStatePersistence {
    fn check_token(&self, file: &SourceFile, i: usize, context: &str, out: &mut Vec<Diagnostic>) {
        let tok = &file.tokens[i];
        if file.in_test_span(tok.line) {
            return;
        }
        let hit = match tok.kind {
            TokenKind::Ident => DERIVED
                .contains(&tok.text.as_str())
                .then(|| tok.text.clone()),
            TokenKind::Str => DERIVED
                .iter()
                .find(|name| contains_word(&tok.text, name))
                .map(|name| (*name).to_string()),
            _ => None,
        };
        if let Some(name) = hit {
            out.push(Diagnostic::new(
                &file.rel_path,
                tok.line,
                self.name(),
                format!(
                    "derived-cache identifier `{name}` in {context}: derived state \
                     (columnar/presorted caches, flat forests) is rebuilt on load, \
                     never persisted — keep it out of encode/decode paths"
                ),
            ));
        }
    }
}

/// True when `word` occurs in `text` delimited by non-identifier characters
/// (so the JSON key `"presorted_rows"` hits but `"inflate"` does not hit
/// `flat`).
fn contains_word(text: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(idx) = text[start..].find(word) {
        let at = start + idx;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = after >= text.len()
            || !text[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::FileContext;
    use crate::workspace::FileKind;

    #[test]
    fn codec_crate_is_scanned_wholesale() {
        let file = SourceFile::parse(
            "crates/codec/src/model.rs",
            "fn helper() { let x = doc.presorted_rows; }\n",
        );
        let ctx = FileContext::new("codec", FileKind::Lib, false);
        let mut out = Vec::new();
        DerivedStatePersistence.check(&file, &ctx, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn non_persistence_fns_elsewhere_are_free_to_use_caches() {
        let file = SourceFile::parse(
            "crates/ml/src/forest.rs",
            "fn fit() { let flat = build(); }\nfn to_json(&self) -> String { render(self) }\n",
        );
        let ctx = FileContext::new("ml", FileKind::Lib, false);
        let mut out = Vec::new();
        DerivedStatePersistence.check(&file, &ctx, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn persistence_fn_naming_a_cache_is_flagged_even_via_json_key() {
        let file = SourceFile::parse(
            "crates/ml/src/forest.rs",
            "fn to_json(&self) -> String { format(\"{\\\"flat\\\": 1}\") }\n",
        );
        let ctx = FileContext::new("ml", FileKind::Lib, false);
        let mut out = Vec::new();
        DerivedStatePersistence.check(&file, &ctx, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn word_boundaries_prevent_substring_hits() {
        assert!(contains_word("{\"presorted_rows\": []}", "presorted_rows"));
        assert!(!contains_word("inflate the buffer", "flat"));
        assert!(!contains_word("conflated", "flat"));
        assert!(contains_word("a flat list", "flat"));
    }
}
