//! Workspace discovery and file classification.
//!
//! The linter walks the workspace the same way the rules reason about it:
//! every `.rs` file gets a [`FileContext`] naming its crate and its role
//! (library, test, bench, example), which each rule's `applies` gate consults.
//! Lint fixture files (`**/tests/fixtures/**`) are excluded — they contain
//! seeded violations by design.

use std::path::{Path, PathBuf};

/// The role a file plays in its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library or binary source under `src/` — the code that ships.
    Lib,
    /// Integration tests under `tests/`.
    Test,
    /// Benchmarks under `benches/`.
    Bench,
    /// Examples under `examples/`.
    Example,
}

/// Where a file lives: its crate, role, and whether it is a vendored shim.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Crate directory name (`core`, `codec`, `serve`, ..., `hmd` for the
    /// facade at the workspace root).
    pub crate_name: String,
    /// The file's role within the crate.
    pub kind: FileKind,
    /// True for the vendored dependency shims under `shims/`.
    pub is_shim: bool,
}

impl FileContext {
    /// A context for ad-hoc single-file runs and tests.
    pub fn new(crate_name: &str, kind: FileKind, is_shim: bool) -> FileContext {
        FileContext {
            crate_name: crate_name.to_string(),
            kind,
            is_shim,
        }
    }
}

/// Ascends from `start` to the directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Recursively collects every workspace `.rs` file with its classification,
/// sorted by relative path for deterministic output.
pub fn discover(root: &Path) -> std::io::Result<Vec<(PathBuf, String, FileContext)>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(files)
}

fn walk(
    root: &Path,
    dir: &Path,
    files: &mut Vec<(PathBuf, String, FileContext)>,
) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().to_string();
        if path.is_dir() {
            // target/ holds build artifacts, .git history, fixtures seeded
            // violations; none of them are workspace source.
            if name == "target" || name.starts_with('.') || name == "fixtures" {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if let Some(ctx) = classify(&rel) {
                files.push((path, rel, ctx));
            }
        }
    }
    Ok(())
}

/// Maps a workspace-relative path to its [`FileContext`].
///
/// Returns `None` for files the linter has no business reading (nothing in
/// the current layout, but future generated code can be excluded here).
pub fn classify(rel: &str) -> Option<FileContext> {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, is_shim, rest) = match parts.as_slice() {
        ["crates", krate, rest @ ..] => ((*krate).to_string(), false, rest),
        ["shims", shim, rest @ ..] => ((*shim).to_string(), true, rest),
        // Workspace root: the facade crate plus its tests/examples.
        rest => ("hmd".to_string(), false, rest),
    };
    let kind = match rest.first().copied() {
        Some("src") => FileKind::Lib,
        Some("tests") => FileKind::Test,
        Some("benches") => FileKind::Bench,
        Some("examples") => FileKind::Example,
        // build.rs and other root-level files count as library code.
        Some(_) | None => FileKind::Lib,
    };
    Some(FileContext {
        crate_name,
        kind,
        is_shim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_layout() {
        let c = classify("crates/serve/src/fleet.rs").unwrap();
        assert_eq!(c.crate_name, "serve");
        assert_eq!(c.kind, FileKind::Lib);
        assert!(!c.is_shim);

        let c = classify("shims/rayon/src/lib.rs").unwrap();
        assert_eq!(c.crate_name, "rayon");
        assert!(c.is_shim);

        let c = classify("crates/ml/tests/flat_equivalence.rs").unwrap();
        assert_eq!(c.kind, FileKind::Test);

        let c = classify("src/lib.rs").unwrap();
        assert_eq!(c.crate_name, "hmd");
        assert_eq!(c.kind, FileKind::Lib);

        let c = classify("examples/quickstart.rs").unwrap();
        assert_eq!(c.kind, FileKind::Example);

        let c = classify("crates/bench/benches/fit_throughput.rs").unwrap();
        assert_eq!(c.kind, FileKind::Bench);
    }

    #[test]
    fn classification_covers_the_corpus_module_layout() {
        // The corpus generators grew streaming modules and integration
        // suites; the classifier must keep their lib code in scope for the
        // no-panic rule while leaving the tests free to assert.
        let c = classify("crates/dvfs/src/stream.rs").unwrap();
        assert_eq!(c.crate_name, "dvfs");
        assert_eq!(c.kind, FileKind::Lib);
        assert!(!c.is_shim);

        let c = classify("crates/hpc/src/stream.rs").unwrap();
        assert_eq!(c.crate_name, "hpc");
        assert_eq!(c.kind, FileKind::Lib);

        let c = classify("crates/threat/src/evasion.rs").unwrap();
        assert_eq!(c.crate_name, "threat");
        assert_eq!(c.kind, FileKind::Lib);

        let c = classify("crates/dvfs/tests/stream.rs").unwrap();
        assert_eq!(c.crate_name, "dvfs");
        assert_eq!(c.kind, FileKind::Test);

        let c = classify("crates/hpc/tests/stream.rs").unwrap();
        assert_eq!(c.kind, FileKind::Test);

        let c = classify("crates/loop/tests/adversarial_loop.rs").unwrap();
        assert_eq!(c.crate_name, "loop");
        assert_eq!(c.kind, FileKind::Test);
    }

    #[test]
    fn the_workspace_root_is_found_from_this_crate() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_root(here).expect("workspace root above crates/lint");
        assert!(root.join("crates/lint").is_dir());
    }
}
