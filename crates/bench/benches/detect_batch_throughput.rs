//! Throughput of the batch-first inference hot path.
//!
//! Measures `Detector::detect_batch` in samples/second at batch sizes 1, 64
//! and 4096 on the trusted random-forest DVFS pipeline, so future PRs can
//! track regressions of the serving path. Batch 1 is the degenerate
//! per-window case; 4096 exercises the tiled flat-engine path.
//!
//! Besides the console output, the run writes machine-readable results to
//! `BENCH_detect_batch.json` at the repository root (see the criterion
//! shim's JSON report) so the perf trajectory is tracked across PRs; the
//! committed copy records the numbers for the current PR next to the PR-1
//! baseline. Set `HMD_BENCH_QUICK=1` for a fast CI smoke run.
//!
//! ```text
//! cargo bench -p hmd_bench --bench detect_batch_throughput
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hmd_bench::pipelines::{detector_config, BaseModel};
use hmd_bench::ExperimentScale;
use hmd_core::detector::DetectorExt;
use hmd_data::Matrix;
use std::time::Instant;

/// Where the machine-readable results land: the repository root, so the file
/// is committed alongside the code whose performance it documents.
const JSON_REPORT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_detect_batch.json");

/// Samples/second measured for PR 1 (nested enum walk, per-call scoped
/// threads) on the same smoke RF pipeline — the baseline this PR's flat
/// engine is gated against.
const PR1_BASELINE: [(usize, f64); 3] = [(1, 94_953.0), (64, 1_846_675.0), (4096, 2_358_643.0)];

fn quick_mode() -> bool {
    std::env::var("HMD_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Builds a batch of the requested size by cycling the unknown set's rows.
fn batch_of(source: &Matrix, size: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..size)
        .map(|i| source.row(i % source.rows()).to_vec())
        .collect();
    Matrix::from_rows(&rows).expect("uniform rows")
}

fn bench_detect_batch(c: &mut Criterion) {
    let scale = ExperimentScale::Smoke;
    let split = scale
        .dvfs_builder()
        .build_split(2021)
        .expect("DVFS corpus generation");
    let detector = detector_config(BaseModel::RandomForest, scale.num_estimators(), false)
        .fit(&split.train, 7)
        .expect("RF pipeline trains");
    let budget_ms = if quick_mode() { 60 } else { 300 };

    c.json_note("bench", "detect_batch_throughput");
    c.json_note("pipeline", detector.name());
    c.json_note("scale", scale.name());
    for (size, baseline) in PR1_BASELINE {
        c.json_note(
            &format!("pr1_baseline_batch_{size}_samples_per_sec"),
            format!("{baseline:.0}"),
        );
    }

    println!("\ndetect_batch throughput — {}", detector.name());
    for &size in &[1usize, 64, 4096] {
        let batch = batch_of(split.unknown.features(), size);

        // Headline number: explicit samples/sec over a fixed wall-clock
        // budget, independent of the harness.
        let mut iterations = 0usize;
        let start = Instant::now();
        while start.elapsed().as_millis() < budget_ms {
            let reports = detector.detect_batch(&batch).expect("batch inference");
            assert_eq!(reports.len(), size);
            iterations += 1;
        }
        let per_sec = (iterations * size) as f64 / start.elapsed().as_secs_f64();
        println!("  batch {size:>5}: {per_sec:>12.0} samples/sec");
        c.json_note(
            &format!("headline_batch_{size}_samples_per_sec"),
            format!("{per_sec:.0}"),
        );

        c.throughput(Throughput::Elements(size as u64));
        c.bench_function(&format!("detect_batch_{size}"), |b| {
            b.iter(|| detector.detect_batch(&batch).expect("batch inference"))
        });
    }
}

criterion_group! {
    name = benches;
    config = {
        let samples = if quick_mode() { 5 } else { 10 };
        Criterion::default()
            .sample_size(samples)
            .with_json_report(JSON_REPORT)
    };
    targets = bench_detect_batch
}
criterion_main!(benches);
