//! Throughput of the batch-first inference hot path.
//!
//! Measures `Detector::detect_batch` in samples/second at batch sizes 1, 64
//! and 4096 on the trusted random-forest DVFS pipeline, so future PRs can
//! track regressions of the serving path. Batch 1 is the degenerate
//! per-window case; 4096 exercises the parallel row-scoring path.
//!
//! ```text
//! cargo bench -p hmd_bench --bench detect_batch_throughput
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::pipelines::{detector_config, BaseModel};
use hmd_bench::ExperimentScale;
use hmd_data::Matrix;
use std::time::Instant;

/// Builds a batch of the requested size by cycling the unknown set's rows.
fn batch_of(source: &Matrix, size: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..size)
        .map(|i| source.row(i % source.rows()).to_vec())
        .collect();
    Matrix::from_rows(&rows).expect("uniform rows")
}

fn bench_detect_batch(c: &mut Criterion) {
    let scale = ExperimentScale::Smoke;
    let split = scale
        .dvfs_builder()
        .build_split(2021)
        .expect("DVFS corpus generation");
    let detector = detector_config(BaseModel::RandomForest, scale.num_estimators(), false)
        .fit(&split.train, 7)
        .expect("RF pipeline trains");

    println!("\ndetect_batch throughput — {}", detector.name());
    for &size in &[1usize, 64, 4096] {
        let batch = batch_of(split.unknown.features(), size);

        // Headline number: explicit samples/sec over a fixed wall-clock
        // budget, independent of the harness.
        let mut iterations = 0usize;
        let start = Instant::now();
        while start.elapsed().as_millis() < 300 {
            let reports = detector.detect_batch(&batch).expect("batch inference");
            assert_eq!(reports.len(), size);
            iterations += 1;
        }
        let per_sec = (iterations * size) as f64 / start.elapsed().as_secs_f64();
        println!("  batch {size:>5}: {per_sec:>12.0} samples/sec");

        c.bench_function(&format!("detect_batch_{size}"), |b| {
            b.iter(|| detector.detect_batch(&batch).expect("batch inference"))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_detect_batch
}
criterion_main!(benches);
