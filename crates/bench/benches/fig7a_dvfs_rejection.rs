//! Times the regeneration of Fig. 7a (DVFS rejection curves) and prints the
//! data series once.

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::{rejection_curves, ExperimentScale};

fn bench_fig7a(c: &mut Criterion) {
    let figure = rejection_curves::fig7a(ExperimentScale::Smoke, 2021);
    println!("\n{}", rejection_curves::render(&figure));
    c.bench_function("fig7a_dvfs_rejection_curves", |b| {
        b.iter(|| rejection_curves::fig7a(ExperimentScale::Smoke, 2021))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7a
}
criterion_main!(benches);
