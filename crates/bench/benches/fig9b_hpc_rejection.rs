//! Times the regeneration of Fig. 9b (HPC rejection curves) and prints the
//! data series once.

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::{rejection_curves, ExperimentScale};

fn bench_fig9b(c: &mut Criterion) {
    let figure = rejection_curves::fig9b(ExperimentScale::Smoke, 2021);
    println!("\n{}", rejection_curves::render(&figure));
    c.bench_function("fig9b_hpc_rejection_curves", |b| {
        b.iter(|| rejection_curves::fig9b(ExperimentScale::Smoke, 2021))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9b
}
criterion_main!(benches);
