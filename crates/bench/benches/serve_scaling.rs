//! Throughput scaling of the sharded serving layer under concurrent scorers.
//!
//! The serving question this answers: when **many threads** submit
//! single-row `score()` requests at once, how much does replicating an
//! endpoint across shards help? With one shard every scorer contends on one
//! `Mutex<Pending>` tile and shares one flush clock; `ShardedFleet` gives
//! each replica its own tile, and key-affinity routing pins each scorer
//! (session) to one replica so its bursts micro-batch together without
//! cross-thread coordination.
//!
//! Measures, on the trusted random-forest DVFS pipeline, aggregate
//! `score()` throughput over a matrix of
//! `1/2/4/8 scorer threads × 1/2/4 shards`, plus the unsharded
//! [`DetectorFleet`] at every thread count as the pre-sharding baseline.
//! Machine-readable results land in `BENCH_serve_scaling.json` at the
//! repository root, including the `4 threads / 4 shards vs 1 shard` ratio
//! the acceptance gate reads and the host's core count (lock contention —
//! what sharding removes — can only manifest when threads actually run in
//! parallel, so interpret the ratio together with `cores`). Set
//! `HMD_BENCH_QUICK=1` for the CI smoke run.
//!
//! ```text
//! cargo bench -p hmd_bench --bench serve_scaling
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::pipelines::{detector_config, BaseModel};
use hmd_bench::ExperimentScale;
use hmd_core::detector::{load, save, Detector};
use hmd_data::Matrix;
use hmd_serve::{DetectorFleet, FlushPolicy, RoutePolicy, ShardConfig, ShardedFleet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where the machine-readable results land: the repository root, committed
/// alongside the code whose performance it documents.
const JSON_REPORT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_serve_scaling.json"
);

/// Rows each scorer thread enqueues before waiting its tickets: one
/// flat-engine tile, so a pinned scorer drains its own tile inline.
const BURST: usize = 64;

fn quick_mode() -> bool {
    std::env::var("HMD_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Builds a batch of the requested size by cycling the unknown set's rows.
fn batch_of(source: &Matrix, size: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..size)
        .map(|i| source.row(i % source.rows()).to_vec())
        .collect();
    Matrix::from_rows(&rows).expect("uniform rows")
}

fn fresh_detector(document: &str) -> Box<dyn Detector> {
    load(document).expect("detector restores")
}

/// Finds one session key per replica, so scorer thread `t` can pin itself
/// to replica `t % shards`. Raw thread ids would hash into *some* replica
/// each, but hash collisions could leave replicas idle and the matrix
/// would not measure the shard count it claims.
fn keys_per_replica(fleet: &ShardedFleet, replicas: usize, probe: &[f64]) -> Vec<u64> {
    let mut keys = vec![None; replicas];
    let mut found = 0;
    for key in 0..u64::MAX {
        let ticket = fleet.score_keyed("hmd", key, probe).expect("probe enqueue");
        let replica = ticket.replica();
        fleet.flush("hmd").expect("probe flush");
        ticket.wait().expect("probe scores");
        if keys[replica].is_none() {
            keys[replica] = Some(key);
            found += 1;
            if found == replicas {
                break;
            }
        }
    }
    keys.into_iter()
        .map(|k| k.expect("every replica is reachable by some key"))
        .collect()
}

/// Runs `threads` scorer threads until `budget` elapses and returns
/// aggregate samples/sec. Each thread loops: `enqueue` a BURST of
/// single-row requests, then `resolve` every ticket. Only fully-resolved
/// rows count.
fn aggregate_score_rate<T>(
    threads: usize,
    requests: &Matrix,
    budget: Duration,
    enqueue: impl Fn(usize, &[f64]) -> T + Sync,
    resolve: impl Fn(T) + Sync,
) -> f64
where
    T: Send,
{
    let stop = AtomicBool::new(false);
    let start = Instant::now();
    let total: usize = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let stop = &stop;
                let enqueue = &enqueue;
                let resolve = &resolve;
                scope.spawn(move || {
                    let mut scored = 0usize;
                    let mut cursor = t * BURST; // de-phase the threads
                    let mut tickets = Vec::with_capacity(BURST);
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..BURST {
                            let row = requests.row(cursor % requests.rows());
                            cursor += 1;
                            tickets.push(enqueue(t, row));
                        }
                        for ticket in tickets.drain(..) {
                            resolve(ticket);
                        }
                        scored += BURST;
                        if start.elapsed() >= budget {
                            stop.store(true, Ordering::Relaxed);
                        }
                    }
                    scored
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("scorer")).sum()
    });
    total as f64 / start.elapsed().as_secs_f64()
}

fn bench_serve_scaling(c: &mut Criterion) {
    let scale = ExperimentScale::Smoke;
    let split = scale
        .dvfs_builder()
        .build_split(2021)
        .expect("DVFS corpus generation");
    let detector = detector_config(BaseModel::RandomForest, scale.num_estimators(), false)
        .fit(&split.train, 7)
        .expect("RF pipeline trains");
    let document = save(detector.as_ref()).expect("detector persists");
    let requests = batch_of(split.unknown.features(), 4096);
    let budget = Duration::from_millis(if quick_mode() { 60 } else { 300 });
    // Long enough that the deadline never fires mid-measurement (pinned
    // scorers drain their own tiles inline), short enough that the teardown
    // stall — a thread waiting on a tile its peers stopped feeding — stays
    // bounded.
    let max_wait = Duration::from_millis(50);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    c.json_note("bench", "serve_scaling");
    c.json_note("pipeline", detector.name());
    c.json_note("scale", scale.name());
    c.json_note("cores", cores.to_string());
    c.json_note("burst_rows", BURST.to_string());

    println!("\nserve scaling — {} ({cores} core(s))", detector.name());
    let thread_counts = [1usize, 2, 4, 8];
    let shard_counts = [1usize, 2, 4];
    let mut sharded_rate = std::collections::HashMap::new();
    let mut unsharded_rate = std::collections::HashMap::new();

    for &threads in &thread_counts {
        // Pre-sharding baseline: the single-tile DetectorFleet.
        let fleet = Arc::new(DetectorFleet::with_policy(FlushPolicy::new(
            BURST, max_wait,
        )));
        fleet.deploy("hmd", fresh_detector(&document));
        let rate = aggregate_score_rate(
            threads,
            &requests,
            budget,
            |_, row| fleet.score("hmd", row).expect("enqueue"),
            |ticket| {
                ticket.wait().expect("fleet scores");
            },
        );
        unsharded_rate.insert(threads, rate);
        println!("  unsharded fleet, {threads} thread(s):  {rate:>12.0} samples/sec");
        c.json_note(
            &format!("unsharded_t{threads}_samples_per_sec"),
            format!("{rate:.0}"),
        );

        for &shards in &shard_counts {
            let fleet = Arc::new(ShardedFleet::with_config(
                ShardConfig::new(shards)
                    .with_policy(RoutePolicy::KeyAffinity)
                    .with_flush(FlushPolicy::new(BURST, max_wait)),
            ));
            fleet
                .deploy("hmd", fresh_detector(&document))
                .expect("replicates");
            // Thread t pins itself to replica t % shards via a probed
            // per-replica key, so its bursts batch without cross-thread
            // coordination once shards >= threads and every replica
            // genuinely receives traffic.
            let keys = keys_per_replica(&fleet, shards, requests.row(0));
            let rate = aggregate_score_rate(
                threads,
                &requests,
                budget,
                |t, row| {
                    fleet
                        .score_keyed("hmd", keys[t % shards], row)
                        .expect("enqueue")
                },
                |ticket| {
                    ticket.wait().expect("sharded fleet scores");
                },
            );
            sharded_rate.insert((threads, shards), rate);
            println!("  {shards} shard(s), {threads} thread(s):       {rate:>12.0} samples/sec");
            c.json_note(
                &format!("sharded_s{shards}_t{threads}_samples_per_sec"),
                format!("{rate:.0}"),
            );
        }
    }

    // The acceptance gate: aggregate throughput at 4 scorer threads with 4
    // shards vs 1 shard. Sharding removes tile-lock contention and flush
    // coordination between scorers; on a single-core host the threads never
    // actually contend in parallel, so the ratio degenerates towards 1 and
    // the `cores` note is the context for reading it.
    let four_four = sharded_rate[&(4, 4)];
    let ratio = four_four / sharded_rate[&(4, 1)].max(1.0);
    println!("  4 threads: 4 shards / 1 shard = {ratio:.2}x (gate: >= 2x on multicore hosts)");
    c.json_note("t4_s4_over_s1", format!("{ratio:.3}"));
    c.json_note(
        "t4_s4_over_unsharded_t4",
        format!("{:.3}", four_four / unsharded_rate[&4].max(1.0)),
    );
}

criterion_group! {
    name = benches;
    config = {
        let samples = if quick_mode() { 5 } else { 10 };
        Criterion::default()
            .sample_size(samples)
            .with_json_report(JSON_REPORT)
    };
    targets = bench_serve_scaling
}
criterion_main!(benches);
