//! Throughput of the fleet serving layer vs the direct batch path.
//!
//! The serving question this answers: how much of the flat engine's
//! batch-4096 throughput survives when requests arrive **one row at a
//! time**? Direct `detect_batch` at batch 1 pays the whole per-call
//! front-end and dispatch cost per sample (the ~50× single-row gap the
//! fleet exists to close); the `DetectorFleet` micro-batches single-row
//! `score()` calls into per-endpoint tiles that drain through the same
//! batch hot path.
//!
//! Measures, on the trusted random-forest DVFS pipeline:
//! * `direct_batch_{1,64,4096}` — `Detector::detect_batch` baselines;
//! * `fleet_score1_tile{64,4096}` — single-row `score()` request
//!   granularity with `max_batch` 64 / 4096 tiles.
//!
//! Machine-readable results land in `BENCH_serve.json` at the repository
//! root, including the `direct_batch_4096 / best fleet score(1)` ratio the
//! acceptance gate reads (fleet micro-batching must stay within 2× of the
//! direct batch-4096 path). Set `HMD_BENCH_QUICK=1` for the CI smoke run.
//!
//! ```text
//! cargo bench -p hmd_bench --bench serve_throughput
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hmd_bench::pipelines::{detector_config, BaseModel};
use hmd_bench::ExperimentScale;
use hmd_core::detector::DetectorExt;
use hmd_data::Matrix;
use hmd_serve::{DetectorFleet, FlushPolicy};
use std::time::{Duration, Instant};

/// Where the machine-readable results land: the repository root, committed
/// alongside the code whose performance it documents.
const JSON_REPORT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");

fn quick_mode() -> bool {
    std::env::var("HMD_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Builds a batch of the requested size by cycling the unknown set's rows.
fn batch_of(source: &Matrix, size: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..size)
        .map(|i| source.row(i % source.rows()).to_vec())
        .collect();
    Matrix::from_rows(&rows).expect("uniform rows")
}

/// One full pass of single-row `score()` requests over `requests`, waiting
/// every ticket; returns the reports' total decision count as a liveness
/// check. The pass length is a multiple of the tile size, so every tile
/// drains inline on its filling caller — the max-wait path never triggers.
fn fleet_pass(fleet: &DetectorFleet, requests: &Matrix) -> usize {
    let mut tickets = Vec::with_capacity(requests.rows());
    for row in 0..requests.rows() {
        tickets.push(fleet.score("hmd", requests.row(row)).expect("enqueue"));
    }
    tickets
        .into_iter()
        .map(|t| {
            t.wait().expect("fleet scores");
            1
        })
        .sum()
}

fn bench_serve(c: &mut Criterion) {
    let scale = ExperimentScale::Smoke;
    let split = scale
        .dvfs_builder()
        .build_split(2021)
        .expect("DVFS corpus generation");
    let detector = detector_config(BaseModel::RandomForest, scale.num_estimators(), false)
        .fit(&split.train, 7)
        .expect("RF pipeline trains");
    let budget_ms = if quick_mode() { 60 } else { 300 };

    c.json_note("bench", "serve_throughput");
    c.json_note("pipeline", detector.name());
    c.json_note("scale", scale.name());

    println!("\nserve throughput — {}", detector.name());
    let mut direct_per_sec = std::collections::HashMap::new();
    for &size in &[1usize, 64, 4096] {
        let batch = batch_of(split.unknown.features(), size);
        let mut iterations = 0usize;
        let start = Instant::now();
        while start.elapsed().as_millis() < budget_ms {
            let reports = detector.detect_batch(&batch).expect("batch inference");
            assert_eq!(reports.len(), size);
            iterations += 1;
        }
        let per_sec = (iterations * size) as f64 / start.elapsed().as_secs_f64();
        direct_per_sec.insert(size, per_sec);
        println!("  direct batch {size:>5}:          {per_sec:>12.0} samples/sec");
        c.json_note(
            &format!("direct_batch_{size}_samples_per_sec"),
            format!("{per_sec:.0}"),
        );

        c.throughput(Throughput::Elements(size as u64));
        c.bench_function(&format!("direct_batch_{size}"), |b| {
            b.iter(|| detector.detect_batch(&batch).expect("batch inference"))
        });
    }

    // Fleet path: identical workload at single-row request granularity.
    let requests = batch_of(split.unknown.features(), 4096);
    let mut fleet_best_per_sec = 0.0f64;
    for &tile in &[64usize, 4096] {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(tile, Duration::from_secs(5)));
        fleet.deploy(
            "hmd",
            detector_config(BaseModel::RandomForest, scale.num_estimators(), false)
                .fit(&split.train, 7)
                .expect("RF pipeline trains"),
        );

        let mut scored = 0usize;
        let start = Instant::now();
        while start.elapsed().as_millis() < budget_ms {
            scored += fleet_pass(&fleet, &requests);
        }
        let per_sec = scored as f64 / start.elapsed().as_secs_f64();
        fleet_best_per_sec = fleet_best_per_sec.max(per_sec);
        println!("  fleet score(1) tile {tile:>5}:  {per_sec:>12.0} samples/sec");
        c.json_note(
            &format!("fleet_score1_tile{tile}_samples_per_sec"),
            format!("{per_sec:.0}"),
        );

        c.throughput(Throughput::Elements(requests.rows() as u64));
        c.bench_function(&format!("fleet_score1_tile{tile}"), |b| {
            b.iter(|| fleet_pass(&fleet, &requests))
        });
    }

    // The acceptance gate: micro-batched single-row requests vs the direct
    // batch-4096 hot path, at the fleet's best-performing tile size (the
    // default 64-row tile stays cache-resident and wins; a 4096-row tile
    // round-trips ~900 KB through memory per drain). The bar is ≤ 2×; the
    // pre-flat-engine PR-1 gap at single-row granularity was ~25-50×.
    let direct_4096 = direct_per_sec[&4096];
    let ratio = direct_4096 / fleet_best_per_sec.max(1.0);
    println!(
        "  direct_4096 / best fleet score(1) = {ratio:.2}x (gate: <= 2x); \
         direct_4096 / direct_1 = {:.1}x",
        direct_4096 / direct_per_sec[&1].max(1.0)
    );
    c.json_note("direct4096_over_best_fleet_score1", format!("{ratio:.3}"));
    c.json_note(
        "direct4096_over_direct1",
        format!("{:.3}", direct_4096 / direct_per_sec[&1].max(1.0)),
    );
}

criterion_group! {
    name = benches;
    config = {
        let samples = if quick_mode() { 5 } else { 10 };
        Criterion::default()
            .sample_size(samples)
            .with_json_report(JSON_REPORT)
    };
    targets = bench_serve
}
criterion_main!(benches);
