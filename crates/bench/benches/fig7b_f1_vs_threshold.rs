//! Times the regeneration of Fig. 7b (accepted-F1 vs threshold) and prints
//! the data series once.

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::{f1_curves, ExperimentScale};

fn bench_fig7b(c: &mut Criterion) {
    let figure = f1_curves::fig7b(ExperimentScale::Smoke, 2021);
    println!("\n{}", f1_curves::render(&figure));
    c.bench_function("fig7b_f1_vs_threshold", |b| {
        b.iter(|| f1_curves::fig7b(ExperimentScale::Smoke, 2021))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7b
}
criterion_main!(benches);
