//! Times the Platt-confidence vs vote-entropy ablation and prints its summary
//! once.

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::{ablations, ExperimentScale};

fn bench_ablation_platt(c: &mut Criterion) {
    let platt = ablations::platt_vs_entropy(ExperimentScale::Smoke, 2021);
    println!(
        "\nentropy separation {:.1} pp, Platt-confidence separation {:.1} pp, gain {:.1} pp\n",
        platt.entropy_curve.separation(),
        platt.platt_curve.separation(),
        platt.separation_gain()
    );
    c.bench_function("ablation_platt_vs_entropy", |b| {
        b.iter(|| ablations::platt_vs_entropy(ExperimentScale::Smoke, 2021))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation_platt
}
criterion_main!(benches);
