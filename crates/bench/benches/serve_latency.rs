//! Tail latency of the supervised serving layer, per configuration.
//!
//! Throughput (`serve_throughput`) answers "how many rows per second";
//! this bench answers the serving question the supervision PR changes:
//! **what does one request wait**, at the median and at the tail, under
//! each batching/shedding configuration?
//!
//! Per config it records p50/p99/p999 of single-request latency:
//! * `direct_batch1` — `detect_batch` on one row, the no-fleet floor;
//! * `fleet_tile1` — `score()` + `wait()` with a 1-row tile (inline drain,
//!   pure fleet dispatch overhead over the floor);
//! * `fleet_tile64_burst` — 64-request bursts; each latency runs from that
//!   request's own enqueue to its ticket resolving, so early rows in a
//!   tile pay the fill time and the distribution shows the micro-batching
//!   spread;
//! * `fleet_tile64_deadline` — lone requests on a 64-row tile with a
//!   500 µs `max_wait`: nothing fills the tile, so latency is bounded by
//!   the deadline flusher (p50 ≈ max_wait + drain);
//! * `shed_circuit_open` — requests fast-shed by an Open breaker: the cost
//!   of a rejection, which is what keeps overload cheap;
//! * `socket_roundtrip` — the same single-row request through the loopback
//!   wire protocol (`FleetClient` → `FleetServer` → sharded fleet), i.e.
//!   `fleet_tile1` plus framing, two JSON codec passes and a TCP round
//!   trip: the price of the process boundary;
//! * `socket_batch64_per_row` — a 64-row batch frame over the socket,
//!   divided per row: how the framing cost amortises.
//!
//! Machine-readable results land in `BENCH_serve_latency.json` at the
//! repository root. Set `HMD_BENCH_QUICK=1` for the CI smoke run.
//!
//! ```text
//! cargo bench -p hmd_bench --bench serve_latency
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::pipelines::{detector_config, BaseModel};
use hmd_bench::ExperimentScale;
use hmd_core::detector::{Detector, DetectorExt};
use hmd_data::Matrix;
use hmd_serve::{
    BreakerPolicy, ClientConfig, DetectorFleet, FleetClient, FleetConfig, FleetError, FleetServer,
    FlushPolicy, ServerConfig, ShardConfig, ShardedFleet, Ticket,
};
use std::time::{Duration, Instant};

/// Where the machine-readable results land: the repository root, committed
/// alongside the code whose performance it documents.
const JSON_REPORT: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../BENCH_serve_latency.json"
);

fn quick_mode() -> bool {
    std::env::var("HMD_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Builds a batch of the requested size by cycling the unknown set's rows.
fn batch_of(source: &Matrix, size: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..size)
        .map(|i| source.row(i % source.rows()).to_vec())
        .collect();
    Matrix::from_rows(&rows).expect("uniform rows")
}

/// Nearest-rank percentile over an unsorted latency sample (sorts a copy).
fn percentiles(samples: &[Duration]) -> (Duration, Duration, Duration) {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let at = |p: f64| {
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)]
    };
    (at(50.0), at(99.0), at(99.9))
}

fn report(c: &mut Criterion, config: &str, samples: &[Duration]) {
    let (p50, p99, p999) = percentiles(samples);
    println!(
        "  {config:<24} p50 {:>9.1} µs   p99 {:>9.1} µs   p99.9 {:>9.1} µs   (n={})",
        p50.as_secs_f64() * 1e6,
        p99.as_secs_f64() * 1e6,
        p999.as_secs_f64() * 1e6,
        samples.len()
    );
    for (tag, value) in [("p50", p50), ("p99", p99), ("p999", p999)] {
        c.json_note(
            &format!("{config}_{tag}_us"),
            format!("{:.1}", value.as_secs_f64() * 1e6),
        );
    }
}

fn trained_pipeline(scale: ExperimentScale) -> Box<dyn Detector> {
    let split = scale
        .dvfs_builder()
        .build_split(2021)
        .expect("DVFS corpus generation");
    detector_config(BaseModel::RandomForest, scale.num_estimators(), false)
        .fit(&split.train, 7)
        .expect("RF pipeline trains")
}

fn bench_latency(c: &mut Criterion) {
    let scale = ExperimentScale::Smoke;
    let split = scale
        .dvfs_builder()
        .build_split(2021)
        .expect("DVFS corpus generation");
    let detector = trained_pipeline(scale);
    let requests = batch_of(split.unknown.features(), 256);
    let n = if quick_mode() { 1_000 } else { 5_000 };

    c.json_note("bench", "serve_latency");
    c.json_note("pipeline", detector.name());
    c.json_note("scale", scale.name());
    c.json_note("samples_per_config", format!("{n}"));

    println!("\nserve latency — {} ({n} samples/config)", detector.name());

    // Floor: the direct single-row batch path, no fleet in between.
    {
        let mut samples = Vec::with_capacity(n);
        let one = batch_of(split.unknown.features(), 1);
        for _ in 0..n {
            let start = Instant::now();
            detector.detect_batch(&one).expect("direct");
            samples.push(start.elapsed());
        }
        report(c, "direct_batch1", &samples);
    }

    // Fleet dispatch overhead: 1-row tiles drain inline on the caller.
    {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(1, Duration::from_secs(5)));
        fleet.deploy("hmd", trained_pipeline(scale));
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let row = requests.row(i % requests.rows());
            let start = Instant::now();
            fleet
                .score("hmd", row)
                .expect("enqueue")
                .wait()
                .expect("scores");
            samples.push(start.elapsed());
        }
        report(c, "fleet_tile1", &samples);
    }

    // Micro-batching spread: 64-request bursts, per-request latency from
    // each request's own enqueue. The burst's last row fills the tile and
    // drains it inline, so the first row's latency includes the fill time.
    {
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(64, Duration::from_secs(5)));
        fleet.deploy("hmd", trained_pipeline(scale));
        let mut samples = Vec::with_capacity(n);
        while samples.len() < n {
            let mut tickets: Vec<(Instant, Ticket)> = Vec::with_capacity(64);
            for i in 0..64 {
                let row = requests.row((samples.len() + i) % requests.rows());
                tickets.push((Instant::now(), fleet.score("hmd", row).expect("enqueue")));
            }
            for (enqueued, ticket) in tickets {
                ticket.wait().expect("scores");
                samples.push(enqueued.elapsed());
            }
        }
        report(c, "fleet_tile64_burst", &samples);
    }

    // Deadline-bounded: lone requests on a 64-row tile never fill it, so
    // the 500 µs max_wait (deadline flusher or waiter self-flush) is the
    // latency bound.
    {
        let deadline_n = n.min(2_000); // each sample costs >= max_wait
        let fleet = DetectorFleet::with_policy(FlushPolicy::new(64, Duration::from_micros(500)));
        fleet.deploy("hmd", trained_pipeline(scale));
        let mut samples = Vec::with_capacity(deadline_n);
        for i in 0..deadline_n {
            let row = requests.row(i % requests.rows());
            let start = Instant::now();
            fleet
                .score("hmd", row)
                .expect("enqueue")
                .wait()
                .expect("scores");
            samples.push(start.elapsed());
        }
        report(c, "fleet_tile64_deadline", &samples);
    }

    // Shedding cost: trip the breaker once, then measure the fast-shed
    // path — the latency an overloaded caller pays for its rejection.
    {
        struct AlwaysFails;
        impl Detector for AlwaysFails {
            fn name(&self) -> String {
                "always-fails".to_string()
            }
            fn entropy_threshold(&self) -> f64 {
                0.5
            }
            fn detect_rows(
                &self,
                _rows: hmd_data::RowsView<'_>,
            ) -> Result<Vec<hmd_core::trusted::DetectionReport>, hmd_ml::MlError> {
                Err(hmd_ml::MlError::ContractViolation {
                    message: "bench fault".to_string(),
                })
            }
        }
        let fleet = DetectorFleet::with_config(
            FleetConfig::default()
                .with_flush(FlushPolicy::new(1, Duration::from_secs(5)))
                .with_breaker(BreakerPolicy::new(1, Duration::from_secs(600))),
        );
        fleet.deploy("hmd", Box::new(AlwaysFails));
        let ticket = fleet.score("hmd", requests.row(0)).expect("trip enqueue");
        assert!(ticket.wait().is_err(), "the tripping call must fail");
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let row = requests.row(i % requests.rows());
            let start = Instant::now();
            match fleet.score("hmd", row) {
                Err(FleetError::CircuitOpen) => samples.push(start.elapsed()),
                other => panic!("expected a fast shed, got {other:?}"),
            }
        }
        report(c, "shed_circuit_open", &samples);
    }

    // The process boundary: the same single-row request through the
    // loopback wire protocol. The delta over `fleet_tile1` is what the
    // frame codec + TCP round trip cost.
    {
        let fleet = std::sync::Arc::new(ShardedFleet::with_config(
            ShardConfig::new(1).with_flush(FlushPolicy::new(1, Duration::from_secs(5))),
        ));
        fleet
            .deploy("hmd", trained_pipeline(scale))
            .expect("deploys");
        let server =
            FleetServer::bind(std::sync::Arc::clone(&fleet), ServerConfig::new()).expect("binds");
        let mut client =
            FleetClient::connect(server.local_addr(), ClientConfig::new()).expect("connects");

        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let row = requests.row(i % requests.rows());
            let start = Instant::now();
            client.score("hmd", row).expect("scores over the wire");
            samples.push(start.elapsed());
        }
        report(c, "socket_roundtrip", &samples);

        // Batch framing amortisation: one 64-row frame, latency per row.
        let batch_iters = (n / 64).max(8);
        let batch = batch_of(split.unknown.features(), 64);
        let mut samples = Vec::with_capacity(batch_iters);
        for _ in 0..batch_iters {
            let start = Instant::now();
            let reports = client.score_batch("hmd", &batch).expect("batch scores");
            let elapsed = start.elapsed();
            assert_eq!(reports.len(), 64);
            samples.push(elapsed / 64);
        }
        report(c, "socket_batch64_per_row", &samples);
        server.shutdown();
    }

    // Criterion cross-check on the two closed-loop paths, so the latency
    // table above has a statistically-sampled counterpart.
    let fleet = DetectorFleet::with_policy(FlushPolicy::new(1, Duration::from_secs(5)));
    fleet.deploy("hmd", trained_pipeline(scale));
    c.bench_function("fleet_tile1_roundtrip", |b| {
        b.iter(|| {
            fleet
                .score("hmd", requests.row(0))
                .expect("enqueue")
                .wait()
                .expect("scores")
        })
    });
    let one = batch_of(split.unknown.features(), 1);
    c.bench_function("direct_batch1_roundtrip", |b| {
        b.iter(|| detector.detect_batch(&one).expect("direct"))
    });
}

criterion_group! {
    name = benches;
    config = {
        let samples = if quick_mode() { 5 } else { 10 };
        Criterion::default()
            .sample_size(samples)
            .with_json_report(JSON_REPORT)
    };
    targets = bench_latency
}
criterion_main!(benches);
