//! Times the bootstrap-diversity ablation and prints its summary once.

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::{ablations, ExperimentScale};

fn bench_ablation_diversity(c: &mut Criterion) {
    let diversity = ablations::bootstrap_diversity(ExperimentScale::Smoke, 2021);
    println!(
        "\nbootstrap separation {:.1} pp, no-bootstrap separation {:.1} pp, gain {:.1} pp\n",
        diversity.with_bootstrap.separation(),
        diversity.without_bootstrap.separation(),
        diversity.separation_gain()
    );
    c.bench_function("ablation_bootstrap_diversity", |b| {
        b.iter(|| ablations::bootstrap_diversity(ExperimentScale::Smoke, 2021))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation_diversity
}
criterion_main!(benches);
