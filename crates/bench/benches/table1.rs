//! Times the regeneration of Table I (dataset taxonomy) and prints it once.

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::{table1, ExperimentScale};

fn bench_table1(c: &mut Criterion) {
    let table = table1::run(ExperimentScale::Smoke, 2021);
    println!("\n{}", table1::render(&table));
    c.bench_function("table1_dataset_taxonomy", |b| {
        b.iter(|| table1::run(ExperimentScale::Smoke, 2021))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table1
}
criterion_main!(benches);
