//! Robustness of the pipelines under the `hmd_threat` attack suite.
//!
//! Runs [`hmd_bench::robustness::evaluate`]: every attack corpus (mimicry,
//! gradual drift, sensor dropout/saturation/stuck-at) against the trusted,
//! untrusted and Platt pipelines, a perturbation-bounded evasion search, and
//! the closed loop's detection/recovery under gradual drift. Prints the
//! paper-style figure and lands the machine-readable rows in
//! `BENCH_robustness.json` at the repository root.
//!
//! Set `HMD_BENCH_QUICK=1` for the CI smoke run.
//!
//! ```text
//! cargo bench -p hmd_bench --bench robustness
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::robustness::{evaluate, render, RobustnessConfig};

const JSON_REPORT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_robustness.json");

fn quick_mode() -> bool {
    std::env::var("HMD_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

fn bench_robustness(c: &mut Criterion) {
    let config = if quick_mode() {
        RobustnessConfig::quick()
    } else {
        RobustnessConfig::full()
    };
    let report = evaluate(&config);
    println!("\n{}", render(&report));

    c.json_note("bench", "robustness");
    c.json_note("scale", &report.scale);
    c.json_note("rows_per_attack", format!("{}", config.rows_per_attack));
    for row in &report.attacks {
        c.json_note(
            &format!("attack_{}_{}", row.attack, row.pipeline),
            format!(
                "raw_acc={:.4} accepted_acc={:.4} escalation={:.4} caught={:.4} rows={}",
                row.raw_accuracy,
                row.accepted_accuracy,
                row.escalation_rate,
                row.caught_fraction,
                row.rows
            ),
        );
    }
    for row in &report.evasion {
        c.json_note(
            &format!("evasion_{}", row.pipeline),
            format!(
                "attacked={} flipped={} escalated={} accepted={} flip_rate={:.4} caught={:.4} accepted_rate={:.4}",
                row.attacked,
                row.flipped_predictions,
                row.escalated_evasions,
                row.accepted_evasions,
                row.flip_rate,
                row.caught_fraction,
                row.accepted_rate
            ),
        );
    }
    let dl = &report.drift_loop;
    c.json_note(
        "drift_loop",
        format!(
            "detected={} rows_to_detection={} promoted={} recovered={} healthy_escalation={:.4} drifted_escalation={:.4} recovered_escalation={:.4}",
            dl.drift_detected,
            dl.rows_to_detection,
            dl.promoted,
            dl.recovered,
            dl.pre_drift_escalation,
            dl.drifted_escalation,
            dl.recovered_escalation
        ),
    );

    // The acceptance bars of the experiment: drift must be caught and
    // recovered from, and the rejection option must escalate a measurable
    // fraction of the evasions that fool raw accuracy.
    assert!(dl.drift_detected, "gradual drift never flagged");
    assert!(dl.recovered, "closed loop never recovered");
    let trusted = report
        .evasion
        .iter()
        .find(|r| r.pipeline == "trusted")
        .expect("trusted evasion row");
    assert!(
        trusted.flipped_predictions == 0 || trusted.escalated_evasions > 0,
        "rejection option caught none of {} successful evasions",
        trusted.flipped_predictions
    );

    c.bench_function("robustness_quick_evaluation", |b| {
        let tiny = RobustnessConfig {
            rows_per_attack: 48,
            evasion_rows: 4,
            ..RobustnessConfig::quick()
        };
        b.iter(|| evaluate(&tiny))
    });
}

criterion_group! {
    name = benches;
    config = {
        let samples = if quick_mode() { 5 } else { 10 };
        Criterion::default()
            .sample_size(samples)
            .with_json_report(JSON_REPORT)
    };
    targets = bench_robustness
}
criterion_main!(benches);
