//! Times the regeneration of Fig. 9a (average entropy vs ensemble size) and
//! prints the data series once.

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::{ensemble_size, ExperimentScale};

const SIZES: [usize; 6] = [1, 5, 10, 20, 30, 40];

fn bench_fig9a(c: &mut Criterion) {
    let figure = ensemble_size::fig9a(ExperimentScale::Smoke, &SIZES, 2021);
    println!("\n{}", ensemble_size::render(&figure));
    c.bench_function("fig9a_entropy_vs_ensemble_size", |b| {
        b.iter(|| ensemble_size::fig9a(ExperimentScale::Smoke, &SIZES, 2021))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9a
}
criterion_main!(benches);
