//! Times the regeneration of Fig. 8 (t-SNE latent-space panels) and prints
//! the overlap summary once.

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::{tsne_overlap, ExperimentScale};

fn bench_fig8(c: &mut Criterion) {
    let figure = tsne_overlap::fig8(ExperimentScale::Smoke, 2021);
    println!("\n{}", tsne_overlap::render(&figure));
    c.bench_function("fig8_tsne_embedding", |b| {
        b.iter(|| tsne_overlap::fig8(ExperimentScale::Smoke, 2021))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8
}
criterion_main!(benches);
