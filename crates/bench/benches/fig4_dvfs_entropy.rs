//! Times the regeneration of Fig. 4 (DVFS entropy boxplots) and prints the
//! data series once.

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::{entropy_boxplots, ExperimentScale};

fn bench_fig4(c: &mut Criterion) {
    let figure = entropy_boxplots::fig4(ExperimentScale::Smoke, 2021);
    println!("\n{}", entropy_boxplots::render(&figure));
    c.bench_function("fig4_dvfs_entropy_boxplots", |b| {
        b.iter(|| entropy_boxplots::fig4(ExperimentScale::Smoke, 2021))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4
}
criterion_main!(benches);
