//! Throughput of the training hot path: the fast-fit engine vs the retained
//! pre-optimisation reference fitter.
//!
//! Regenerating any paper figure retrains the smoke 15-estimator
//! bagged-forest pipeline (and its variants) from scratch, so fit throughput
//! dominates experiment wall-clock. This bench measures complete ensemble
//! fits per second — and the equivalent training samples per second — for
//! both paths on the same DVFS smoke split:
//!
//! * `fit_reference` — per-node sorting, row-major feature reads,
//!   materialised bootstrap replicates (the pre-PR baseline, re-measured in
//!   the same run so the comparison always reflects this machine).
//! * `fit` — presorted columnar split finding with zero-copy bootstrap
//!   views (the default path).
//!
//! Results land in `BENCH_fit.json` at the repository root next to the
//! serving-path numbers in `BENCH_detect_batch.json`. Set
//! `HMD_BENCH_QUICK=1` for the fast CI smoke run.
//!
//! ```text
//! cargo bench -p hmd_bench --bench fit_throughput
//! ```

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hmd_bench::pipelines::forest_params;
use hmd_bench::ExperimentScale;
use hmd_data::Dataset;
use hmd_ml::bagging::{BaggingEnsemble, BaggingParams};
use hmd_ml::forest::RandomForest;
use hmd_ml::tree::DecisionTreeParams;
use std::time::Instant;

/// Where the machine-readable results land: the repository root, so the file
/// is committed alongside the code whose performance it documents.
const JSON_REPORT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_fit.json");

fn quick_mode() -> bool {
    std::env::var("HMD_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Fits per second of two fitting routines, measured in alternating
/// wall-clock slices so machine-speed drift (thermal throttling, noisy
/// neighbours) hits both paths equally.
fn paired_fits_per_sec(budget_ms: u64, mut a: impl FnMut(), mut b: impl FnMut()) -> (f64, f64) {
    const SLICES: u64 = 8;
    let slice = std::time::Duration::from_millis(budget_ms / SLICES);
    let mut counts = [0usize; 2];
    let mut elapsed = [std::time::Duration::ZERO; 2];
    for _ in 0..SLICES {
        for (side, routine) in [&mut a as &mut dyn FnMut(), &mut b].into_iter().enumerate() {
            let start = Instant::now();
            loop {
                routine();
                counts[side] += 1;
                if start.elapsed() >= slice {
                    break;
                }
            }
            elapsed[side] += start.elapsed();
        }
    }
    (
        counts[0] as f64 / elapsed[0].as_secs_f64(),
        counts[1] as f64 / elapsed[1].as_secs_f64(),
    )
}

fn bench_fit(c: &mut Criterion) {
    let scale = ExperimentScale::Smoke;
    let split = scale
        .dvfs_builder()
        .build_split(2021)
        .expect("DVFS corpus generation");
    let train: &Dataset = &split.train;
    let params = BaggingParams::new(forest_params()).with_num_estimators(scale.num_estimators());
    let tree_params = DecisionTreeParams::new();
    let budget_ms: u64 = if quick_mode() { 400 } else { 2400 };

    // The two paths must agree exactly before their speeds are compared.
    let fast: BaggingEnsemble<RandomForest> = params.fit(train, 7).expect("fast fit");
    let reference = params.fit_reference(train, 7).expect("reference fit");
    assert_eq!(
        fast.estimators(),
        reference.estimators(),
        "fast-fit must stay bit-identical to the reference fitter"
    );

    c.json_note("bench", "fit_throughput");
    c.json_note(
        "pipeline",
        format!("bagging[{}x random-forest]", scale.num_estimators()),
    );
    c.json_note("scale", scale.name());
    c.json_note("train_samples", format!("{}", train.len()));
    c.json_note("train_features", format!("{}", train.num_features()));

    println!(
        "\nfit throughput — bagging[{}x random-forest], {} samples x {} features",
        scale.num_estimators(),
        train.len(),
        train.num_features()
    );

    let (baseline, fastfit) = paired_fits_per_sec(
        budget_ms,
        || {
            params.fit_reference(train, 7).expect("reference fit");
        },
        || {
            params.fit(train, 7).expect("fast fit");
        },
    );
    let speedup = fastfit / baseline;
    let samples = train.len() as f64;
    println!("  baseline (per-node sorts, copies): {baseline:>8.2} fits/sec");
    println!("  fast-fit (presorted, views):       {fastfit:>8.2} fits/sec");
    println!("  speedup: {speedup:.2}x");
    c.json_note("baseline_fits_per_sec", format!("{baseline:.2}"));
    c.json_note(
        "baseline_train_samples_per_sec",
        format!("{:.0}", baseline * samples),
    );
    c.json_note("fastfit_fits_per_sec", format!("{fastfit:.2}"));
    c.json_note(
        "fastfit_train_samples_per_sec",
        format!("{:.0}", fastfit * samples),
    );
    c.json_note("speedup", format!("{speedup:.2}"));

    // Single deep tree on the full set: isolates the split-finding core
    // (no bootstrap, no ensemble parallelism).
    let (tree_baseline, tree_fastfit) = paired_fits_per_sec(
        budget_ms / 2,
        || {
            hmd_ml::tree::DecisionTree::fit_reference(train, &tree_params, 3).expect("tree fit");
        },
        || {
            hmd_ml::tree::DecisionTree::fit(train, &tree_params, 3).expect("tree fit");
        },
    );
    println!(
        "  single tree: {tree_baseline:>8.2} -> {tree_fastfit:>8.2} fits/sec ({:.2}x)",
        tree_fastfit / tree_baseline
    );
    c.json_note("tree_baseline_fits_per_sec", format!("{tree_baseline:.2}"));
    c.json_note("tree_fastfit_fits_per_sec", format!("{tree_fastfit:.2}"));
    c.json_note(
        "tree_speedup",
        format!("{:.2}", tree_fastfit / tree_baseline),
    );

    c.throughput(Throughput::Elements(train.len() as u64));
    c.bench_function("fit_reference_bagged_forest", |b| {
        b.iter(|| params.fit_reference(train, 7).expect("reference fit"))
    });
    c.throughput(Throughput::Elements(train.len() as u64));
    c.bench_function("fit_bagged_forest", |b| {
        b.iter(|| params.fit(train, 7).expect("fast fit"))
    });
}

criterion_group! {
    name = benches;
    config = {
        let samples = if quick_mode() { 5 } else { 10 };
        Criterion::default()
            .sample_size(samples)
            .with_json_report(JSON_REPORT)
    };
    targets = bench_fit
}
criterion_main!(benches);
