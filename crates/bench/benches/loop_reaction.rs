//! Reaction characteristics of the closed loop (`hmd_loop`).
//!
//! Two questions decide whether the loop is deployable:
//!
//! * **How fast does drift detection react?** Measured in *rows*: after a
//!   step shift in the served stream's escalation rate, how many more rows
//!   must be served before the Page–Hinkley test fires? Reported per shift
//!   magnitude (mild/moderate/severe), plus the raw cost of one
//!   `DriftDetector::observe` call (it sits on the supervisor tick path).
//! * **What does shadowing cost the serving path?** A challenger scores
//!   every tile the champion serves, so the worst case is ~2× the
//!   champion-only drain. Measured as the p50 of a 64-row serving tile
//!   (64 `score` enqueues plus the inline drain the 64th triggers),
//!   champion-only vs with a shadow installed; the acceptance bar is
//!   `shadow_overhead_ratio <= 2.0`.
//!
//! Machine-readable results land in `BENCH_loop.json` at the repository
//! root. Set `HMD_BENCH_QUICK=1` for the CI smoke run.
//!
//! ```text
//! cargo bench -p hmd_bench --bench loop_reaction
//! ```

use criterion::{criterion_group, criterion_main, Criterion};
use hmd_bench::pipelines::{detector_config, BaseModel};
use hmd_bench::ExperimentScale;
use hmd_core::detector::{Detector, MonitorStats};
use hmd_core::trusted::Decision;
use hmd_core::{DetectionReport, UncertainPrediction};
use hmd_data::{Label, Matrix};
use hmd_loop::{DriftDetector, DriftPolicy, DriftVerdict};
use hmd_serve::{DetectorFleet, FleetConfig, FlushPolicy};
use std::time::{Duration, Instant};

const JSON_REPORT: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_loop.json");

/// Rows per window snapshot fed to the drift detector: the cadence a
/// supervisor would tick at.
const SNAPSHOT_ROWS: usize = 32;

fn quick_mode() -> bool {
    std::env::var("HMD_BENCH_QUICK").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// A synthetic window snapshot with the given escalation rate.
fn snapshot(escalation_rate: f64) -> MonitorStats {
    let escalated = (escalation_rate * SNAPSHOT_ROWS as f64).round() as usize;
    let mut stats = MonitorStats::default();
    for i in 0..SNAPSHOT_ROWS {
        let escalate = i < escalated;
        stats.record(&DetectionReport {
            prediction: UncertainPrediction {
                label: Label::Benign,
                malware_vote_fraction: 0.0,
                entropy: if escalate { 0.9 } else { 0.1 },
                num_estimators: 1,
            },
            decision: if escalate {
                Decision::Escalate
            } else {
                Decision::Accept(Label::Benign)
            },
        });
    }
    stats.window_snapshot()
}

/// Rows served after the shift before the detector reports `Drifted`.
fn reaction_rows(baseline: f64, shifted: f64) -> usize {
    let mut detector = DriftDetector::new(DriftPolicy::default());
    let healthy = snapshot(baseline);
    while detector.baseline().is_none() {
        detector.observe(&healthy);
    }
    let hot = snapshot(shifted);
    let mut rows = 0;
    loop {
        rows += SNAPSHOT_ROWS;
        if detector.observe(&hot) == DriftVerdict::Drifted {
            return rows;
        }
        assert!(rows < 100_000, "drift never fired for shift {shifted}");
    }
}

/// Nearest-rank percentile over an unsorted latency sample (sorts a copy).
fn p50(samples: &[Duration]) -> Duration {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) / 2]
}

fn trained_pipeline(scale: ExperimentScale) -> Box<dyn Detector> {
    let split = scale
        .dvfs_builder()
        .build_split(2021)
        .expect("DVFS corpus generation");
    detector_config(BaseModel::RandomForest, scale.num_estimators(), false)
        .fit(&split.train, 7)
        .expect("RF pipeline trains")
}

/// A 64-row tile cycling the unknown set's rows.
fn tile(source: &Matrix) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..64)
        .map(|i| source.row(i % source.rows()).to_vec())
        .collect();
    Matrix::from_rows(&rows).expect("uniform rows")
}

fn bench_loop_reaction(c: &mut Criterion) {
    let scale = ExperimentScale::Smoke;
    c.json_note("bench", "loop_reaction");
    c.json_note("scale", scale.name());
    c.json_note("snapshot_rows", format!("{SNAPSHOT_ROWS}"));

    // ---- Drift-detection latency, in rows -------------------------------
    println!("\ndrift reaction (baseline escalation 10 %, {SNAPSHOT_ROWS}-row snapshots)");
    for (tag, shifted) in [
        ("mild_30pct", 0.3),
        ("moderate_50pct", 0.5),
        ("severe_80pct", 0.8),
    ] {
        let rows = reaction_rows(0.1, shifted);
        println!(
            "  shift to {shifted:>4.0}% escalation: drift after {rows:>4} rows",
            shifted = shifted * 100.0
        );
        c.json_note(&format!("drift_rows_{tag}"), format!("{rows}"));
    }

    // The observe call itself sits on the supervisor tick path.
    {
        let mut detector = DriftDetector::new(DriftPolicy::default());
        let healthy = snapshot(0.1);
        let iters = if quick_mode() { 20_000 } else { 200_000 };
        let start = Instant::now();
        for _ in 0..iters {
            detector.observe(&healthy);
        }
        let per_call = start.elapsed().as_secs_f64() / iters as f64;
        println!("  observe() cost: {:.1} ns/call", per_call * 1e9);
        c.json_note("observe_ns", format!("{:.1}", per_call * 1e9));
    }

    // ---- Shadow-scoring overhead on the tile drain path ------------------
    let split = scale
        .dvfs_builder()
        .build_split(2021)
        .expect("DVFS corpus generation");
    let requests = tile(split.unknown.features());
    let n = if quick_mode() { 300 } else { 2_000 };
    println!("\nshadow overhead (64-row serving tile: 64 enqueues + inline drain, n={n})");

    // The serving tile as production traffic drives it: 64 single-row
    // `score` enqueues whose 64th triggers the inline drain, timed from the
    // first enqueue to the last ticket resolving. The shadow pass runs
    // inside the drain, after champion results publish.
    let measure = |fleet: &DetectorFleet| {
        let one_tile = |fleet: &DetectorFleet| {
            let tickets: Vec<_> = (0..64)
                .map(|i| fleet.score("hmd", requests.row(i)).expect("enqueues"))
                .collect();
            for ticket in tickets {
                ticket.wait().expect("resolves");
            }
        };
        // Warm the dispatch path before sampling.
        for _ in 0..(n / 10).max(5) {
            one_tile(fleet);
        }
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let start = Instant::now();
            one_tile(fleet);
            samples.push(start.elapsed());
        }
        p50(&samples)
    };

    let fleet = DetectorFleet::with_config(
        FleetConfig::default().with_flush(FlushPolicy::new(64, Duration::from_secs(5))),
    );
    fleet.deploy("hmd", trained_pipeline(scale));
    let champion_only = measure(&fleet);

    fleet
        .deploy_shadow("hmd", trained_pipeline(scale))
        .expect("installs shadow");
    let with_shadow = measure(&fleet);
    let shadow = fleet
        .shadow_stats("hmd")
        .expect("endpoint exists")
        .expect("shadow installed");
    assert!(shadow.rows > 0 && shadow.errors == 0, "shadow never scored");

    let ratio = with_shadow.as_secs_f64() / champion_only.as_secs_f64();
    println!(
        "  champion-only tile p50 {:.1} µs   with shadow {:.1} µs   ratio {ratio:.2}x",
        champion_only.as_secs_f64() * 1e6,
        with_shadow.as_secs_f64() * 1e6,
    );
    c.json_note(
        "champion_only_tile_p50_us",
        format!("{:.1}", champion_only.as_secs_f64() * 1e6),
    );
    c.json_note(
        "shadow_tile_p50_us",
        format!("{:.1}", with_shadow.as_secs_f64() * 1e6),
    );
    c.json_note("shadow_overhead_ratio", format!("{ratio:.3}"));
    assert!(
        ratio <= 2.0,
        "shadow overhead {ratio:.2}x exceeds the 2x acceptance bar"
    );

    c.bench_function("drift_observe", |b| {
        let mut detector = DriftDetector::new(DriftPolicy::default());
        let healthy = snapshot(0.1);
        b.iter(|| detector.observe(&healthy))
    });
}

criterion_group! {
    name = benches;
    config = {
        let samples = if quick_mode() { 5 } else { 10 };
        Criterion::default()
            .sample_size(samples)
            .with_json_report(JSON_REPORT)
    };
    targets = bench_loop_reaction
}
criterion_main!(benches);
