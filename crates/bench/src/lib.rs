//! Experiment harness regenerating every table and figure of the paper.
//!
//! Each experiment module produces the data series behind one table or
//! figure; the `experiments` binary prints them as text tables and JSON, and
//! the Criterion benches under `benches/` time the regeneration of each one.
//!
//! | Paper artifact | Module | Bench target |
//! |---|---|---|
//! | Table I (dataset taxonomy) | [`table1`] | `table1` |
//! | Fig. 4 (DVFS entropy boxplots) | [`entropy_boxplots`] | `fig4_dvfs_entropy` |
//! | Fig. 5 (HPC entropy boxplots) | [`entropy_boxplots`] | `fig5_hpc_entropy` |
//! | Fig. 7a (DVFS rejection vs threshold) | [`rejection_curves`] | `fig7a_dvfs_rejection` |
//! | Fig. 7b (accepted F1 vs threshold) | [`f1_curves`] | `fig7b_f1_vs_threshold` |
//! | Fig. 8 (t-SNE latent space) | [`tsne_overlap`] | `fig8_tsne` |
//! | Fig. 9a (entropy vs ensemble size) | [`ensemble_size`] | `fig9a_ensemble_size` |
//! | Fig. 9b (HPC rejection vs threshold) | [`rejection_curves`] | `fig9b_hpc_rejection` |
//! | §V.A headline numbers | [`rejection_curves::dvfs_operating_points`] | `experiments -- headline` |
//! | Ablations (bootstrap diversity, Platt baseline) | [`ablations`] | `ablation_*` |
//! | Robustness under attack (threat suite) | [`robustness`] | `robustness` |

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod ablations;
pub mod ensemble_size;
pub mod entropy_boxplots;
pub mod f1_curves;
pub mod pipelines;
pub mod rejection_curves;
pub mod robustness;
pub mod scale;
pub mod table1;
pub mod tsne_overlap;

pub use scale::ExperimentScale;
