//! Figures 4 and 5: boxplots of the prediction-entropy distributions on known
//! vs. unknown data, per ensemble.

use crate::pipelines::{evaluate_dvfs, evaluate_hpc, BaseModel};
use crate::scale::ExperimentScale;
use hmd_core::analysis::KnownUnknownEntropy;
use serde::{Deserialize, Serialize};

/// One boxplot pair of Fig. 4 / Fig. 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyBoxplotRow {
    /// Ensemble base model ("RF", "LR", "SVM").
    pub model: String,
    /// Entropy summaries for known and unknown data; `None` when training
    /// failed (SVM on HPC).
    pub entropies: Option<KnownUnknownEntropy>,
    /// Training failure message, when applicable.
    pub failure: Option<String>,
}

/// The complete data series of one entropy-boxplot figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntropyBoxplotFigure {
    /// "DVFS" (Fig. 4) or "HPC" (Fig. 5).
    pub dataset: String,
    /// One row per ensemble.
    pub rows: Vec<EntropyBoxplotRow>,
}

fn summarise(
    dataset: &str,
    results: Vec<(
        BaseModel,
        Result<crate::pipelines::EvaluatedEnsemble, hmd_ml::MlError>,
    )>,
) -> EntropyBoxplotFigure {
    let rows = results
        .into_iter()
        .map(|(model, result)| match result {
            Ok(eval) => {
                let known: Vec<f64> = eval.known.iter().map(|p| p.entropy).collect();
                let unknown: Vec<f64> = eval.unknown.iter().map(|p| p.entropy).collect();
                EntropyBoxplotRow {
                    model: model.short_name().to_string(),
                    entropies: Some(KnownUnknownEntropy::new(&known, &unknown)),
                    failure: None,
                }
            }
            Err(err) => EntropyBoxplotRow {
                model: model.short_name().to_string(),
                entropies: None,
                failure: Some(err.to_string()),
            },
        })
        .collect();
    EntropyBoxplotFigure {
        dataset: dataset.to_string(),
        rows,
    }
}

/// Regenerates Fig. 4 (DVFS entropy boxplots for RF, LR and SVM ensembles).
pub fn fig4(scale: ExperimentScale, seed: u64) -> EntropyBoxplotFigure {
    summarise("DVFS", evaluate_dvfs(scale, &BaseModel::all(), seed))
}

/// Regenerates Fig. 5 (HPC entropy boxplots; the SVM ensemble fails to
/// converge and is reported as such, exactly like the paper drops it).
pub fn fig5(scale: ExperimentScale, seed: u64) -> EntropyBoxplotFigure {
    summarise("HPC", evaluate_hpc(scale, &BaseModel::all(), seed))
}

/// Renders the figure data as a text table.
pub fn render(figure: &EntropyBoxplotFigure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Entropy distributions, {} dataset (known vs unknown)\n",
        figure.dataset
    ));
    out.push_str(&format!(
        "{:<6} {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | {:>10}\n",
        "model", "kn.q1", "kn.med", "kn.q3", "unk.q1", "unk.med", "unk.q3", "median gap"
    ));
    for row in &figure.rows {
        match &row.entropies {
            Some(pair) => out.push_str(&format!(
                "{:<6} {:>9.3} {:>9.3} {:>9.3} | {:>9.3} {:>9.3} {:>9.3} | {:>10.3}\n",
                row.model,
                pair.known.q1,
                pair.known.median,
                pair.known.q3,
                pair.unknown.q1,
                pair.unknown.median,
                pair.unknown.q3,
                pair.median_gap()
            )),
            None => out.push_str(&format!(
                "{:<6} training failed: {}\n",
                row.model,
                row.failure.as_deref().unwrap_or("unknown error")
            )),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_smoke_has_three_rows_and_rf_separates() {
        let figure = fig4(ExperimentScale::Smoke, 17);
        assert_eq!(figure.rows.len(), 3);
        let rf = &figure.rows[0];
        assert_eq!(rf.model, "RF");
        let pair = rf.entropies.expect("RF trains on DVFS");
        assert!(
            pair.median_gap() > 0.0,
            "unknown median should exceed known median even at smoke scale"
        );
        let text = render(&figure);
        assert!(text.contains("DVFS"));
    }

    #[test]
    fn fig5_smoke_reports_svm_failure() {
        let figure = fig5(ExperimentScale::Smoke, 18);
        assert_eq!(figure.rows.len(), 3);
        let svm = figure
            .rows
            .iter()
            .find(|r| r.model == "SVM")
            .expect("SVM row present");
        assert!(
            svm.failure.is_some() || svm.entropies.is_some(),
            "SVM row must either fail (as in the paper) or report entropies"
        );
        let rf = figure.rows.iter().find(|r| r.model == "RF").unwrap();
        assert!(rf.entropies.is_some());
    }
}
