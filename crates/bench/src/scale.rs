//! Experiment scale presets.
//!
//! The paper's full corpus (Table I) takes minutes to regenerate; the
//! `bench` scale preserves every qualitative property at a fraction of the
//! cost, and the `smoke` scale keeps Criterion iterations and CI runs fast.

use hmd_dvfs::dataset::DvfsCorpusBuilder;
use hmd_hpc::dataset::HpcCorpusBuilder;
use serde::{Deserialize, Serialize};

/// How large a corpus the experiments generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ExperimentScale {
    /// Tiny corpora for Criterion iterations and CI smoke runs.
    Smoke,
    /// Mid-sized corpora with the paper's qualitative behaviour (default).
    #[default]
    Bench,
    /// The sample counts of the paper's Table I.
    Paper,
}

impl ExperimentScale {
    /// Parses a scale name (`smoke`, `bench`, `paper`).
    pub fn parse(name: &str) -> Option<ExperimentScale> {
        match name.to_ascii_lowercase().as_str() {
            "smoke" => Some(ExperimentScale::Smoke),
            "bench" => Some(ExperimentScale::Bench),
            "paper" => Some(ExperimentScale::Paper),
            _ => None,
        }
    }

    /// The DVFS corpus builder for this scale.
    pub fn dvfs_builder(self) -> DvfsCorpusBuilder {
        match self {
            ExperimentScale::Smoke => DvfsCorpusBuilder::new()
                .with_samples_per_app(25)
                .with_trace_len(512),
            ExperimentScale::Bench => DvfsCorpusBuilder::bench_scale(),
            ExperimentScale::Paper => DvfsCorpusBuilder::paper_scale(),
        }
    }

    /// The HPC corpus builder for this scale.
    pub fn hpc_builder(self) -> HpcCorpusBuilder {
        match self {
            ExperimentScale::Smoke => HpcCorpusBuilder::new().with_samples_per_app(12),
            ExperimentScale::Bench => HpcCorpusBuilder::bench_scale(),
            ExperimentScale::Paper => HpcCorpusBuilder::paper_scale(),
        }
    }

    /// Number of base classifiers in the bagging ensembles at this scale.
    pub fn num_estimators(self) -> usize {
        match self {
            ExperimentScale::Smoke => 15,
            ExperimentScale::Bench | ExperimentScale::Paper => 25,
        }
    }

    /// Maximum number of points embedded by the t-SNE experiment.
    pub fn tsne_points(self) -> usize {
        match self {
            ExperimentScale::Smoke => 90,
            ExperimentScale::Bench => 250,
            ExperimentScale::Paper => 600,
        }
    }

    /// Name used in report headers.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentScale::Smoke => "smoke",
            ExperimentScale::Bench => "bench",
            ExperimentScale::Paper => "paper",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_names_only() {
        assert_eq!(
            ExperimentScale::parse("paper"),
            Some(ExperimentScale::Paper)
        );
        assert_eq!(
            ExperimentScale::parse("BENCH"),
            Some(ExperimentScale::Bench)
        );
        assert_eq!(
            ExperimentScale::parse("smoke"),
            Some(ExperimentScale::Smoke)
        );
        assert_eq!(ExperimentScale::parse("huge"), None);
    }

    #[test]
    fn scales_grow_monotonically() {
        let smoke = ExperimentScale::Smoke.dvfs_builder();
        let bench = ExperimentScale::Bench.dvfs_builder();
        let paper = ExperimentScale::Paper.dvfs_builder();
        assert!(smoke.samples_per_known_app < bench.samples_per_known_app);
        assert!(bench.samples_per_known_app < paper.samples_per_known_app);
        assert!(ExperimentScale::Smoke.tsne_points() < ExperimentScale::Paper.tsne_points());
    }

    #[test]
    fn default_scale_is_bench() {
        assert_eq!(ExperimentScale::default(), ExperimentScale::Bench);
        assert_eq!(ExperimentScale::Bench.name(), "bench");
    }
}
