//! Figures 7a and 9b: percentage of known / unknown inputs rejected as a
//! function of the entropy threshold, plus the paper's §V.A headline
//! operating points.

use crate::pipelines::{evaluate_dvfs, evaluate_hpc, BaseModel, EvaluatedEnsemble};
use crate::scale::ExperimentScale;
use hmd_core::rejection::{threshold_grid, RejectionCurve};
use hmd_ml::MlError;
use serde::{Deserialize, Serialize};

/// Rejection curves of one dataset, one per trainable ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectionFigure {
    /// "DVFS" (Fig. 7a) or "HPC" (Fig. 9b).
    pub dataset: String,
    /// One curve per ensemble that trained successfully.
    pub curves: Vec<RejectionCurve>,
    /// Ensembles that failed to train (model name, error message).
    pub failures: Vec<(String, String)>,
}

fn build_figure(
    dataset: &str,
    results: Vec<(BaseModel, Result<EvaluatedEnsemble, MlError>)>,
    thresholds: &[f64],
) -> RejectionFigure {
    let mut curves = Vec::new();
    let mut failures = Vec::new();
    for (model, result) in results {
        match result {
            Ok(eval) => curves.push(RejectionCurve::sweep(
                model.short_name(),
                &eval.known,
                &eval.unknown,
                thresholds,
            )),
            Err(err) => failures.push((model.short_name().to_string(), err.to_string())),
        }
    }
    RejectionFigure {
        dataset: dataset.to_string(),
        curves,
        failures,
    }
}

/// Regenerates Fig. 7a: DVFS rejection curves for RF, LR and SVM ensembles
/// over thresholds 0.00–0.75.
pub fn fig7a(scale: ExperimentScale, seed: u64) -> RejectionFigure {
    build_figure(
        "DVFS",
        evaluate_dvfs(scale, &BaseModel::all(), seed),
        &threshold_grid(0.0, 0.75, 0.05),
    )
}

/// Regenerates Fig. 9b: HPC rejection curves for RF and LR ensembles over
/// thresholds 0.00–0.80 (SVM is dropped because it fails to converge).
pub fn fig9b(scale: ExperimentScale, seed: u64) -> RejectionFigure {
    build_figure(
        "HPC",
        evaluate_hpc(
            scale,
            &[BaseModel::RandomForest, BaseModel::LogisticRegression],
            seed,
        ),
        &threshold_grid(0.0, 0.80, 0.05),
    )
}

/// The paper's §V.A headline: for the DVFS RF ensemble, the operating point
/// that keeps known rejection under 5 % and the fraction of unknown
/// workloads it rejects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPointSummary {
    /// Entropy threshold of the operating point.
    pub threshold: f64,
    /// Percentage of known inputs rejected there.
    pub known_rejected_pct: f64,
    /// Percentage of unknown inputs rejected there.
    pub unknown_rejected_pct: f64,
    /// The paper's reported values for comparison (threshold, unknown %).
    pub paper_reference: (f64, f64),
}

/// Computes the DVFS RF operating point (paper: threshold 0.40 rejects ≈95 %
/// of unknown workloads at <5 % known rejection).
pub fn dvfs_operating_points(scale: ExperimentScale, seed: u64) -> Option<OperatingPointSummary> {
    let figure = fig7a(scale, seed);
    let rf = figure.curves.iter().find(|c| c.model_name == "RF")?;
    let op = rf.operating_point(5.0)?;
    Some(OperatingPointSummary {
        threshold: op.threshold,
        known_rejected_pct: op.known_rejected_pct,
        unknown_rejected_pct: op.unknown_rejected_pct,
        paper_reference: (0.40, 95.0),
    })
}

/// Renders the figure data as a text table.
pub fn render(figure: &RejectionFigure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Rejected inputs vs entropy threshold, {} dataset\n",
        figure.dataset
    ));
    out.push_str(&format!(
        "{:>9} |{}\n",
        "threshold",
        figure
            .curves
            .iter()
            .map(|c| format!(
                " {:>9} {:>9}",
                format!("{}-unk%", c.model_name),
                format!("{}-kn%", c.model_name)
            ))
            .collect::<String>()
    ));
    if let Some(first) = figure.curves.first() {
        for (i, point) in first.points.iter().enumerate() {
            out.push_str(&format!("{:>9.2} |", point.threshold));
            for curve in &figure.curves {
                let p = &curve.points[i];
                out.push_str(&format!(
                    " {:>9.1} {:>9.1}",
                    p.unknown_rejected_pct, p.known_rejected_pct
                ));
            }
            out.push('\n');
        }
    }
    for (model, err) in &figure.failures {
        out.push_str(&format!("{model}: training failed ({err})\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7a_smoke_produces_curves_for_every_trainable_model() {
        let figure = fig7a(ExperimentScale::Smoke, 5);
        assert!(!figure.curves.is_empty());
        let rf = figure.curves.iter().find(|c| c.model_name == "RF").unwrap();
        assert_eq!(rf.points.len(), threshold_grid(0.0, 0.75, 0.05).len());
        assert!(
            rf.separation() > 0.0,
            "RF should separate unknown from known"
        );
        let text = render(&figure);
        assert!(text.contains("threshold"));
    }

    #[test]
    fn fig9b_smoke_reports_low_separation() {
        let figure = fig9b(ExperimentScale::Smoke, 6);
        let rf = figure.curves.iter().find(|c| c.model_name == "RF").unwrap();
        // HPC: known and unknown rejection track each other (limited separation).
        assert!(
            rf.separation() < 45.0,
            "HPC separation should stay small, got {:.1}",
            rf.separation()
        );
    }

    #[test]
    fn operating_point_summary_exists_at_smoke_scale() {
        let op = dvfs_operating_points(ExperimentScale::Smoke, 7);
        let op = op.expect("RF operating point under 5% known rejection exists");
        assert!(op.known_rejected_pct <= 5.0);
        assert_eq!(op.paper_reference, (0.40, 95.0));
    }
}
