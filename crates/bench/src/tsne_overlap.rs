//! Figure 8: t-SNE visualisation of the training data (benign vs. malware)
//! and the unknown data, for both datasets, summarised by a class-overlap
//! score.

use crate::scale::ExperimentScale;
use hmd_core::analysis::class_overlap_score;
use hmd_data::scaler::StandardScaler;
use hmd_data::split::KnownUnknownSplit;
use hmd_data::{Label, Matrix};
use hmd_ml::tsne::{Tsne, TsneParams};
use serde::{Deserialize, Serialize};

/// The embedded points of one dataset's panel of Fig. 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsnePanel {
    /// "DVFS" or "HPC".
    pub dataset: String,
    /// 2-D embedded coordinates, one row per embedded sample.
    pub embedding: Vec<[f64; 2]>,
    /// Class of each embedded sample (training benign / malware).
    pub labels: Vec<Label>,
    /// Whether each embedded sample came from the unknown bucket.
    pub unknown: Vec<bool>,
    /// Fraction of samples whose nearest neighbour belongs to the other
    /// class: ≈0 for cleanly separated classes, →0.5 for heavy overlap.
    pub benign_malware_overlap: f64,
    /// Fraction of *unknown* samples whose nearest neighbour is a training
    /// sample of a different class than their own majority region — a proxy
    /// for "the unknowns sit inside the class overlap" (high on HPC) versus
    /// "the unknowns sit away from the training data" (low on DVFS).
    pub unknown_inside_overlap: f64,
}

/// Both panels of Fig. 8.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsneFigure {
    /// DVFS panel (Fig. 8a).
    pub dvfs: TsnePanel,
    /// HPC panel (Fig. 8b).
    pub hpc: TsnePanel,
}

/// Regenerates Fig. 8 at the given scale (the number of embedded points is
/// capped by [`ExperimentScale::tsne_points`] because exact t-SNE is O(n²)).
pub fn fig8(scale: ExperimentScale, seed: u64) -> TsneFigure {
    let dvfs_split = scale
        .dvfs_builder()
        .build_split(seed)
        .expect("DVFS corpus generation");
    let hpc_split = scale
        .hpc_builder()
        .build_split(seed + 1)
        .expect("HPC corpus generation");
    TsneFigure {
        dvfs: embed_panel("DVFS", &dvfs_split, scale.tsne_points(), seed),
        hpc: embed_panel("HPC", &hpc_split, scale.tsne_points(), seed + 2),
    }
}

fn embed_panel(
    dataset: &str,
    split: &KnownUnknownSplit,
    max_points: usize,
    seed: u64,
) -> TsnePanel {
    // Assemble a balanced subsample: training data plus unknown data.
    let train_budget = (max_points * 3) / 4;
    let unknown_budget = max_points - train_budget;
    let train_indices = subsample(split.train.len(), train_budget);
    let unknown_indices = subsample(split.unknown.len(), unknown_budget);

    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    let mut unknown_flags = Vec::new();
    for &i in &train_indices {
        rows.push(split.train.features().row(i).to_vec());
        labels.push(split.train.labels()[i]);
        unknown_flags.push(false);
    }
    for &i in &unknown_indices {
        rows.push(split.unknown.features().row(i).to_vec());
        labels.push(split.unknown.labels()[i]);
        unknown_flags.push(true);
    }
    let features = Matrix::from_rows(&rows).expect("uniform feature width");
    let scaler = StandardScaler::fit(&features);
    let scaled = scaler.transform(&features).expect("same width");

    let tsne = Tsne::new(
        TsneParams::new()
            .with_perplexity(20.0_f64.min((rows.len() as f64 / 4.0).max(5.0)))
            .with_iterations(300),
    );
    let embedding = tsne.embed(&scaled, seed).expect("enough points");

    // Overlap between benign and malware among *training* points only.
    let train_count = train_indices.len();
    let train_embedding = embedding.select_rows(&(0..train_count).collect::<Vec<_>>());
    let benign_malware_overlap = class_overlap_score(&train_embedding, &labels[..train_count]);

    // For every unknown point, check whether its nearest training neighbour
    // has the same label; a mismatch fraction near 0.5 means the unknowns sit
    // in the class-overlap region.
    let mut mismatches = 0usize;
    for u in train_count..embedding.rows() {
        let mut best = f64::INFINITY;
        let mut best_label = labels[u];
        for (t, label) in labels.iter().enumerate().take(train_count) {
            let d: f64 = embedding
                .row(u)
                .iter()
                .zip(embedding.row(t))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d < best {
                best = d;
                best_label = *label;
            }
        }
        if best_label != labels[u] {
            mismatches += 1;
        }
    }
    let unknown_count = embedding.rows() - train_count;
    let unknown_inside_overlap = if unknown_count == 0 {
        0.0
    } else {
        mismatches as f64 / unknown_count as f64
    };

    TsnePanel {
        dataset: dataset.to_string(),
        embedding: embedding.iter_rows().map(|r| [r[0], r[1]]).collect(),
        labels,
        unknown: unknown_flags,
        benign_malware_overlap,
        unknown_inside_overlap,
    }
}

/// Evenly spaced subsample of `0..len` with at most `budget` indices.
fn subsample(len: usize, budget: usize) -> Vec<usize> {
    if len <= budget {
        return (0..len).collect();
    }
    (0..budget).map(|i| i * len / budget).collect()
}

/// Renders the overlap summary of both panels.
pub fn render(figure: &TsneFigure) -> String {
    let mut out = String::new();
    out.push_str("t-SNE latent-space summary (Fig. 8)\n");
    out.push_str(&format!(
        "{:<6} {:>12} {:>22} {:>24}\n",
        "panel", "points", "benign/malware overlap", "unknown-in-overlap frac"
    ));
    for panel in [&figure.dvfs, &figure.hpc] {
        out.push_str(&format!(
            "{:<6} {:>12} {:>22.3} {:>24.3}\n",
            panel.dataset,
            panel.embedding.len(),
            panel.benign_malware_overlap,
            panel.unknown_inside_overlap
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_smoke_embeds_both_panels() {
        let figure = fig8(ExperimentScale::Smoke, 9);
        for panel in [&figure.dvfs, &figure.hpc] {
            assert_eq!(panel.embedding.len(), panel.labels.len());
            assert_eq!(panel.embedding.len(), panel.unknown.len());
            assert!(panel
                .embedding
                .iter()
                .all(|p| p[0].is_finite() && p[1].is_finite()));
            assert!((0.0..=1.0).contains(&panel.benign_malware_overlap));
            assert!((0.0..=1.0).contains(&panel.unknown_inside_overlap));
        }
        // The paper's qualitative claim: HPC classes overlap more than DVFS classes.
        assert!(
            figure.hpc.benign_malware_overlap >= figure.dvfs.benign_malware_overlap,
            "HPC overlap {:.3} should be at least DVFS overlap {:.3}",
            figure.hpc.benign_malware_overlap,
            figure.dvfs.benign_malware_overlap
        );
        let text = render(&figure);
        assert!(text.contains("t-SNE"));
    }

    #[test]
    fn subsample_respects_budget_and_bounds() {
        assert_eq!(subsample(5, 10), vec![0, 1, 2, 3, 4]);
        let s = subsample(1000, 10);
        assert_eq!(s.len(), 10);
        assert!(s.iter().all(|&i| i < 1000));
        assert!(s.windows(2).all(|w| w[1] > w[0]));
    }
}
