//! Shared model pipelines used by every experiment: the three ensembles the
//! paper evaluates (Random Forest, Logistic Regression, SVM base classifiers)
//! trained behind the standard scaling front end.
//!
//! Every experiment goes through the unified [`Detector`] API: a
//! [`DetectorConfig`] describes the pipeline, [`DetectorConfig::fit`] compiles
//! it into a `Box<dyn Detector>`, and the batch hot path
//! [`DetectorExt::detect_batch`] produces the predictions behind every
//! figure.

use crate::scale::ExperimentScale;
use hmd_core::detector::{Detector, DetectorBackend, DetectorConfig, DetectorExt};
use hmd_core::estimator::UncertainPrediction;
use hmd_data::split::KnownUnknownSplit;
use hmd_ml::forest::RandomForestParams;
use hmd_ml::logistic::LogisticRegressionParams;
use hmd_ml::svm::LinearSvmParams;
use hmd_ml::tree::{DecisionTreeParams, MaxFeatures};
use hmd_ml::MlError;
use serde::{Deserialize, Serialize};

/// The base-classifier families evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaseModel {
    /// Random-forest base classifiers (the paper's best performer).
    RandomForest,
    /// Logistic-regression base classifiers.
    LogisticRegression,
    /// Linear-SVM base classifiers (poor uncertainty on DVFS, fails to
    /// converge on HPC).
    Svm,
}

impl BaseModel {
    /// Short display name used in figures ("RF", "LR", "SVM").
    pub fn short_name(self) -> &'static str {
        match self {
            BaseModel::RandomForest => "RF",
            BaseModel::LogisticRegression => "LR",
            BaseModel::Svm => "SVM",
        }
    }

    /// All base models, in the order the paper lists them.
    pub fn all() -> [BaseModel; 3] {
        [
            BaseModel::RandomForest,
            BaseModel::LogisticRegression,
            BaseModel::Svm,
        ]
    }
}

/// Known/unknown prediction sets of one trained ensemble, the raw material of
/// every figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedEnsemble {
    /// Which base classifier the ensemble uses.
    pub model: BaseModel,
    /// Predictions (with uncertainty) on the known test set.
    pub known: Vec<UncertainPrediction>,
    /// Predictions (with uncertainty) on the unknown set.
    pub unknown: Vec<UncertainPrediction>,
    /// Ground-truth labels of the known test set.
    pub known_truth: Vec<hmd_data::Label>,
    /// Ground-truth labels of the unknown set.
    pub unknown_truth: Vec<hmd_data::Label>,
}

/// The [`DetectorBackend`] (with the experiments' hyper-parameters) behind a
/// paper base model.
pub fn backend_for(model: BaseModel, convergence_check: bool) -> DetectorBackend {
    match model {
        BaseModel::RandomForest => DetectorBackend::RandomForest(forest_params()),
        BaseModel::LogisticRegression => DetectorBackend::LogisticRegression(logistic_params()),
        BaseModel::Svm => DetectorBackend::LinearSvm(svm_params(convergence_check)),
    }
}

/// The trusted-pipeline [`DetectorConfig`] every experiment trains for the
/// given base model.
pub fn detector_config(
    model: BaseModel,
    num_estimators: usize,
    convergence_check: bool,
) -> DetectorConfig {
    DetectorConfig::trusted(backend_for(model, convergence_check))
        .with_num_estimators(num_estimators)
}

/// Trains the requested ensemble on a split and evaluates it on the known
/// test and unknown sets, going through the unified [`Detector`] API.
///
/// # Errors
///
/// Propagates training failures — in particular the SVM convergence failure
/// on HPC-style data, which the caller is expected to report rather than
/// panic on (the paper drops SVM from the HPC figures for this reason).
pub fn evaluate_ensemble(
    model: BaseModel,
    split: &KnownUnknownSplit,
    num_estimators: usize,
    convergence_check: bool,
    seed: u64,
) -> Result<EvaluatedEnsemble, MlError> {
    let detector =
        detector_config(model, num_estimators, convergence_check).fit(&split.train, seed)?;
    let (known, unknown) = predictions(detector.as_ref(), split)?;
    Ok(EvaluatedEnsemble {
        model,
        known,
        unknown,
        known_truth: split.test_known.labels().to_vec(),
        unknown_truth: split.unknown.labels().to_vec(),
    })
}

fn predictions(
    detector: &dyn Detector,
    split: &KnownUnknownSplit,
) -> Result<(Vec<UncertainPrediction>, Vec<UncertainPrediction>), MlError> {
    Ok((
        hmd_core::detector::predictions(&detector.detect_batch(split.test_known.features())?),
        hmd_core::detector::predictions(&detector.detect_batch(split.unknown.features())?),
    ))
}

/// Random-forest base-classifier parameters used throughout the experiments.
///
/// The base forests are deliberately small (3 deep trees): a large forest is
/// itself an ensemble and averages away the disagreement between bagging
/// replicates, which weakens the uncertainty signal the paper relies on.
pub fn forest_params() -> RandomForestParams {
    RandomForestParams::new()
        .with_num_trees(3)
        .with_tree_params(
            DecisionTreeParams::new()
                .with_max_depth(14)
                .with_max_features(MaxFeatures::Sqrt),
        )
}

/// Logistic-regression base-classifier parameters used throughout the
/// experiments.
pub fn logistic_params() -> LogisticRegressionParams {
    LogisticRegressionParams::new().with_epochs(200)
}

/// Linear-SVM base-classifier parameters; the convergence check reproduces
/// scikit-learn's failure on the bootstrapped HPC dataset.
pub fn svm_params(convergence_check: bool) -> LinearSvmParams {
    let params = LinearSvmParams::new().with_epochs(40);
    if convergence_check {
        params.with_convergence_check(0.5)
    } else {
        params
    }
}

/// Builds the DVFS split, trains every requested ensemble and evaluates it.
/// SVM failures are reported as `Err` entries rather than aborting the run.
pub fn evaluate_dvfs(
    scale: ExperimentScale,
    models: &[BaseModel],
    seed: u64,
) -> Vec<(BaseModel, Result<EvaluatedEnsemble, MlError>)> {
    let split = scale
        .dvfs_builder()
        .build_split(seed)
        .expect("DVFS corpus generation is infallible for valid builders");
    models
        .iter()
        .map(|&m| {
            (
                m,
                evaluate_ensemble(m, &split, scale.num_estimators(), false, seed ^ 0x5eed),
            )
        })
        .collect()
}

/// Builds the HPC split, trains every requested ensemble and evaluates it.
/// The SVM ensemble runs with the convergence check enabled, reproducing the
/// paper's "SVM failed to converge" observation.
pub fn evaluate_hpc(
    scale: ExperimentScale,
    models: &[BaseModel],
    seed: u64,
) -> Vec<(BaseModel, Result<EvaluatedEnsemble, MlError>)> {
    let split = scale
        .hpc_builder()
        .build_split(seed)
        .expect("HPC corpus generation is infallible for valid builders");
    models
        .iter()
        .map(|&m| {
            (
                m,
                evaluate_ensemble(m, &split, scale.num_estimators(), true, seed ^ 0x5eed),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_names_match_paper_labels() {
        assert_eq!(BaseModel::RandomForest.short_name(), "RF");
        assert_eq!(BaseModel::LogisticRegression.short_name(), "LR");
        assert_eq!(BaseModel::Svm.short_name(), "SVM");
        assert_eq!(BaseModel::all().len(), 3);
    }

    #[test]
    fn dvfs_smoke_evaluation_produces_predictions_for_rf() {
        let results = evaluate_dvfs(ExperimentScale::Smoke, &[BaseModel::RandomForest], 1);
        assert_eq!(results.len(), 1);
        let (model, result) = &results[0];
        assert_eq!(*model, BaseModel::RandomForest);
        let eval = result.as_ref().expect("RF training succeeds");
        assert!(!eval.known.is_empty());
        assert!(!eval.unknown.is_empty());
        assert_eq!(eval.known.len(), eval.known_truth.len());
    }

    #[test]
    fn hpc_smoke_evaluation_runs_logistic_regression() {
        let results = evaluate_hpc(ExperimentScale::Smoke, &[BaseModel::LogisticRegression], 2);
        let (_, result) = &results[0];
        let eval = result.as_ref().expect("LR training succeeds");
        assert_eq!(eval.unknown.len(), eval.unknown_truth.len());
    }
}
