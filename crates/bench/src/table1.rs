//! Table I: dataset taxonomy (train / known-test / unknown sample counts).

use crate::scale::ExperimentScale;
use hmd_data::taxonomy::DatasetTaxonomy;
use serde::{Deserialize, Serialize};

/// The two rows of Table I plus the counts the paper reports, for direct
/// comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// Taxonomy of the generated DVFS corpus.
    pub dvfs: DatasetTaxonomy,
    /// Taxonomy of the generated HPC corpus.
    pub hpc: DatasetTaxonomy,
    /// The paper's DVFS counts (train, test, unknown).
    pub paper_dvfs: (usize, usize, usize),
    /// The paper's HPC counts (train, test, unknown).
    pub paper_hpc: (usize, usize, usize),
}

/// Regenerates Table I at the given scale.
pub fn run(scale: ExperimentScale, seed: u64) -> Table1 {
    use hmd_data::taxonomy::paper;
    let dvfs_split = scale
        .dvfs_builder()
        .build_split(seed)
        .expect("DVFS corpus generation");
    let hpc_split = scale
        .hpc_builder()
        .build_split(seed + 1)
        .expect("HPC corpus generation");
    Table1 {
        dvfs: DatasetTaxonomy::from_split("DVFS", &dvfs_split),
        hpc: DatasetTaxonomy::from_split("HPC", &hpc_split),
        paper_dvfs: (
            paper::DVFS_TRAIN,
            paper::DVFS_TEST_KNOWN,
            paper::DVFS_UNKNOWN,
        ),
        paper_hpc: (paper::HPC_TRAIN, paper::HPC_TEST_KNOWN, paper::HPC_UNKNOWN),
    }
}

/// Renders the table as text, paper counts alongside measured counts.
pub fn render(table: &Table1) -> String {
    let mut out = String::new();
    out.push_str("Table I: dataset taxonomy (measured vs. paper)\n");
    out.push_str(&format!(
        "{:<8} {:<14} {:>10} {:>10}\n",
        "Dataset", "Split", "measured", "paper"
    ));
    for (tax, paper) in [
        (&table.dvfs, table.paper_dvfs),
        (&table.hpc, table.paper_hpc),
    ] {
        out.push_str(&format!(
            "{:<8} {:<14} {:>10} {:>10}\n",
            tax.name, "Train", tax.train, paper.0
        ));
        out.push_str(&format!(
            "{:<8} {:<14} {:>10} {:>10}\n",
            "", "Test (Known)", tax.test_known, paper.1
        ));
        out.push_str(&format!(
            "{:<8} {:<14} {:>10} {:>10}\n",
            "", "Unknown", tax.unknown, paper.2
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table_has_all_buckets_populated() {
        let table = run(ExperimentScale::Smoke, 3);
        assert!(table.dvfs.train > 0 && table.dvfs.unknown > 0);
        assert!(table.hpc.train > 0 && table.hpc.unknown > 0);
        assert_eq!(table.paper_dvfs, (2100, 700, 284));
        assert_eq!(table.paper_hpc, (44_605, 6372, 12_727));
    }

    #[test]
    fn render_mentions_every_split() {
        let table = run(ExperimentScale::Smoke, 4);
        let text = render(&table);
        assert!(text.contains("DVFS"));
        assert!(text.contains("HPC"));
        assert!(text.contains("Unknown"));
        assert!(text.contains("44605") || text.contains("44 605") || text.contains("44_605"));
    }
}
