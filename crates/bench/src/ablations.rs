//! Ablation studies of the design choices called out in DESIGN.md:
//!
//! 1. **Bootstrap diversity** — the uncertainty estimate relies on bootstrap
//!    resampling to decorrelate the base classifiers. Training the same
//!    ensemble without bootstrap (every base classifier sees the full
//!    training set) collapses the vote disagreement and the unknown/known
//!    separation with it.
//! 2. **Platt-scaled confidence vs. vote entropy** — the prior approach
//!    (Chawla et al.) thresholds a single calibrated probability instead of
//!    the ensemble entropy; its rejection curves separate unknown from known
//!    data far less cleanly.

use crate::pipelines::{detector_config, logistic_params, BaseModel};
use crate::scale::ExperimentScale;
use hmd_core::detector::{DetectorBackend, DetectorConfig, DetectorExt};
use hmd_core::platt_baseline::{ConfidencePrediction, PlattConfidenceBaseline};
use hmd_core::rejection::{threshold_grid, RejectionCurve};
use hmd_data::scaler::StandardScaler;
use hmd_ml::bagging::BaggingParams;
use hmd_ml::tree::{DecisionTreeParams, MaxFeatures};
use serde::{Deserialize, Serialize};

/// Result of the bootstrap-diversity ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiversityAblation {
    /// Rejection curve of the standard (bootstrap) ensemble.
    pub with_bootstrap: RejectionCurve,
    /// Rejection curve of the no-bootstrap ensemble.
    pub without_bootstrap: RejectionCurve,
}

impl DiversityAblation {
    /// How much separation (unknown vs. known rejection) bootstrap adds.
    pub fn separation_gain(&self) -> f64 {
        self.with_bootstrap.separation() - self.without_bootstrap.separation()
    }
}

/// Runs the bootstrap-diversity ablation on the DVFS dataset.
pub fn bootstrap_diversity(scale: ExperimentScale, seed: u64) -> DiversityAblation {
    let split = scale
        .dvfs_builder()
        .build_split(seed)
        .expect("DVFS corpus generation");
    let thresholds = threshold_grid(0.0, 0.75, 0.05);
    let tree = DecisionTreeParams::new()
        .with_max_depth(10)
        .with_max_features(MaxFeatures::Sqrt);

    let scaler = StandardScaler::fit(split.train.features());
    let train = scaler.transform_dataset(&split.train).expect("same width");
    let known = scaler
        .transform_dataset(&split.test_known)
        .expect("same width");
    let unknown = scaler
        .transform_dataset(&split.unknown)
        .expect("same width");

    let mut curves = Vec::new();
    for bootstrap in [true, false] {
        let ensemble = BaggingParams::new(tree.clone())
            .with_num_estimators(scale.num_estimators())
            .with_bootstrap(bootstrap)
            .fit(&train, seed ^ 0x77)
            .expect("tree bagging trains");
        let estimator = hmd_core::estimator::EnsembleUncertaintyEstimator::new(ensemble);
        let known_preds = estimator.predict_dataset(&known);
        let unknown_preds = estimator.predict_dataset(&unknown);
        let name = if bootstrap {
            "bootstrap"
        } else {
            "no-bootstrap"
        };
        curves.push(RejectionCurve::sweep(
            name,
            &known_preds,
            &unknown_preds,
            &thresholds,
        ));
    }
    let without_bootstrap = curves.pop().expect("two curves");
    let with_bootstrap = curves.pop().expect("two curves");
    DiversityAblation {
        with_bootstrap,
        without_bootstrap,
    }
}

/// Result of the Platt-confidence-vs-entropy ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlattAblation {
    /// Entropy-based rejection curve of the RF ensemble.
    pub entropy_curve: RejectionCurve,
    /// Confidence-based rejection curve of the Platt-calibrated single
    /// classifier (thresholds are confidence levels, not entropies).
    pub platt_curve: RejectionCurve,
}

impl PlattAblation {
    /// Difference in unknown/known separation between the two estimators.
    pub fn separation_gain(&self) -> f64 {
        self.entropy_curve.separation() - self.platt_curve.separation()
    }
}

/// Runs the Platt-confidence baseline comparison on the DVFS dataset.
pub fn platt_vs_entropy(scale: ExperimentScale, seed: u64) -> PlattAblation {
    let split = scale
        .dvfs_builder()
        .build_split(seed)
        .expect("DVFS corpus generation");

    // Entropy-based estimator: trusted RF pipeline behind the Detector API.
    let hmd = detector_config(BaseModel::RandomForest, scale.num_estimators(), false)
        .fit(&split.train, seed ^ 0x99)
        .expect("RF pipeline trains");
    let known_preds = hmd_core::detector::predictions(
        &hmd.detect_batch(split.test_known.features())
            .expect("known predictions"),
    );
    let unknown_preds = hmd_core::detector::predictions(
        &hmd.detect_batch(split.unknown.features())
            .expect("unknown predictions"),
    );
    let entropy_curve = RejectionCurve::sweep(
        "entropy-RF",
        &known_preds,
        &unknown_preds,
        &threshold_grid(0.0, 0.75, 0.05),
    );

    // Platt-style baseline: single logistic regression, confidence threshold.
    // The pipeline trains and serves through the same Detector API; its
    // reported malware probability is turned back into the baseline's
    // confidence value max(p, 1 - p) for the confidence-threshold sweep.
    let platt = DetectorConfig::platt(DetectorBackend::LogisticRegression(logistic_params()))
        .fit(&split.train, seed ^ 0x11)
        .expect("LR trains");
    let confidences = |reports: Vec<hmd_core::trusted::DetectionReport>| {
        reports
            .into_iter()
            .map(|r| {
                let p = r.prediction.malware_vote_fraction;
                ConfidencePrediction {
                    label: r.prediction.label,
                    malware_probability: p,
                    confidence: p.max(1.0 - p),
                }
            })
            .collect::<Vec<_>>()
    };
    let known_conf = confidences(
        platt
            .detect_batch(split.test_known.features())
            .expect("known confidences"),
    );
    let unknown_conf = confidences(
        platt
            .detect_batch(split.unknown.features())
            .expect("unknown confidences"),
    );
    let platt_curve =
        PlattConfidenceBaseline::<hmd_ml::logistic::LogisticRegression>::rejection_curve(
            "platt-LR",
            &known_conf,
            &unknown_conf,
            &threshold_grid(0.5, 1.0, 0.05),
        );

    PlattAblation {
        entropy_curve,
        platt_curve,
    }
}

/// Renders both ablations as a short text report.
pub fn render(diversity: &DiversityAblation, platt: &PlattAblation) -> String {
    format!(
        "Ablation: bootstrap diversity (DVFS)\n\
         separation with bootstrap    {:>7.1} pp\n\
         separation without bootstrap {:>7.1} pp\n\
         gain from bootstrap          {:>7.1} pp\n\
         \n\
         Ablation: vote entropy vs Platt confidence (DVFS)\n\
         separation, entropy (RF)     {:>7.1} pp\n\
         separation, Platt conf (LR)  {:>7.1} pp\n\
         gain from ensemble entropy   {:>7.1} pp\n",
        diversity.with_bootstrap.separation(),
        diversity.without_bootstrap.separation(),
        diversity.separation_gain(),
        platt.entropy_curve.separation(),
        platt.platt_curve.separation(),
        platt.separation_gain()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_adds_diversity_at_smoke_scale() {
        let ablation = bootstrap_diversity(ExperimentScale::Smoke, 31);
        // Both variants must separate unknown from known data on DVFS; the
        // *size* of the gap between them is reported, not asserted, because
        // feature subsampling alone already provides some diversity.
        assert!(ablation.with_bootstrap.separation() > 0.0);
        assert!(ablation.without_bootstrap.separation() > 0.0);
        assert!(ablation.separation_gain().is_finite());
    }

    #[test]
    fn entropy_estimator_beats_platt_baseline_at_smoke_scale() {
        let ablation = platt_vs_entropy(ExperimentScale::Smoke, 37);
        assert!(
            ablation.entropy_curve.separation() > 0.0,
            "entropy separation should be positive"
        );
        let text = render(&bootstrap_diversity(ExperimentScale::Smoke, 31), &ablation);
        assert!(text.contains("Ablation"));
    }
}
