//! Experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p hmd-bench --release --bin experiments -- [experiment] [--scale smoke|bench|paper] [--seed N] [--json DIR]
//! ```
//!
//! `experiment` is one of `table1`, `fig4`, `fig5`, `fig7a`, `fig7b`, `fig8`,
//! `fig9a`, `fig9b`, `headline`, `ablations` or `all` (default).
//!
//! `--dump DIR` (alias `--json DIR`) writes every figure's raw data as a
//! pretty-printed Rust `Debug` dump, since the offline toolchain has no
//! `serde_json`.

use hmd_bench::{
    ablations, ensemble_size, entropy_boxplots, f1_curves, rejection_curves, table1, tsne_overlap,
    ExperimentScale,
};
use std::path::PathBuf;

struct Options {
    experiment: String,
    scale: ExperimentScale,
    seed: u64,
    dump_dir: Option<PathBuf>,
}

fn parse_args() -> Options {
    let mut experiment = "all".to_string();
    let mut scale = ExperimentScale::Bench;
    let mut seed = 2021;
    let mut dump_dir = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_default();
                scale = ExperimentScale::parse(&value).unwrap_or_else(|| {
                    eprintln!("unknown scale `{value}`, using bench");
                    ExperimentScale::Bench
                });
            }
            "--seed" => {
                seed = args.next().and_then(|s| s.parse().ok()).unwrap_or(seed);
            }
            "--dump" | "--json" => {
                if arg == "--json" {
                    eprintln!(
                        "note: --json is deprecated and no longer writes JSON — the offline \
                         toolchain dumps Debug text to <name>.txt; use --dump"
                    );
                }
                dump_dir = args.next().map(PathBuf::from);
            }
            other if !other.starts_with("--") => experiment = other.to_string(),
            other => eprintln!("ignoring unknown flag `{other}`"),
        }
    }
    Options {
        experiment,
        scale,
        seed,
        dump_dir,
    }
}

fn write_dump<T: std::fmt::Debug>(dir: &Option<PathBuf>, name: &str, value: &T) {
    let Some(dir) = dir else { return };
    if let Err(err) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {err}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.txt"));
    if let Err(err) = std::fs::write(&path, format!("{value:#?}\n")) {
        eprintln!("cannot write {}: {err}", path.display());
    } else {
        println!("[dump] wrote {}", path.display());
    }
}

fn main() {
    let options = parse_args();
    let scale = options.scale;
    let seed = options.seed;
    let run_all = options.experiment == "all";
    println!(
        "HMD uncertainty experiments — scale: {}, seed: {seed}\n",
        scale.name()
    );

    if run_all || options.experiment == "table1" {
        let table = table1::run(scale, seed);
        println!("{}", table1::render(&table));
        write_dump(&options.dump_dir, "table1", &table);
    }
    if run_all || options.experiment == "fig4" {
        let figure = entropy_boxplots::fig4(scale, seed);
        println!("{}", entropy_boxplots::render(&figure));
        write_dump(&options.dump_dir, "fig4", &figure);
    }
    if run_all || options.experiment == "fig5" {
        let figure = entropy_boxplots::fig5(scale, seed);
        println!("{}", entropy_boxplots::render(&figure));
        write_dump(&options.dump_dir, "fig5", &figure);
    }
    if run_all || options.experiment == "fig7a" {
        let figure = rejection_curves::fig7a(scale, seed);
        println!("{}", rejection_curves::render(&figure));
        write_dump(&options.dump_dir, "fig7a", &figure);
    }
    if run_all || options.experiment == "fig7b" {
        let figure = f1_curves::fig7b(scale, seed);
        println!("{}", f1_curves::render(&figure));
        write_dump(&options.dump_dir, "fig7b", &figure);
    }
    if run_all || options.experiment == "fig8" {
        let figure = tsne_overlap::fig8(scale, seed);
        println!("{}", tsne_overlap::render(&figure));
        write_dump(&options.dump_dir, "fig8", &figure);
    }
    if run_all || options.experiment == "fig9a" {
        let sizes = [1, 2, 5, 10, 20, 30, 40, 50, 75, 100];
        let figure = ensemble_size::fig9a(scale, &sizes, seed);
        println!("{}", ensemble_size::render(&figure));
        write_dump(&options.dump_dir, "fig9a", &figure);
    }
    if run_all || options.experiment == "fig9b" {
        let figure = rejection_curves::fig9b(scale, seed);
        println!("{}", rejection_curves::render(&figure));
        write_dump(&options.dump_dir, "fig9b", &figure);
    }
    if run_all || options.experiment == "headline" {
        match rejection_curves::dvfs_operating_points(scale, seed) {
            Some(op) => println!(
                "Headline (§V.A): DVFS RF operating point\n\
                 threshold {:.2} rejects {:.1}% of unknown workloads at {:.1}% known rejection\n\
                 (paper: threshold {:.2} rejects ~{:.0}% of unknown workloads at <5% known rejection)\n",
                op.threshold,
                op.unknown_rejected_pct,
                op.known_rejected_pct,
                op.paper_reference.0,
                op.paper_reference.1
            ),
            None => println!("Headline: no operating point with <5% known rejection found\n"),
        }
    }
    if run_all || options.experiment == "ablations" {
        let diversity = ablations::bootstrap_diversity(scale, seed);
        let platt = ablations::platt_vs_entropy(scale, seed);
        println!("{}", ablations::render(&diversity, &platt));
        write_dump(&options.dump_dir, "ablation_diversity", &diversity);
        write_dump(&options.dump_dir, "ablation_platt", &platt);
    }
}
