//! Figure 7b: F1 score of the accepted predictions as a function of the
//! entropy threshold, for the RF ensemble on both datasets.

use crate::pipelines::{evaluate_dvfs, evaluate_hpc, BaseModel};
use crate::scale::ExperimentScale;
use hmd_core::rejection::{threshold_grid, F1Curve};
use serde::{Deserialize, Serialize};

/// The two curves of Fig. 7b.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct F1Figure {
    /// RF-DVFS curve.
    pub dvfs: F1Curve,
    /// RF-HPC curve.
    pub hpc: F1Curve,
}

/// Regenerates Fig. 7b. The F1 is computed over the union of the known test
/// set and the unknown set, since the paper evaluates the effect of rejecting
/// uncertain predictions on the overall detection quality.
pub fn fig7b(scale: ExperimentScale, seed: u64) -> F1Figure {
    let thresholds = threshold_grid(0.0, 0.85, 0.05);
    let dvfs = curve_for(
        "RF-DVFS",
        evaluate_dvfs(scale, &[BaseModel::RandomForest], seed),
        &thresholds,
    );
    let hpc = curve_for(
        "RF-HPC",
        evaluate_hpc(scale, &[BaseModel::RandomForest], seed + 1),
        &thresholds,
    );
    F1Figure { dvfs, hpc }
}

fn curve_for(
    name: &str,
    mut results: Vec<(
        BaseModel,
        Result<crate::pipelines::EvaluatedEnsemble, hmd_ml::MlError>,
    )>,
    thresholds: &[f64],
) -> F1Curve {
    let (_, result) = results.remove(0);
    let eval = result.expect("RF ensembles train on both datasets");
    let mut predictions = eval.known.clone();
    predictions.extend(eval.unknown.iter().copied());
    let mut truth = eval.known_truth.clone();
    truth.extend(eval.unknown_truth.iter().copied());
    F1Curve::sweep(name, &predictions, &truth, thresholds)
}

/// Renders the two curves side by side.
pub fn render(figure: &F1Figure) -> String {
    let mut out = String::new();
    out.push_str("Accepted-prediction F1 vs entropy threshold (Fig. 7b)\n");
    out.push_str(&format!(
        "{:>9} {:>9} {:>9} {:>12} {:>12}\n",
        "threshold", "f1-DVFS", "f1-HPC", "acc.frac-DVFS", "acc.frac-HPC"
    ));
    for (d, h) in figure.dvfs.points.iter().zip(&figure.hpc.points) {
        out.push_str(&format!(
            "{:>9.2} {:>9.3} {:>9.3} {:>12.2} {:>12.2}\n",
            d.threshold, d.f1, h.f1, d.accepted_fraction, h.accepted_fraction
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7b_smoke_produces_aligned_curves() {
        let figure = fig7b(ExperimentScale::Smoke, 23);
        assert_eq!(figure.dvfs.points.len(), figure.hpc.points.len());
        assert_eq!(figure.dvfs.name, "RF-DVFS");
        assert!(figure.dvfs.best_f1() > 0.5);
        // Accepted fraction must be monotone in the threshold.
        for pair in figure.hpc.points.windows(2) {
            assert!(pair[1].accepted_fraction + 1e-9 >= pair[0].accepted_fraction);
        }
        let text = render(&figure);
        assert!(text.contains("f1-DVFS"));
    }
}
