//! Robustness evaluation: the `hmd_threat` attack suite against the paper's
//! pipelines, plus closed-loop recovery under gradual drift.
//!
//! Three experiments, one report:
//!
//! 1. **Attack corpora × pipelines.** Every attack stream (mimicry, gradual
//!    drift, sensor dropout/saturation/stuck-at) and a clean baseline are
//!    materialised at the same size and scored by the trusted, untrusted and
//!    Platt-baseline pipelines. Each cell is an [`EscalationBreakdown`]: raw
//!    accuracy, accuracy on the accepted subset, escalation rate, and the
//!    fraction of would-be misclassifications the escalation caught.
//! 2. **Bounded evasion.** Known-malware signatures are pushed through the
//!    [`hmd_threat::evade`] search against each pipeline; the summary
//!    separates predictions that merely *flipped* from evasions that were
//!    *accepted* end to end — the paper's trustworthiness claim is that the
//!    rejection option escalates a large fraction of the flips.
//! 3. **Closed-loop drift recovery.** A gradually drifting corpus is served
//!    through a [`ShardedFleet`] watched by a [`LoopSupervisor`]; the report
//!    records how many drifted rows were served before drift was flagged,
//!    whether the retrain→shadow→promote cycle completed, and the escalation
//!    rate before drift, under attack, and after recovery.

use crate::pipelines::{backend_for, BaseModel};
use crate::scale::ExperimentScale;
use hmd_core::detector::{Detector, DetectorConfig, DetectorExt};
use hmd_core::rejection::EscalationBreakdown;
use hmd_data::stream::CorpusStream;
use hmd_data::{Label, Matrix};
use hmd_dvfs::dataset::DvfsCorpusBuilder;
use hmd_dvfs::DvfsCorpusStream;
use hmd_loop::{DriftPolicy, LoopConfig, LoopEvent, LoopSupervisor, PromotionGate};
use hmd_serve::ShardedFleet;
use hmd_threat::{
    evade_batch, DriftSchedule, EvasionBudget, GradualDrift, Mimicry, SensorFault,
    SensorFaultStream,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Knobs of one robustness evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Corpus/ensemble scale preset shared with every other experiment.
    pub scale: ExperimentScale,
    /// Rows materialised per attack corpus (and for the clean baseline).
    pub rows_per_attack: usize,
    /// Known-malware signatures attacked by the evasion search.
    pub evasion_rows: usize,
    /// Mimicry blend budget in `[0, 1]` (1 = signatures become the nearest
    /// benign template).
    pub mimicry_budget: f64,
    /// Gradual-drift shift magnitude, in per-feature training standard
    /// deviations (signs alternate across features).
    pub drift_sigmas: f64,
    /// Per-row activation probability of the sensor faults.
    pub fault_probability: f64,
    /// Relative L∞ radius of the evasion search.
    pub evasion_linf: f64,
    /// Greedy coordinate passes of the evasion search.
    pub evasion_passes: usize,
    /// Rows per served batch in the closed-loop drift scenario.
    pub loop_batch: usize,
    /// Master seed; every corpus and fit derives from it.
    pub seed: u64,
}

impl RobustnessConfig {
    /// The CI smoke configuration (`HMD_BENCH_QUICK=1`).
    pub fn quick() -> RobustnessConfig {
        RobustnessConfig {
            scale: ExperimentScale::Smoke,
            rows_per_attack: 96,
            evasion_rows: 10,
            mimicry_budget: 0.8,
            drift_sigmas: 4.0,
            fault_probability: 0.35,
            evasion_linf: 0.5,
            evasion_passes: 3,
            loop_batch: 32,
            seed: 2021,
        }
    }

    /// The full configuration behind the committed `BENCH_robustness.json`.
    pub fn full() -> RobustnessConfig {
        RobustnessConfig {
            rows_per_attack: 384,
            evasion_rows: 24,
            ..RobustnessConfig::quick()
        }
    }
}

/// The uncertainty pipelines the attacks are evaluated against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PipelineKind {
    /// Entropy-gated ensemble with the rejection option (the paper's design).
    Trusted,
    /// The same ensemble, forced to always accept its majority label.
    Untrusted,
    /// Single Platt-scaled classifier gated on calibrated confidence.
    Platt,
}

impl PipelineKind {
    /// All pipelines, in report order.
    pub fn all() -> [PipelineKind; 3] {
        [
            PipelineKind::Trusted,
            PipelineKind::Untrusted,
            PipelineKind::Platt,
        ]
    }

    /// Name used in report rows.
    pub fn name(self) -> &'static str {
        match self {
            PipelineKind::Trusted => "trusted",
            PipelineKind::Untrusted => "untrusted",
            PipelineKind::Platt => "platt",
        }
    }

    /// The [`DetectorConfig`] for this pipeline at the given scale (random
    /// forest base classifiers — the paper's best performer).
    pub fn config(self, scale: ExperimentScale) -> DetectorConfig {
        let backend = backend_for(BaseModel::RandomForest, false);
        let config = match self {
            PipelineKind::Trusted => DetectorConfig::trusted(backend),
            PipelineKind::Untrusted => DetectorConfig::untrusted(backend),
            PipelineKind::Platt => DetectorConfig::platt(backend),
        };
        config.with_num_estimators(scale.num_estimators())
    }
}

/// One attack × pipeline cell of the robustness table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttackReport {
    /// Attack corpus name (`baseline`, `mimicry`, `gradual_drift`, ...).
    pub attack: String,
    /// Pipeline the corpus was scored by.
    pub pipeline: String,
    /// Rows scored.
    pub rows: usize,
    /// Accuracy of the predicted labels, ignoring escalation.
    pub raw_accuracy: f64,
    /// Accuracy over the accepted subset only.
    pub accepted_accuracy: f64,
    /// Fraction of rows escalated to the trusted path.
    pub escalation_rate: f64,
    /// Fraction of would-be misclassifications the escalation caught.
    pub caught_fraction: f64,
}

/// Evasion-search results against one pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvasionReport {
    /// Pipeline under attack.
    pub pipeline: String,
    /// Malware rows the search attacked (originally predicted malware).
    pub attacked: usize,
    /// Rows whose *prediction* flipped to benign within the budget.
    pub flipped_predictions: usize,
    /// Flipped rows the rejection option escalated (caught).
    pub escalated_evasions: usize,
    /// Flipped rows accepted as benign — the end-to-end evasion wins.
    pub accepted_evasions: usize,
    /// `flipped_predictions / attacked`.
    pub flip_rate: f64,
    /// `escalated_evasions / flipped_predictions`.
    pub caught_fraction: f64,
    /// `accepted_evasions / attacked`.
    pub accepted_rate: f64,
}

/// Closed-loop behaviour under the gradual-drift attack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftLoopReport {
    /// Rows per served batch.
    pub batch_rows: usize,
    /// Whether the supervisor flagged drift at all.
    pub drift_detected: bool,
    /// Drifted rows served before [`LoopEvent::DriftDetected`] (0 if never).
    pub rows_to_detection: usize,
    /// Whether a retrained challenger was promoted.
    pub promoted: bool,
    /// Whether the verify phase declared the loop recovered.
    pub recovered: bool,
    /// Served escalation rate on the healthy calibration stream.
    pub pre_drift_escalation: f64,
    /// Served escalation rate under drift, before promotion.
    pub drifted_escalation: f64,
    /// Served escalation rate after the challenger took over.
    pub recovered_escalation: f64,
}

/// The full robustness report (serialised into `BENCH_robustness.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessReport {
    /// Scale preset the run used.
    pub scale: String,
    /// Attack × pipeline accuracy/escalation table.
    pub attacks: Vec<AttackReport>,
    /// Evasion search per pipeline.
    pub evasion: Vec<EvasionReport>,
    /// Closed-loop drift detection and recovery.
    pub drift_loop: DriftLoopReport,
}

/// Per-feature standard deviation of a training matrix (population form;
/// floored at a small epsilon so degenerate features still drift).
fn per_feature_std(features: &Matrix) -> Vec<f64> {
    let (rows, cols) = (features.rows(), features.cols());
    let mut mean = vec![0.0; cols];
    for row in features.iter_rows() {
        for (m, x) in mean.iter_mut().zip(row) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= rows as f64;
    }
    let mut var = vec![0.0; cols];
    for row in features.iter_rows() {
        for ((v, m), x) in var.iter_mut().zip(&mean).zip(row) {
            let d = x - m;
            *v += d * d;
        }
    }
    var.iter()
        .map(|v| (v / rows as f64).sqrt().max(1e-9))
        .collect()
}

/// Mean of every entry of a matrix — used as the saturation rail so the
/// fault clips the informative upper tail of the signature.
fn global_mean(features: &Matrix) -> f64 {
    let mut sum = 0.0;
    let mut count = 0usize;
    for row in features.iter_rows() {
        sum += row.iter().sum::<f64>();
        count += row.len();
    }
    sum / count.max(1) as f64
}

/// Materialises `rows` records from a stream as a feature matrix + labels.
fn materialise<S>(stream: &mut S, rows: usize) -> (Matrix, Vec<Label>)
where
    S: CorpusStream + ?Sized,
{
    let mut features = Vec::with_capacity(rows);
    let mut labels = Vec::with_capacity(rows);
    while features.len() < rows {
        let record = stream.next().expect("corpus streams are infinite");
        features.push(record.features);
        labels.push(record.label);
    }
    let matrix = Matrix::from_rows(&features).expect("corpus streams yield uniform rows");
    (matrix, labels)
}

/// The drift attack used both for the batch table and the closed loop: a
/// shift of `drift_sigmas` training standard deviations per feature with
/// alternating signs, so correlated features are pushed apart rather than
/// translated together (which bagged trees largely shrug off).
fn drift_attack(stds: &[f64], sigmas: f64, schedule: DriftSchedule) -> GradualDrift {
    let shift: Vec<f64> = stds
        .iter()
        .enumerate()
        .map(|(j, s)| {
            let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
            sign * sigmas * s
        })
        .collect();
    GradualDrift::new(shift, schedule).expect("training stds are finite and non-empty")
}

/// Scores one materialised attack corpus with every pipeline.
fn score_attack(
    name: &str,
    corpus: &(Matrix, Vec<Label>),
    detectors: &[(PipelineKind, Box<dyn Detector>)],
) -> Vec<AttackReport> {
    let (features, labels) = corpus;
    detectors
        .iter()
        .map(|(kind, detector)| {
            let reports = detector
                .detect_batch(features)
                .expect("attack corpora are finite-valued");
            let breakdown = EscalationBreakdown::from_reports(&reports, labels);
            AttackReport {
                attack: name.to_string(),
                pipeline: kind.name().to_string(),
                rows: breakdown.rows,
                raw_accuracy: breakdown.raw_accuracy(),
                accepted_accuracy: breakdown.accepted_accuracy(),
                escalation_rate: breakdown.escalation_rate(),
                caught_fraction: breakdown.caught_fraction(),
            }
        })
        .collect()
}

const LOOP_ENDPOINT: &str = "robustness";

/// Drives the closed loop through the gradual-drift attack: calibrate on a
/// healthy stream, drift it, and record detection latency (in rows) and
/// whether the retrain→shadow→promote→verify cycle recovered.
fn run_drift_loop(
    config: &RobustnessConfig,
    builder: &DvfsCorpusBuilder,
    recipe: DetectorConfig,
    champion: Box<dyn Detector>,
    stds: &[f64],
) -> DriftLoopReport {
    let batch = config.loop_batch;
    let fleet = Arc::new(ShardedFleet::new(2));
    fleet
        .deploy(LOOP_ENDPOINT, champion)
        .expect("endpoint deploys");

    // Deliberately patient drift policy + small retrain window: a
    // hair-trigger lambda would fire while the sliding window still holds
    // mostly pre-drift rows, and a challenger fit on that mixture escalates
    // the post-drift stream almost as badly as the champion it replaces.
    // Waiting a few more windows costs detection latency (measured below)
    // but means the retrain window holds the stationary drifted
    // distribution, which is what recovery needs to learn.
    let mut loop_config = LoopConfig::new(recipe);
    loop_config.drift = DriftPolicy {
        calibration_windows: 3,
        min_window_rows: 8,
        lambda: 3.0,
        ..DriftPolicy::default()
    };
    loop_config.window_capacity = 6 * batch;
    loop_config.min_retrain_rows = 5 * batch;
    loop_config.shadow_rows = 2 * batch as u64;
    loop_config.verify_rows = 2 * batch;
    loop_config.regression_tolerance = 0.2;
    loop_config.gate = PromotionGate::ChallengerNoWorse { margin: 0.05 };
    loop_config.seed = config.seed ^ 0x100b;
    let mut supervisor = LoopSupervisor::new(Arc::clone(&fleet), LOOP_ENDPOINT, loop_config);

    // Serves one batch, feeds the supervisor's labelled window, and returns
    // the number of escalated rows.
    let serve = |stream: &mut dyn CorpusStream, supervisor: &mut LoopSupervisor| {
        let (features, labels) = materialise(stream, batch);
        let scored = fleet
            .score_batch(LOOP_ENDPOINT, &features)
            .expect("fleet serves");
        for (row, label) in features.iter_rows().zip(&labels) {
            supervisor.ingest(row, *label);
        }
        scored
            .iter()
            .filter(|s| s.report.decision.label().is_none())
            .count()
    };

    // ---- Healthy calibration ------------------------------------------
    let mut healthy = DvfsCorpusStream::known_apps(builder.clone(), config.seed ^ 0xca11b)
        .expect("known catalog is non-empty");
    let mut healthy_escalated = 0usize;
    let mut healthy_rows = 0usize;
    for _ in 0..5 {
        healthy_escalated += serve(&mut healthy, &mut supervisor);
        healthy_rows += batch;
        supervisor.tick().expect("healthy tick");
    }

    // ---- Drift the stream ---------------------------------------------
    // The ramp completes within one batch: the supervisor needs several
    // windows to detect the drift anyway, and the retrain window must be
    // dominated by the *stationary* post-ramp distribution for the
    // challenger to have something learnable to recover onto.
    let drifted_source = DvfsCorpusStream::known_apps(builder.clone(), config.seed ^ 0xd41f7)
        .expect("known catalog is non-empty");
    let mut drifted = drift_attack(stds, config.drift_sigmas, DriftSchedule::linear(batch))
        .apply(drifted_source)
        .expect("shift width matches the stream");

    let mut rows_to_detection = 0usize;
    let mut drift_detected = false;
    let mut promoted = false;
    let mut recovered = false;
    let mut drifted_escalated = 0usize;
    let mut drifted_rows = 0usize;
    let mut recovered_escalated = 0usize;
    let mut recovered_rows = 0usize;
    for _ in 0..48 {
        let escalated = serve(&mut drifted, &mut supervisor);
        if promoted {
            recovered_escalated += escalated;
            recovered_rows += batch;
        } else {
            drifted_escalated += escalated;
            drifted_rows += batch;
        }
        match supervisor.tick() {
            Ok(_) => {}
            Err(hmd_loop::LoopError::WindowStarved { .. }) => {}
            Err(other) => panic!("supervisor tick failed: {other}"),
        }
        if !drift_detected
            && supervisor
                .events()
                .iter()
                .any(|e| matches!(e, LoopEvent::DriftDetected { .. }))
        {
            drift_detected = true;
            rows_to_detection = drifted_rows;
        }
        if !promoted
            && supervisor
                .events()
                .iter()
                .any(|e| matches!(e, LoopEvent::Promoted { .. }))
        {
            promoted = true;
        }
        if supervisor
            .events()
            .iter()
            .any(|e| matches!(e, LoopEvent::Recovered { .. }))
        {
            recovered = true;
            if recovered_rows >= 2 * batch {
                break;
            }
        }
    }

    let rate = |escalated: usize, rows: usize| {
        if rows == 0 {
            0.0
        } else {
            escalated as f64 / rows as f64
        }
    };
    DriftLoopReport {
        batch_rows: batch,
        drift_detected,
        rows_to_detection,
        promoted,
        recovered,
        pre_drift_escalation: rate(healthy_escalated, healthy_rows),
        drifted_escalation: rate(drifted_escalated, drifted_rows),
        recovered_escalation: rate(recovered_escalated, recovered_rows),
    }
}

/// Runs the full robustness evaluation.
pub fn evaluate(config: &RobustnessConfig) -> RobustnessReport {
    let builder = config.scale.dvfs_builder();
    let split = builder
        .build_split(config.seed)
        .expect("DVFS corpus generation is infallible for valid builders");
    let stds = per_feature_std(split.train.features());
    let rail = global_mean(split.train.features());

    let detectors: Vec<(PipelineKind, Box<dyn Detector>)> = PipelineKind::all()
        .into_iter()
        .map(|kind| {
            let detector = kind
                .config(config.scale)
                .fit(&split.train, config.seed ^ 0x5eed)
                .expect("RF pipelines train on the DVFS corpus");
            (kind, detector)
        })
        .collect();

    // ---- Attack corpora ------------------------------------------------
    let stream = |salt: u64| {
        DvfsCorpusStream::known_apps(builder.clone(), config.seed ^ salt)
            .expect("known catalog is non-empty")
    };
    let rows = config.rows_per_attack;
    let mut attacks = Vec::new();
    let baseline = materialise(&mut stream(0xba5e), rows);
    attacks.extend(score_attack("baseline", &baseline, &detectors));

    let mut mimicry = Mimicry::from_benign_rows(&split.train, config.mimicry_budget)
        .expect("training set has benign rows")
        .apply(stream(0x3113))
        .expect("template width matches the stream");
    attacks.extend(score_attack(
        "mimicry",
        &materialise(&mut mimicry, rows),
        &detectors,
    ));

    let mut drifting = drift_attack(&stds, config.drift_sigmas, DriftSchedule::linear(rows / 2))
        .apply(stream(0xd41f))
        .expect("shift width matches the stream");
    attacks.extend(score_attack(
        "gradual_drift",
        &materialise(&mut drifting, rows),
        &detectors,
    ));

    for (name, fault) in [
        ("sensor_dropout", SensorFault::Dropout),
        ("sensor_saturation", SensorFault::Saturation { level: rail }),
        ("sensor_stuck_at", SensorFault::StuckAt),
    ] {
        let mut faulty = SensorFaultStream::all_channels(
            stream(0xfa017),
            fault,
            config.fault_probability,
            config.seed ^ 0x5e2501,
        )
        .expect("fault parameters are valid");
        attacks.extend(score_attack(
            name,
            &materialise(&mut faulty, rows),
            &detectors,
        ));
    }

    // ---- Bounded evasion ------------------------------------------------
    let budget = EvasionBudget::new(config.evasion_linf)
        .expect("configured radius is finite")
        .with_passes(config.evasion_passes);
    let malware_rows: Vec<Vec<f64>> = baseline
        .0
        .iter_rows()
        .zip(&baseline.1)
        .filter(|(_, label)| **label == Label::Malware)
        .map(|(row, _)| row.to_vec())
        .take(config.evasion_rows)
        .collect();
    let evasion = detectors
        .iter()
        .map(|(kind, detector)| {
            let (summary, _) = evade_batch(detector.as_ref(), &malware_rows, &budget)
                .expect("evasion probes are finite-valued");
            EvasionReport {
                pipeline: kind.name().to_string(),
                attacked: summary.attacked,
                flipped_predictions: summary.flipped_predictions,
                escalated_evasions: summary.escalated_evasions,
                accepted_evasions: summary.accepted_evasions,
                flip_rate: summary.flip_rate(),
                caught_fraction: summary.caught_fraction(),
                accepted_rate: summary.accepted_rate(),
            }
        })
        .collect();

    // ---- Closed-loop drift recovery -------------------------------------
    let recipe = PipelineKind::Trusted.config(config.scale);
    let champion = recipe
        .fit(&split.train, config.seed ^ 0x10071)
        .expect("loop champion trains");
    let drift_loop = run_drift_loop(config, &builder, recipe, champion, &stds);

    RobustnessReport {
        scale: config.scale.name().to_string(),
        attacks,
        evasion,
        drift_loop,
    }
}

/// Renders the report as the paper-style ASCII figure the bench prints.
pub fn render(report: &RobustnessReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "robustness evaluation (scale: {})\n\n",
        report.scale
    ));
    out.push_str(
        "attack              pipeline   raw-acc  acc-acc  escal   caught\n\
         ------------------  ---------  -------  -------  ------  ------\n",
    );
    for row in &report.attacks {
        out.push_str(&format!(
            "{:<18}  {:<9}  {:>6.3}   {:>6.3}   {:>5.3}   {:>5.3}\n",
            row.attack,
            row.pipeline,
            row.raw_accuracy,
            row.accepted_accuracy,
            row.escalation_rate,
            row.caught_fraction
        ));
    }
    out.push_str(
        "\nevasion             attacked  flipped  escalated  accepted  caught\n\
         ------------------  --------  -------  ---------  --------  ------\n",
    );
    for row in &report.evasion {
        out.push_str(&format!(
            "{:<18}  {:>8}  {:>7}  {:>9}  {:>8}  {:>5.3}\n",
            row.pipeline,
            row.attacked,
            row.flipped_predictions,
            row.escalated_evasions,
            row.accepted_evasions,
            row.caught_fraction
        ));
    }
    let dl = &report.drift_loop;
    out.push_str(&format!(
        "\nclosed loop under gradual drift ({}-row batches)\n\
         detected: {} after {} drifted rows   promoted: {}   recovered: {}\n\
         escalation: healthy {:.3} -> drifted {:.3} -> recovered {:.3}\n",
        dl.batch_rows,
        dl.drift_detected,
        dl.rows_to_detection,
        dl.promoted,
        dl.recovered,
        dl.pre_drift_escalation,
        dl.drifted_escalation,
        dl.recovered_escalation,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> RobustnessConfig {
        RobustnessConfig {
            rows_per_attack: 48,
            evasion_rows: 4,
            ..RobustnessConfig::quick()
        }
    }

    #[test]
    fn evaluation_covers_every_attack_and_pipeline() {
        let report = evaluate(&tiny_config());
        assert_eq!(report.attacks.len(), 6 * 3);
        for name in [
            "baseline",
            "mimicry",
            "gradual_drift",
            "sensor_dropout",
            "sensor_saturation",
            "sensor_stuck_at",
        ] {
            assert_eq!(
                report.attacks.iter().filter(|r| r.attack == name).count(),
                3,
                "attack {name} missing pipelines"
            );
        }
        assert_eq!(report.evasion.len(), 3);
        for row in &report.attacks {
            assert_eq!(row.rows, 48);
            assert!((0.0..=1.0).contains(&row.raw_accuracy));
            assert!((0.0..=1.0).contains(&row.escalation_rate));
        }
        // The clean baseline must be easy for the trusted pipeline.
        let baseline_trusted = report
            .attacks
            .iter()
            .find(|r| r.attack == "baseline" && r.pipeline == "trusted")
            .expect("baseline row");
        assert!(
            baseline_trusted.raw_accuracy > 0.8,
            "baseline accuracy {:.3} too low",
            baseline_trusted.raw_accuracy
        );
        // The untrusted pipeline never escalates, by construction.
        for row in report.attacks.iter().filter(|r| r.pipeline == "untrusted") {
            assert_eq!(
                row.escalation_rate, 0.0,
                "untrusted escalated on {}",
                row.attack
            );
        }
        let render = render(&report);
        assert!(render.contains("gradual_drift"));
        assert!(render.contains("closed loop"));
    }

    #[test]
    fn evaluation_is_seed_deterministic() {
        let a = evaluate(&tiny_config());
        let b = evaluate(&tiny_config());
        assert_eq!(a, b);
    }

    #[test]
    fn drift_loop_detects_and_recovers() {
        let report = evaluate(&tiny_config());
        let dl = &report.drift_loop;
        assert!(dl.drift_detected, "gradual drift never flagged");
        assert!(dl.rows_to_detection > 0);
        assert!(dl.promoted, "challenger never promoted");
        assert!(dl.recovered, "loop never recovered");
        assert!(
            dl.drifted_escalation > dl.pre_drift_escalation,
            "drift did not raise the served escalation rate ({:.3} vs {:.3})",
            dl.drifted_escalation,
            dl.pre_drift_escalation
        );
        assert!(
            dl.recovered_escalation < dl.drifted_escalation,
            "promotion did not lower the escalation rate ({:.3} vs {:.3})",
            dl.recovered_escalation,
            dl.drifted_escalation
        );
    }
}
