//! Figure 9a: average prediction entropy as a function of the number of base
//! classifiers in the ensemble (the estimate stabilises beyond ~20).

use crate::pipelines::forest_params;
use crate::scale::ExperimentScale;
use hmd_core::trusted::TrustedHmdBuilder;
use serde::{Deserialize, Serialize};

/// One point of the Fig. 9a curves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnsembleSizePoint {
    /// Number of base classifiers.
    pub num_estimators: usize,
    /// Average entropy over the known test set.
    pub known_avg_entropy: f64,
    /// Average entropy over the unknown set.
    pub unknown_avg_entropy: f64,
}

/// The Fig. 9a data series (RF ensemble on the DVFS dataset).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnsembleSizeFigure {
    /// Curve points in ascending ensemble size.
    pub points: Vec<EnsembleSizePoint>,
}

impl EnsembleSizeFigure {
    /// Smallest ensemble size after which the known-data average entropy
    /// changes by less than `tolerance` between consecutive sweep points
    /// (the paper reports stabilisation around 20 base classifiers).
    pub fn stabilisation_size(&self, tolerance: f64) -> Option<usize> {
        for pair in self.points.windows(2) {
            let delta = (pair[1].unknown_avg_entropy - pair[0].unknown_avg_entropy).abs();
            if delta < tolerance {
                return Some(pair[1].num_estimators);
            }
        }
        None
    }
}

/// Regenerates Fig. 9a: a single large RF bagging ensemble is trained once
/// and truncated to each requested size, exactly like varying sklearn's
/// `n_estimators`.
pub fn fig9a(scale: ExperimentScale, sizes: &[usize], seed: u64) -> EnsembleSizeFigure {
    let split = scale
        .dvfs_builder()
        .build_split(seed)
        .expect("DVFS corpus generation");
    let max_size = sizes.iter().copied().max().unwrap_or(25).max(1);
    let hmd = TrustedHmdBuilder::new(forest_params())
        .with_num_estimators(max_size)
        .fit(&split.train, seed ^ 0xabcd)
        .expect("RF ensemble trains on DVFS data");

    // Preprocess once, then reuse the estimator's truncation sweep (the
    // truncated ensembles must see the same feature space they were trained
    // on).
    let estimator = hmd.estimator();
    let scaled_known = hmd
        .preprocess_dataset(&split.test_known)
        .expect("known test set matches the training feature space");
    let scaled_unknown = hmd
        .preprocess_dataset(&split.unknown)
        .expect("unknown set matches the training feature space");
    let known_curve = estimator.ensemble_size_sweep(&scaled_known, sizes);
    let unknown_curve = estimator.ensemble_size_sweep(&scaled_unknown, sizes);

    let points = known_curve
        .into_iter()
        .zip(unknown_curve)
        .map(|((size, known_avg), (_, unknown_avg))| EnsembleSizePoint {
            num_estimators: size,
            known_avg_entropy: known_avg,
            unknown_avg_entropy: unknown_avg,
        })
        .collect();
    EnsembleSizeFigure { points }
}

/// Renders the curve as a text table.
pub fn render(figure: &EnsembleSizeFigure) -> String {
    let mut out = String::new();
    out.push_str("Average entropy vs number of base classifiers (Fig. 9a)\n");
    out.push_str(&format!(
        "{:>12} {:>12} {:>14}\n",
        "n_estimators", "known avg H", "unknown avg H"
    ));
    for p in &figure.points {
        out.push_str(&format!(
            "{:>12} {:>12.3} {:>14.3}\n",
            p.num_estimators, p.known_avg_entropy, p.unknown_avg_entropy
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_smoke_curve_is_complete_and_stabilises() {
        let sizes = [1, 5, 10, 20, 30];
        let figure = fig9a(ExperimentScale::Smoke, &sizes, 3);
        assert_eq!(figure.points.len(), sizes.len());
        // Unknown entropy should exceed known entropy once the ensemble is
        // large enough to express disagreement.
        let last = figure.points.last().unwrap();
        assert!(last.unknown_avg_entropy >= last.known_avg_entropy);
        // A single-model ensemble cannot express any vote disagreement.
        assert_eq!(figure.points[0].known_avg_entropy, 0.0);
        assert!(figure.stabilisation_size(0.5).is_some());
        let text = render(&figure);
        assert!(text.contains("n_estimators"));
    }
}
