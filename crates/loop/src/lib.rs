//! Closed-loop serving for the HMD workspace: drift detection, shadow
//! champion/challenger deployment, and automated retrain.
//!
//! [`hmd_serve`] keeps a fleet of detectors serving; this crate keeps them
//! *current*. The paper's deployment premise — a detector trained offline
//! watching live traffic and escalating what it cannot judge — only works
//! while the traffic resembles the training distribution. When it stops
//! resembling it, the serving layer's own uncertainty statistics say so:
//! escalation rates climb, entropy creeps. This crate closes that loop:
//!
//! * [`DriftDetector`] — Page–Hinkley cumulative tests over the fleet's
//!   reset-on-read window snapshots
//!   ([`ShardedFleet::window_stats`](hmd_serve::ShardedFleet::window_stats)),
//!   watching escalation rate and mean entropy with configurable
//!   [`DriftPolicy`] thresholds and a typed [`DriftVerdict`]
//!   (`Stable`/`Warning`/`Drifted`).
//! * **Shadow deployment** — the serving layer's challenger machinery
//!   ([`ShardedFleet::deploy_shadow`](hmd_serve::ShardedFleet::deploy_shadow)):
//!   a challenger scores exactly the micro-batch tiles the champion serves,
//!   into its own isolated
//!   [`MonitorStats`](hmd_core::detector::MonitorStats); callers only ever
//!   receive champion reports, so served results are bit-identical to a
//!   shadowless fleet *by construction*, and promotion decisions are made
//!   on same-rows statistics.
//! * [`LoopSupervisor`] — the caller-driven state machine tying them
//!   together: `Monitoring` → (drift) retrain on a labelled sliding window
//!   via the fastfit path
//!   ([`DetectorConfig::refit_on_window`](hmd_core::detector::DetectorConfig::refit_on_window))
//!   → `Shadowing` → (gate) promote → `Verifying` → recover, or roll back
//!   automatically on regression. Every transition lands in an auditable
//!   [`LoopEvent`] log.
//!
//! See the "Closed-loop serving" section of `ARCHITECTURE.md` at the
//! repository root for the state-machine diagram and the shadow-isolation
//! invariant, and `examples/closed_loop.rs` for the loop running end to end
//! on simulated DVFS telemetry.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod drift;
mod supervisor;

pub use drift::{DriftBaseline, DriftDetector, DriftPolicy, DriftVerdict};
pub use supervisor::{LoopConfig, LoopError, LoopEvent, LoopState, LoopSupervisor, PromotionGate};
