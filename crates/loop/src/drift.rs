//! Drift detection over the monitor stream.
//!
//! The paper's deployment story assumes the input distribution moves: new
//! applications ship, malware families evolve, and a detector trained on
//! last month's workload mix starts escalating traffic it used to score
//! confidently. This module turns the serving fleet's
//! [`MonitorStats`](hmd_core::detector::MonitorStats) window snapshots into
//! a typed [`DriftVerdict`] using Page–Hinkley cumulative statistics — the
//! classic sequential change-point test: cheap (a handful of f64 ops per
//! window snapshot), memoryless beyond its running sums, and tunable
//! through an explicit [`DriftPolicy`].
//!
//! Two channels are watched, because the two failure modes the paper cares
//! about surface differently:
//!
//! * **escalation rate** — the fraction of windows the detector hands to
//!   the trusted model. Out-of-distribution traffic (the zero-day proxy)
//!   raises predictive entropy past the threshold, so the escalation rate
//!   is the most direct drift signal the serving path already computes.
//! * **mean entropy** — a softer precursor: entropy can creep upward while
//!   still below the escalation threshold, flagging drift *before* the
//!   escalation budget is blown.
//!
//! Either channel crossing its Page–Hinkley threshold yields
//! [`DriftVerdict::Drifted`]; the warning fraction of the threshold yields
//! [`DriftVerdict::Warning`] first, so operators (and the
//! [`LoopSupervisor`](crate::LoopSupervisor)) get a two-stage signal.

use hmd_core::detector::MonitorStats;

/// Thresholds and calibration for [`DriftDetector`].
///
/// The defaults suit escalation-rate/mean-entropy streams (both live in
/// `[0, 1]`): drift fires once a channel's Page–Hinkley statistic — the
/// cumulative excess of the observed value over its calibrated baseline,
/// beyond the `delta` slack — exceeds `lambda`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPolicy {
    /// Slack subtracted from every deviation before it accumulates: shifts
    /// smaller than `delta` per window never trigger, no matter how long
    /// they persist.
    pub delta: f64,
    /// Page–Hinkley threshold: a channel is drifted once its cumulative
    /// statistic exceeds this. With values in `[0, 1]`, `lambda = 0.6`
    /// means e.g. three consecutive snapshots escalating 20 points above
    /// baseline (or any equivalent area under the deviation curve).
    pub lambda: f64,
    /// Fraction of `lambda` at which [`DriftVerdict::Warning`] is reported.
    pub warning_ratio: f64,
    /// Number of window snapshots used to calibrate each channel's baseline
    /// before the test arms. During calibration the verdict is `Stable`.
    pub calibration_windows: usize,
    /// Window snapshots with fewer rows than this are ignored entirely
    /// (they would make rate estimates too noisy to accumulate).
    pub min_window_rows: usize,
}

impl Default for DriftPolicy {
    fn default() -> DriftPolicy {
        DriftPolicy {
            delta: 0.02,
            lambda: 0.6,
            warning_ratio: 0.5,
            calibration_windows: 3,
            min_window_rows: 8,
        }
    }
}

/// The drift detector's current judgement of the monitor stream.
///
/// Ordered by severity (`Stable < Warning < Drifted`), so callers can
/// `max()` verdicts across channels or detectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DriftVerdict {
    /// Both channels within their calibrated baselines (or still
    /// calibrating).
    Stable,
    /// A channel's statistic has crossed the warning fraction of `lambda`.
    Warning,
    /// A channel's statistic has crossed `lambda`. Sticky: the verdict
    /// stays `Drifted` until [`DriftDetector::reset`].
    Drifted,
}

/// Calibrated per-channel baselines, exposed for promotion/verify gating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftBaseline {
    /// Mean escalation rate over the calibration snapshots.
    pub escalation_rate: f64,
    /// Mean of the per-snapshot mean entropies over calibration.
    pub mean_entropy: f64,
}

/// One Page–Hinkley channel: a one-sided *increase* test with a baseline
/// fixed at calibration time (deterministic, unlike the running-mean
/// variant, which matters for seeded tests).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct Channel {
    /// Sum of calibration observations (baseline numerator).
    calibration_sum: f64,
    /// Calibration observations seen so far.
    calibrated: usize,
    /// Baseline mean, fixed once calibration completes.
    mu0: f64,
    /// Cumulative statistic `m_t = Σ (x_i − mu0 − delta)`.
    m: f64,
    /// Running minimum of `m_t`; the test statistic is `m − m_min`.
    m_min: f64,
}

impl Channel {
    /// Feeds one observation; returns the current test statistic, or 0.0
    /// while still calibrating.
    fn observe(&mut self, x: f64, policy: &DriftPolicy) -> f64 {
        if self.calibrated < policy.calibration_windows {
            self.calibration_sum += x;
            self.calibrated += 1;
            if self.calibrated == policy.calibration_windows {
                self.mu0 = self.calibration_sum / self.calibrated as f64;
            }
            return 0.0;
        }
        self.m += x - self.mu0 - policy.delta;
        self.m_min = self.m_min.min(self.m);
        self.m - self.m_min
    }

    fn is_calibrated(&self, policy: &DriftPolicy) -> bool {
        self.calibrated >= policy.calibration_windows
    }
}

/// A two-channel Page–Hinkley drift detector over
/// [`MonitorStats`](hmd_core::detector::MonitorStats) window snapshots.
///
/// Feed it the reset-on-read window snapshots the serving layer produces
/// (e.g. [`ShardedFleet::window_stats`](hmd_serve::ShardedFleet::window_stats))
/// at whatever cadence suits the deployment; it calibrates a baseline from
/// the first [`DriftPolicy::calibration_windows`] snapshots and then
/// accumulates deviations.
///
/// # Example
///
/// ```
/// use hmd_loop::{DriftDetector, DriftPolicy, DriftVerdict};
/// use hmd_core::detector::MonitorStats;
/// # use hmd_core::trusted::Decision;
/// # use hmd_core::{DetectionReport, UncertainPrediction};
/// # use hmd_data::Label;
/// # fn window(escalated: usize, total: usize) -> MonitorStats {
/// #     let mut stats = MonitorStats::default();
/// #     for i in 0..total {
/// #         let escalate = i < escalated;
/// #         stats.record(&DetectionReport {
/// #             prediction: UncertainPrediction {
/// #                 label: Label::Benign,
/// #                 malware_vote_fraction: 0.0,
/// #                 entropy: if escalate { 0.9 } else { 0.1 },
/// #                 num_estimators: 1,
/// #             },
/// #             decision: if escalate { Decision::Escalate } else { Decision::Accept(Label::Benign) },
/// #         });
/// #     }
/// #     stats.window_snapshot()
/// # }
///
/// let mut detector = DriftDetector::new(DriftPolicy::default());
/// // Calibrate on a healthy stream: ~10 % escalation.
/// for _ in 0..3 {
///     assert_eq!(detector.observe(&window(2, 20)), DriftVerdict::Stable);
/// }
/// // A sustained jump to 80 % escalation crosses the threshold.
/// let mut verdict = DriftVerdict::Stable;
/// for _ in 0..3 {
///     verdict = detector.observe(&window(16, 20));
/// }
/// assert_eq!(verdict, DriftVerdict::Drifted);
/// ```
#[derive(Debug, Clone)]
pub struct DriftDetector {
    policy: DriftPolicy,
    escalation: Channel,
    entropy: Channel,
    verdict: DriftVerdict,
}

impl DriftDetector {
    /// Creates a detector with the given policy, in calibration state.
    pub fn new(policy: DriftPolicy) -> DriftDetector {
        DriftDetector {
            policy,
            escalation: Channel::default(),
            entropy: Channel::default(),
            verdict: DriftVerdict::Stable,
        }
    }

    /// The policy this detector runs under.
    pub fn policy(&self) -> &DriftPolicy {
        &self.policy
    }

    /// The current verdict without feeding a new observation.
    pub fn verdict(&self) -> DriftVerdict {
        self.verdict
    }

    /// The calibrated baselines, once calibration has completed.
    pub fn baseline(&self) -> Option<DriftBaseline> {
        if self.escalation.is_calibrated(&self.policy) {
            Some(DriftBaseline {
                escalation_rate: self.escalation.mu0,
                mean_entropy: self.entropy.mu0,
            })
        } else {
            None
        }
    }

    /// Feeds one window snapshot and returns the updated verdict.
    ///
    /// Snapshots with fewer than [`DriftPolicy::min_window_rows`] rows are
    /// ignored (the current verdict is returned unchanged). Once `Drifted`
    /// is reached it is sticky until [`DriftDetector::reset`] — drift does
    /// not "heal" by averaging back down, because the stream that caused it
    /// has already been judged out-of-distribution.
    pub fn observe(&mut self, window: &MonitorStats) -> DriftVerdict {
        if window.windows < self.policy.min_window_rows {
            return self.verdict;
        }
        let escalation_score = self
            .escalation
            .observe(window.escalation_rate(), &self.policy);
        let entropy_score = self.entropy.observe(window.mean_entropy(), &self.policy);
        if self.verdict == DriftVerdict::Drifted {
            return self.verdict;
        }
        let score = escalation_score.max(entropy_score);
        self.verdict = if score > self.policy.lambda {
            DriftVerdict::Drifted
        } else if score > self.policy.warning_ratio * self.policy.lambda {
            DriftVerdict::Warning
        } else {
            DriftVerdict::Stable
        };
        self.verdict
    }

    /// Returns the detector to its initial state: verdict `Stable`, both
    /// channels cleared, and a fresh calibration phase (a promoted
    /// challenger has a different healthy baseline than the model it
    /// replaced).
    pub fn reset(&mut self) {
        self.escalation = Channel::default();
        self.entropy = Channel::default();
        self.verdict = DriftVerdict::Stable;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_core::trusted::Decision;
    use hmd_core::{DetectionReport, UncertainPrediction};
    use hmd_data::Label;

    fn report(entropy: f64, escalate: bool) -> DetectionReport {
        DetectionReport {
            prediction: UncertainPrediction {
                label: Label::Benign,
                malware_vote_fraction: 0.0,
                entropy,
                num_estimators: 1,
            },
            decision: if escalate {
                Decision::Escalate
            } else {
                Decision::Accept(Label::Benign)
            },
        }
    }

    /// A window snapshot with `escalated` of `total` rows escalated at the
    /// given entropy, the rest accepted at low entropy.
    fn window(escalated: usize, total: usize, hot_entropy: f64) -> MonitorStats {
        let mut stats = MonitorStats::default();
        for i in 0..total {
            stats.record(&report(
                if i < escalated { hot_entropy } else { 0.1 },
                i < escalated,
            ));
        }
        stats.window_snapshot()
    }

    #[test]
    fn stable_stream_stays_stable() {
        let mut detector = DriftDetector::new(DriftPolicy::default());
        for _ in 0..50 {
            assert_eq!(detector.observe(&window(2, 20, 0.9)), DriftVerdict::Stable);
        }
        let baseline = detector.baseline().expect("calibrated");
        assert!((baseline.escalation_rate - 0.1).abs() < 1e-12);
    }

    #[test]
    fn step_shift_in_escalation_rate_is_detected_with_warning_first() {
        let mut detector = DriftDetector::new(DriftPolicy::default());
        for _ in 0..5 {
            assert_eq!(detector.observe(&window(2, 20, 0.9)), DriftVerdict::Stable);
        }
        // Escalation jumps 10 % -> 60 %: +0.48 accumulates per snapshot, so
        // the first post-shift snapshot warns and the second crosses lambda.
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.push(detector.observe(&window(12, 20, 0.9)));
        }
        assert_eq!(
            seen,
            vec![
                DriftVerdict::Warning,
                DriftVerdict::Drifted,
                DriftVerdict::Drifted
            ]
        );
        // Sticky: healthy snapshots do not clear it.
        assert_eq!(detector.observe(&window(2, 20, 0.9)), DriftVerdict::Drifted);
    }

    #[test]
    fn entropy_creep_without_escalations_is_detected() {
        // Escalation rate constant at zero; only the accepted windows'
        // entropy creeps upward, still below the escalation threshold.
        let creeping = |entropy: f64| {
            let mut stats = MonitorStats::default();
            for _ in 0..20 {
                stats.record(&report(entropy, false));
            }
            stats.window_snapshot()
        };
        let mut detector = DriftDetector::new(DriftPolicy::default());
        for _ in 0..3 {
            assert_eq!(detector.observe(&creeping(0.10)), DriftVerdict::Stable);
        }
        let mut verdict = DriftVerdict::Stable;
        for _ in 0..4 {
            verdict = detector.observe(&creeping(0.45));
        }
        assert_eq!(verdict, DriftVerdict::Drifted);
    }

    #[test]
    fn small_windows_are_ignored() {
        let mut detector = DriftDetector::new(DriftPolicy::default());
        for _ in 0..3 {
            detector.observe(&window(2, 20, 0.9));
        }
        // A tiny, wildly-escalating window must not advance the statistic.
        for _ in 0..100 {
            assert_eq!(detector.observe(&window(4, 4, 0.9)), DriftVerdict::Stable);
        }
    }

    #[test]
    fn zero_min_window_rows_admits_empty_snapshots_without_poisoning() {
        // With the row floor removed, even empty reset-on-read snapshots
        // (both rates degrade to 0.0, never NaN) flow into calibration and
        // accumulation. They must not corrupt the statistic: an empty
        // window deviates by -delta and the running minimum absorbs it.
        let policy = DriftPolicy {
            min_window_rows: 0,
            ..DriftPolicy::default()
        };
        let mut detector = DriftDetector::new(policy);
        for _ in 0..3 {
            assert_eq!(
                detector.observe(&MonitorStats::default()),
                DriftVerdict::Stable
            );
        }
        // Calibrated against the all-empty baseline: zeros, not NaN.
        let baseline = detector.baseline().expect("calibrated on empty windows");
        assert_eq!(baseline.escalation_rate, 0.0);
        assert_eq!(baseline.mean_entropy, 0.0);
        for _ in 0..50 {
            assert_eq!(
                detector.observe(&MonitorStats::default()),
                DriftVerdict::Stable
            );
        }
        // The test still arms: a real escalation burst crosses lambda.
        let mut verdict = DriftVerdict::Stable;
        for _ in 0..3 {
            verdict = detector.observe(&window(16, 20, 0.9));
        }
        assert_eq!(verdict, DriftVerdict::Drifted);
    }

    #[test]
    fn single_row_windows_calibrate_and_detect_with_min_window_rows_one() {
        // min_window_rows = 1 admits the noisiest possible estimates: each
        // snapshot's escalation rate is exactly 0 or 1. Calibrating on
        // accepted singletons then streaming escalated singletons must
        // still drift — each one accumulates ~(1 - delta).
        let policy = DriftPolicy {
            min_window_rows: 1,
            ..DriftPolicy::default()
        };
        let mut detector = DriftDetector::new(policy);
        for _ in 0..3 {
            assert_eq!(detector.observe(&window(0, 1, 0.9)), DriftVerdict::Stable);
        }
        assert_eq!(
            detector.baseline().expect("calibrated").escalation_rate,
            0.0
        );
        // One escalated singleton exceeds lambda = 0.6 on its own.
        assert_eq!(detector.observe(&window(1, 1, 0.9)), DriftVerdict::Drifted);
    }

    #[test]
    fn zero_calibration_windows_arms_immediately_against_a_zero_baseline() {
        // calibration_windows = 0 skips calibration entirely: the baseline
        // is reported immediately (both channels at their zero defaults)
        // and every observation accumulates against it. A stream that
        // would be perfectly healthy under a calibrated baseline therefore
        // reads as sustained positive deviation and eventually drifts —
        // the footgun this policy encodes, pinned down as a regression.
        let policy = DriftPolicy {
            calibration_windows: 0,
            ..DriftPolicy::default()
        };
        let mut detector = DriftDetector::new(policy);
        let baseline = detector.baseline().expect("armed before any observation");
        assert_eq!(baseline.escalation_rate, 0.0);
        assert_eq!(baseline.mean_entropy, 0.0);

        // 10 % escalation accumulates 0.08 per snapshot against mu0 = 0;
        // lambda = 0.6 is crossed on the 8th snapshot.
        let mut verdicts = Vec::new();
        for _ in 0..8 {
            verdicts.push(detector.observe(&window(2, 20, 0.9)));
        }
        assert_eq!(verdicts[0], DriftVerdict::Stable);
        assert_eq!(*verdicts.last().unwrap(), DriftVerdict::Drifted);
        assert!(
            verdicts.contains(&DriftVerdict::Warning),
            "two-stage signal skipped the warning: {verdicts:?}"
        );
    }

    #[test]
    fn identical_windows_never_accumulate_drift() {
        // A perfectly stationary stream: every post-calibration snapshot
        // equals the calibration mean exactly, so each deviation is -delta,
        // the cumulative sum only falls, and the test statistic
        // (m - m_min) stays pinned at zero forever — no false positive at
        // any horizon, for any escalation level.
        for escalated in [0, 5, 20] {
            let mut detector = DriftDetector::new(DriftPolicy::default());
            for _ in 0..1000 {
                assert_eq!(
                    detector.observe(&window(escalated, 20, 0.9)),
                    DriftVerdict::Stable,
                    "identical windows ({escalated}/20 escalated) drifted"
                );
            }
        }
    }

    #[test]
    fn reset_clears_verdict_and_recalibrates() {
        let mut detector = DriftDetector::new(DriftPolicy::default());
        for _ in 0..3 {
            detector.observe(&window(2, 20, 0.9));
        }
        for _ in 0..3 {
            detector.observe(&window(16, 20, 0.9));
        }
        assert_eq!(detector.verdict(), DriftVerdict::Drifted);

        detector.reset();
        assert_eq!(detector.verdict(), DriftVerdict::Stable);
        assert!(detector.baseline().is_none());
        // Recalibrates against the *new* baseline: a steady 60 % escalation
        // stream is now "healthy" and stays stable.
        for _ in 0..20 {
            assert_eq!(detector.observe(&window(12, 20, 0.9)), DriftVerdict::Stable);
        }
    }
}
