//! The closed-loop supervisor: drift → retrain → shadow → promote → verify.
//!
//! [`LoopSupervisor`] is the state machine that closes the online loop over
//! a [`ShardedFleet`] endpoint. It is deliberately *caller-driven*: the
//! deployment decides when to call [`LoopSupervisor::tick`] (every N served
//! rows, on a timer, from a cron job), and every transition is recorded in
//! an auditable [`LoopEvent`] log. The supervisor owns no threads and holds
//! no locks across ticks, so it composes with whatever scheduling the
//! serving process already has.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use hmd_core::detector::{DetectorConfig, MonitorStats};
use hmd_data::{DataError, Label, Matrix};
use hmd_ml::MlError;
use hmd_serve::{FleetError, ShardedFleet};

use crate::drift::{DriftDetector, DriftPolicy, DriftVerdict};

/// Everything that can interrupt a loop tick.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LoopError {
    /// The serving fleet rejected an operation.
    Fleet(FleetError),
    /// Retraining the challenger failed.
    Ml(MlError),
    /// Drift was detected but the labelled sliding window has fewer rows
    /// than [`LoopConfig::min_retrain_rows`] — ingest more labelled rows
    /// and tick again.
    WindowStarved {
        /// Labelled rows currently buffered.
        have: usize,
        /// Rows required before a retrain is attempted.
        need: usize,
    },
    /// The shadow challenger disappeared mid-deployment (cleared through
    /// the fleet API behind the supervisor's back).
    ShadowVanished {
        /// The endpoint whose shadow vanished.
        endpoint: String,
    },
}

impl fmt::Display for LoopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoopError::Fleet(e) => write!(f, "fleet operation failed: {e}"),
            LoopError::Ml(e) => write!(f, "challenger retrain failed: {e}"),
            LoopError::WindowStarved { have, need } => write!(
                f,
                "drift detected but only {have} labelled rows buffered ({need} required to retrain)"
            ),
            LoopError::ShadowVanished { endpoint } => write!(
                f,
                "shadow challenger on endpoint `{endpoint}` vanished mid-deployment"
            ),
        }
    }
}

impl std::error::Error for LoopError {}

impl From<FleetError> for LoopError {
    fn from(e: FleetError) -> LoopError {
        LoopError::Fleet(e)
    }
}

impl From<MlError> for LoopError {
    fn from(e: MlError) -> LoopError {
        LoopError::Ml(e)
    }
}

impl From<DataError> for LoopError {
    fn from(e: DataError) -> LoopError {
        LoopError::Ml(MlError::from(e))
    }
}

/// Where the loop currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopState {
    /// Watching window snapshots for drift; no challenger in flight.
    Monitoring,
    /// A retrained challenger is shadow-scoring served traffic.
    Shadowing,
    /// A challenger was promoted; watching the new champion for regression.
    Verifying,
}

/// How a shadow challenger earns promotion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PromotionGate {
    /// Promote only if the challenger's shadow escalation rate is no worse
    /// than the champion's over the same shadow period, plus `margin`.
    /// The rate is measured on the *same served rows* (the shadow scores
    /// exactly the tiles the champion served), so the comparison is
    /// apples-to-apples by construction.
    ChallengerNoWorse {
        /// Slack added to the champion's rate before comparing.
        margin: f64,
    },
    /// Promote unconditionally once the shadow has scored enough rows.
    /// Useful for forced rollouts — and for exercising the verify/rollback
    /// path with a deliberately bad challenger.
    Always,
}

/// One entry in the supervisor's auditable event log.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LoopEvent {
    /// A drift channel crossed the warning fraction of its threshold.
    DriftWarning {
        /// Escalation rate of the snapshot that triggered the warning.
        escalation_rate: f64,
        /// Mean entropy of that snapshot.
        mean_entropy: f64,
    },
    /// A drift channel crossed its threshold; a retrain will be attempted.
    DriftDetected {
        /// Escalation rate of the snapshot that tipped the verdict.
        escalation_rate: f64,
        /// Mean entropy of that snapshot.
        mean_entropy: f64,
    },
    /// A challenger was fit on the labelled sliding window.
    Retrained {
        /// Rows in the retrain window.
        rows: usize,
    },
    /// The challenger was installed as a shadow on every replica.
    ShadowStarted {
        /// The challenger's detector name.
        challenger: String,
    },
    /// The challenger passed its gate and now serves traffic.
    Promoted {
        /// The version the promotion published.
        version: u64,
        /// Challenger escalation rate over the shadow period.
        challenger_escalation: f64,
        /// Champion escalation rate over the same served rows.
        champion_escalation: f64,
    },
    /// The challenger failed its gate; the shadow was dropped.
    ShadowRejected {
        /// Challenger escalation rate over the shadow period.
        challenger_escalation: f64,
        /// Champion escalation rate over the same served rows.
        champion_escalation: f64,
    },
    /// Post-promotion verification found a regression and rolled back.
    RolledBack {
        /// The version the rollback restored.
        restored: u64,
        /// Escalation rate observed during verification.
        escalation_rate: f64,
        /// The healthy baseline it was compared against.
        baseline: f64,
    },
    /// Post-promotion verification passed; the loop closed.
    Recovered {
        /// Escalation rate observed during verification.
        escalation_rate: f64,
        /// The healthy baseline it was compared against.
        baseline: f64,
    },
}

/// Tuning for one [`LoopSupervisor`].
///
/// Construct with [`LoopConfig::new`] and adjust fields directly; the
/// defaults suit integration-test-sized streams and err on the side of
/// reacting fast.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct LoopConfig {
    /// Drift thresholds (see [`DriftPolicy`]).
    pub drift: DriftPolicy,
    /// Capacity of the labelled sliding window; the oldest rows are evicted
    /// first once full.
    pub window_capacity: usize,
    /// Minimum labelled rows required before a retrain is attempted
    /// (ticking while starved returns [`LoopError::WindowStarved`]).
    pub min_retrain_rows: usize,
    /// Rows the shadow challenger must score before its gate is evaluated.
    pub shadow_rows: u64,
    /// How the challenger earns promotion.
    pub gate: PromotionGate,
    /// Champion rows observed post-promotion before the verify verdict.
    pub verify_rows: usize,
    /// Allowed excess of the post-promotion escalation rate over the
    /// calibrated healthy baseline before an automatic rollback fires.
    pub regression_tolerance: f64,
    /// Pipeline configuration used to fit challengers.
    pub detector: DetectorConfig,
    /// Seed for challenger fits (bumped by one per retrain so successive
    /// challengers are not clones when the window has not moved).
    pub seed: u64,
}

impl LoopConfig {
    /// A config with the given pipeline recipe and default loop tuning.
    pub fn new(detector: DetectorConfig) -> LoopConfig {
        LoopConfig {
            drift: DriftPolicy::default(),
            window_capacity: 2048,
            min_retrain_rows: 64,
            shadow_rows: 64,
            gate: PromotionGate::ChallengerNoWorse { margin: 0.05 },
            verify_rows: 64,
            regression_tolerance: 0.15,
            detector,
            seed: 17,
        }
    }
}

/// The closed-loop supervisor over one [`ShardedFleet`] endpoint.
///
/// State machine: `Monitoring` —drift→ retrain + shadow → `Shadowing`
/// —gate passed→ promote → `Verifying` —healthy→ back to `Monitoring`
/// (event `Recovered`), or —regressed→ automatic rollback (event
/// `RolledBack`). A challenger that fails its gate is dropped
/// (`ShadowRejected`) and the loop keeps monitoring.
///
/// The supervisor consumes the endpoint's reset-on-read window snapshots
/// ([`ShardedFleet::window_stats`]), so it never perturbs the lifetime
/// statistics operators watch, and it feeds retrains from a labelled
/// sliding window the caller fills with [`LoopSupervisor::ingest`].
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use hmd_core::detector::{DetectorBackend, DetectorConfig};
/// use hmd_data::{Dataset, Label, Matrix};
/// use hmd_loop::{LoopConfig, LoopState, LoopSupervisor};
/// use hmd_serve::ShardedFleet;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[
///     vec![0.1, 0.2], vec![0.2, 0.1], vec![0.9, 0.8], vec![0.8, 0.9],
/// ])?;
/// let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
/// let train = Dataset::new(x, y)?;
/// let recipe = DetectorConfig::trusted(DetectorBackend::decision_tree())
///     .with_num_estimators(9);
/// let champion = recipe.clone().fit(&train, 3)?;
///
/// let fleet = Arc::new(ShardedFleet::new(2));
/// fleet.deploy("hmd", champion)?;
///
/// let mut supervisor = LoopSupervisor::new(Arc::clone(&fleet), "hmd", LoopConfig::new(recipe));
/// // Serve traffic, feed labelled rows back, and tick at your own cadence.
/// for row in [[0.15, 0.15], [0.85, 0.9]] {
///     let scored = fleet.score("hmd", &row).and_then(|t| {
///         fleet.flush("hmd")?;
///         t.wait()
///     })?;
///     let label = Label::from(row[1] >= 0.5); // ground truth arrives later
///     supervisor.ingest(&row, label);
///     let _ = scored;
/// }
/// assert_eq!(supervisor.tick()?, LoopState::Monitoring);
/// assert!(supervisor.events().is_empty()); // healthy stream: nothing to do
/// # Ok(())
/// # }
/// ```
pub struct LoopSupervisor {
    fleet: Arc<ShardedFleet>,
    endpoint: String,
    config: LoopConfig,
    drift: DriftDetector,
    warned: bool,
    window_rows: VecDeque<Vec<f64>>,
    window_labels: VecDeque<Label>,
    state: LoopState,
    /// Champion window stats accumulated while a shadow runs (the gate's
    /// denominator: same served rows as the challenger scored).
    champion_during_shadow: MonitorStats,
    /// Champion window stats accumulated post-promotion.
    verify: MonitorStats,
    retrains: u64,
    events: Vec<LoopEvent>,
}

impl LoopSupervisor {
    /// Creates a supervisor for `endpoint` on `fleet`.
    ///
    /// The endpoint does not have to exist yet — it is only touched by
    /// [`LoopSupervisor::tick`] — but every tick against a missing endpoint
    /// returns [`LoopError::Fleet`].
    pub fn new(fleet: Arc<ShardedFleet>, endpoint: &str, config: LoopConfig) -> LoopSupervisor {
        let drift = DriftDetector::new(config.drift);
        LoopSupervisor {
            fleet,
            endpoint: endpoint.to_string(),
            config,
            drift,
            warned: false,
            window_rows: VecDeque::new(),
            window_labels: VecDeque::new(),
            state: LoopState::Monitoring,
            champion_during_shadow: MonitorStats::default(),
            verify: MonitorStats::default(),
            retrains: 0,
            events: Vec::new(),
        }
    }

    /// Adds one labelled row to the sliding retrain window, evicting the
    /// oldest row once [`LoopConfig::window_capacity`] is reached.
    ///
    /// In a real deployment labels arrive late (forensics on escalated
    /// windows, periodic audits); the supervisor only requires that *some*
    /// labelled stream exists, not that it is synchronous with serving.
    pub fn ingest(&mut self, row: &[f64], label: Label) {
        if self.window_rows.len() == self.config.window_capacity {
            self.window_rows.pop_front();
            self.window_labels.pop_front();
        }
        self.window_rows.push_back(row.to_vec());
        self.window_labels.push_back(label);
    }

    /// Labelled rows currently buffered for retraining.
    pub fn window_len(&self) -> usize {
        self.window_rows.len()
    }

    /// The loop's current state.
    pub fn state(&self) -> LoopState {
        self.state
    }

    /// The audit log, oldest event first.
    pub fn events(&self) -> &[LoopEvent] {
        &self.events
    }

    /// The drift detector (verdict, calibrated baselines).
    pub fn drift_detector(&self) -> &DriftDetector {
        &self.drift
    }

    /// Advances the state machine one step.
    ///
    /// Call at any cadence: each tick consumes the endpoint's pending
    /// window snapshot and performs at most one transition. Returns the
    /// state after the tick.
    ///
    /// # Errors
    ///
    /// [`LoopError::Fleet`] if the endpoint is missing or a fleet operation
    /// fails, [`LoopError::Ml`] if a retrain fails,
    /// [`LoopError::WindowStarved`] if drift fired before enough labelled
    /// rows were ingested (ingest more and tick again), and
    /// [`LoopError::ShadowVanished`] if the challenger was cleared behind
    /// the supervisor's back.
    pub fn tick(&mut self) -> Result<LoopState, LoopError> {
        match self.state {
            LoopState::Monitoring => self.tick_monitoring()?,
            LoopState::Shadowing => self.tick_shadowing()?,
            LoopState::Verifying => self.tick_verifying()?,
        }
        Ok(self.state)
    }

    fn tick_monitoring(&mut self) -> Result<(), LoopError> {
        let window = self.fleet.window_stats(&self.endpoint)?;
        let verdict = self.drift.observe(&window);
        match verdict {
            DriftVerdict::Stable => {
                self.warned = false;
            }
            DriftVerdict::Warning => {
                if !self.warned {
                    self.warned = true;
                    self.events.push(LoopEvent::DriftWarning {
                        escalation_rate: window.escalation_rate(),
                        mean_entropy: window.mean_entropy(),
                    });
                }
            }
            DriftVerdict::Drifted => {
                self.events.push(LoopEvent::DriftDetected {
                    escalation_rate: window.escalation_rate(),
                    mean_entropy: window.mean_entropy(),
                });
                self.start_challenger()?;
            }
        }
        Ok(())
    }

    fn start_challenger(&mut self) -> Result<(), LoopError> {
        let have = self.window_rows.len();
        if have < self.config.min_retrain_rows {
            return Err(LoopError::WindowStarved {
                have,
                need: self.config.min_retrain_rows,
            });
        }
        let rows: Vec<Vec<f64>> = self.window_rows.iter().cloned().collect();
        let labels: Vec<Label> = self.window_labels.iter().copied().collect();
        let matrix = Matrix::from_rows(&rows)?;
        let seed = self.config.seed.wrapping_add(self.retrains);
        self.retrains += 1;
        let challenger = self
            .config
            .detector
            .refit_on_window(&matrix.view(), &labels, seed)?;
        self.events.push(LoopEvent::Retrained { rows: have });
        let name = challenger.name();
        self.fleet.deploy_shadow(&self.endpoint, challenger)?;
        self.events
            .push(LoopEvent::ShadowStarted { challenger: name });
        self.champion_during_shadow = MonitorStats::default();
        self.state = LoopState::Shadowing;
        Ok(())
    }

    fn tick_shadowing(&mut self) -> Result<(), LoopError> {
        let window = self.fleet.window_stats(&self.endpoint)?;
        self.champion_during_shadow.merge(&window);
        let shadow =
            self.fleet
                .shadow_stats(&self.endpoint)?
                .ok_or_else(|| LoopError::ShadowVanished {
                    endpoint: self.endpoint.clone(),
                })?;
        if shadow.rows < self.config.shadow_rows {
            return Ok(()); // keep shadowing
        }
        let challenger_escalation = shadow.stats.escalation_rate();
        let champion_escalation = self.champion_during_shadow.escalation_rate();
        let promote = match self.config.gate {
            PromotionGate::Always => true,
            PromotionGate::ChallengerNoWorse { margin } => {
                challenger_escalation <= champion_escalation + margin
            }
        };
        if promote {
            let version = self.fleet.promote_shadow(&self.endpoint)?;
            self.events.push(LoopEvent::Promoted {
                version,
                challenger_escalation,
                champion_escalation,
            });
            self.verify = MonitorStats::default();
            self.state = LoopState::Verifying;
        } else {
            self.fleet.clear_shadow(&self.endpoint)?;
            self.events.push(LoopEvent::ShadowRejected {
                challenger_escalation,
                champion_escalation,
            });
            // The drift verdict stays sticky, so the next monitoring tick
            // retries with whatever fresher rows were ingested meanwhile.
            self.state = LoopState::Monitoring;
        }
        Ok(())
    }

    fn tick_verifying(&mut self) -> Result<(), LoopError> {
        let window = self.fleet.window_stats(&self.endpoint)?;
        self.verify.merge(&window);
        if self.verify.windows < self.config.verify_rows {
            return Ok(()); // keep verifying
        }
        let baseline = self
            .drift
            .baseline()
            .map(|b| b.escalation_rate)
            .unwrap_or(0.0);
        let escalation_rate = self.verify.escalation_rate();
        if escalation_rate > baseline + self.config.regression_tolerance {
            let restored = self.fleet.rollback(&self.endpoint)?;
            self.events.push(LoopEvent::RolledBack {
                restored,
                escalation_rate,
                baseline,
            });
        } else {
            self.events.push(LoopEvent::Recovered {
                escalation_rate,
                baseline,
            });
        }
        // Either way the loop re-arms against the now-serving champion:
        // fresh calibration, fresh verdict.
        self.drift.reset();
        self.warned = false;
        self.state = LoopState::Monitoring;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_core::detector::DetectorBackend;
    use hmd_data::Dataset;

    fn blobs(n: usize, seed: u64) -> Dataset {
        // Two well-separated clusters, deterministic placement.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let malware = i % 2 == 0;
            let c = if malware { 2.0 } else { -2.0 };
            let jitter = ((i * 2654435761 + seed as usize) % 997) as f64 / 997.0 - 0.5;
            rows.push(vec![c + jitter, c - jitter, jitter]);
            labels.push(Label::from(malware));
        }
        Dataset::new(Matrix::from_rows(&rows).expect("consistent rows"), labels)
            .expect("valid dataset")
    }

    fn recipe() -> DetectorConfig {
        DetectorConfig::trusted(DetectorBackend::decision_tree())
            .with_num_estimators(9)
            .with_entropy_threshold(0.5)
    }

    #[test]
    fn starved_window_is_an_error_not_a_silent_skip() {
        let train = blobs(80, 5);
        let fleet = Arc::new(ShardedFleet::new(1));
        fleet
            .deploy("hmd", recipe().fit(&train, 3).expect("fits"))
            .expect("deploys");

        let mut config = LoopConfig::new(recipe());
        config.drift = DriftPolicy {
            calibration_windows: 1,
            min_window_rows: 4,
            ..DriftPolicy::default()
        };
        config.min_retrain_rows = 64;
        let mut supervisor = LoopSupervisor::new(Arc::clone(&fleet), "hmd", config);

        // Calibrate on a confident batch, then flood with ambiguous rows
        // (between the clusters) to force escalations and drift.
        let confident = Matrix::from_rows(&vec![vec![2.0, 2.0, 0.0]; 16]).expect("matrix");
        fleet.score_batch("hmd", &confident).expect("scores");
        supervisor.tick().expect("calibration tick");

        let ambiguous = Matrix::from_rows(&vec![vec![0.1, -0.1, 0.0]; 16]).expect("matrix");
        for _ in 0..4 {
            fleet.score_batch("hmd", &ambiguous).expect("scores");
            match supervisor.tick() {
                Ok(_) => continue,
                Err(LoopError::WindowStarved { have, need }) => {
                    assert_eq!((have, need), (0, 64));
                    return;
                }
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        panic!("drift never fired on an all-ambiguous stream");
    }

    #[test]
    fn unknown_endpoint_surfaces_as_fleet_error() {
        let fleet = Arc::new(ShardedFleet::new(1));
        let mut supervisor = LoopSupervisor::new(fleet, "ghost", LoopConfig::new(recipe()));
        assert_eq!(
            supervisor.tick(),
            Err(LoopError::Fleet(FleetError::UnknownEndpoint {
                name: "ghost".into()
            }))
        );
    }
}
