//! The closed loop against `hmd_threat` corpora:
//!
//! * **Gradual drift is caught early and repaired**: a covariate-shift
//!   stream (per-feature ±4σ, ramped over one batch) drives the supervisor
//!   through the full detect → retrain → shadow → promote cycle, and the
//!   drift is flagged while the champion's running F1 over the served
//!   stream is still above a floor the stationary drifted distribution
//!   falls well below — the alarm precedes the damage.
//! * **Mimicry does not cry wolf**: a budget-bounded mimicry stream (the
//!   stealthy attack that blends malware signatures toward their nearest
//!   benign neighbours) must NOT trigger a retrain; the supervisor stays in
//!   `Monitoring` with an empty event log.
//!
//! Loop knobs mirror `hmd_bench::robustness::run_drift_loop`: a patient
//! detection threshold (`lambda` = 3.0) and a retrain window sized so the
//! challenger fits on the stationary post-ramp distribution rather than a
//! clean/drifted mixture.

use std::sync::Arc;

use hmd_core::detector::{DetectorBackend, DetectorConfig, DetectorExt};
use hmd_data::stream::CorpusStream;
use hmd_data::{Label, Matrix};
use hmd_dvfs::dataset::DvfsCorpusBuilder;
use hmd_dvfs::DvfsCorpusStream;
use hmd_loop::{DriftPolicy, LoopConfig, LoopEvent, LoopState, LoopSupervisor, PromotionGate};
use hmd_ml::metrics::f1_score;
use hmd_serve::ShardedFleet;
use hmd_threat::{DriftSchedule, GradualDrift, Mimicry};

const ENDPOINT: &str = "edge-hmd-adversarial";
const BATCH: usize = 32;
/// The F1 floor of the drift test: detection must fire while the running
/// stream F1 is still above it, and the stationary drifted distribution
/// must sit below it. (Seeded run: healthy 0.93, at detection 0.76,
/// stationary drifted 0.61.)
const F1_FLOOR: f64 = 0.7;

fn builder() -> DvfsCorpusBuilder {
    DvfsCorpusBuilder::new()
        .with_samples_per_app(6)
        .with_trace_len(192)
}

fn recipe() -> DetectorConfig {
    DetectorConfig::trusted(DetectorBackend::random_forest())
        .with_num_estimators(11)
        .with_entropy_threshold(0.4)
}

/// Loop knobs tuned for recovery under a one-batch drift ramp (see the
/// module docs): patient lambda, retrain window dominated by post-ramp rows.
fn loop_config() -> LoopConfig {
    let mut config = LoopConfig::new(recipe());
    config.drift = DriftPolicy {
        calibration_windows: 3,
        min_window_rows: 8,
        lambda: 3.0,
        ..DriftPolicy::default()
    };
    config.window_capacity = 6 * BATCH;
    config.min_retrain_rows = 5 * BATCH;
    config.shadow_rows = 2 * BATCH as u64;
    config.verify_rows = 2 * BATCH;
    config.regression_tolerance = 0.2;
    config.gate = PromotionGate::ChallengerNoWorse { margin: 0.05 };
    config.seed = 0xad5e;
    config
}

/// Population standard deviation per feature column, floored away from zero
/// so constant columns still yield a usable shift.
fn per_feature_std(features: &Matrix) -> Vec<f64> {
    let (rows, cols) = (features.rows(), features.cols());
    let mut mean = vec![0.0; cols];
    for row in features.iter_rows() {
        for (m, x) in mean.iter_mut().zip(row) {
            *m += x;
        }
    }
    mean.iter_mut().for_each(|m| *m /= rows as f64);
    let mut var = vec![0.0; cols];
    for row in features.iter_rows() {
        for ((v, m), x) in var.iter_mut().zip(&mean).zip(row) {
            *v += (x - m) * (x - m);
        }
    }
    var.iter()
        .map(|v| (v / rows as f64).sqrt().max(1e-9))
        .collect()
}

/// The ±4σ alternating-sign covariate shift used across the robustness
/// experiments.
fn drift_attack(stds: &[f64], schedule: DriftSchedule) -> GradualDrift {
    let shift: Vec<f64> = stds
        .iter()
        .enumerate()
        .map(|(j, s)| if j % 2 == 0 { 4.0 * s } else { -4.0 * s })
        .collect();
    GradualDrift::new(shift, schedule).expect("training stds are finite and non-empty")
}

/// Serves one batch from `stream` through the fleet, feeds the supervisor's
/// labelled window, and appends the champion's raw votes and the true
/// labels to the running-F1 accumulators.
fn serve_batch<S: CorpusStream>(
    stream: &mut S,
    fleet: &ShardedFleet,
    supervisor: &mut LoopSupervisor,
    predictions: &mut Vec<Label>,
    truths: &mut Vec<Label>,
) {
    let mut rows = Vec::with_capacity(BATCH);
    let mut labels = Vec::with_capacity(BATCH);
    while rows.len() < BATCH {
        let record = stream.next().expect("corpus streams are infinite");
        rows.push(record.features);
        labels.push(record.label);
    }
    let matrix = Matrix::from_rows(&rows).expect("consistent rows");
    let served = fleet.score_batch(ENDPOINT, &matrix).expect("serves");
    for scored in &served {
        predictions.push(scored.report.prediction.label);
    }
    truths.extend_from_slice(&labels);
    for (row, label) in matrix.iter_rows().zip(&labels) {
        supervisor.ingest(row, *label);
    }
}

fn has_event(supervisor: &LoopSupervisor, wanted: fn(&LoopEvent) -> bool) -> bool {
    supervisor.events().iter().any(wanted)
}

#[test]
fn gradual_drift_is_flagged_before_f1_breaches_the_floor_and_repaired() {
    let builder = builder();
    let split = builder.build_split(7).expect("split");
    let stds = per_feature_std(split.train.features());
    let champion = recipe().fit(&split.train, 13).expect("champion fits");

    let fleet = Arc::new(ShardedFleet::new(2));
    assert_eq!(fleet.deploy(ENDPOINT, champion).expect("deploys"), 1);
    let mut supervisor = LoopSupervisor::new(Arc::clone(&fleet), ENDPOINT, loop_config());

    let (mut predictions, mut truths) = (Vec::new(), Vec::new());

    // ---- Healthy traffic calibrates the drift baseline ------------------
    let mut healthy = DvfsCorpusStream::known_apps(builder.clone(), 0x4ea1).expect("stream");
    for _ in 0..5 {
        serve_batch(
            &mut healthy,
            &fleet,
            &mut supervisor,
            &mut predictions,
            &mut truths,
        );
        assert_eq!(supervisor.tick().expect("tick"), LoopState::Monitoring);
    }
    assert!(
        supervisor.events().is_empty(),
        "healthy stream raised events"
    );
    let healthy_f1 = f1_score(&truths, &predictions);
    assert!(healthy_f1 > 0.9, "champion unhealthy at baseline");

    // ---- The stream drifts: ±4σ covariate shift, ramped over one batch --
    let inner = DvfsCorpusStream::known_apps(builder.clone(), 0xd41f).expect("stream");
    let mut drifted = drift_attack(&stds, DriftSchedule::linear(BATCH))
        .apply(inner)
        .expect("drift applies");

    let mut f1_at_detection = None;
    let mut promoted = false;
    for round in 0..48 {
        serve_batch(
            &mut drifted,
            &fleet,
            &mut supervisor,
            &mut predictions,
            &mut truths,
        );
        match supervisor.tick() {
            Ok(_) => {}
            Err(hmd_loop::LoopError::WindowStarved { .. }) => {}
            Err(other) => panic!("tick failed in round {round}: {other}"),
        }
        if f1_at_detection.is_none()
            && has_event(&supervisor, |e| {
                matches!(e, LoopEvent::DriftDetected { .. })
            })
        {
            // Running F1 over everything served so far, at the moment the
            // alarm fired.
            f1_at_detection = Some(f1_score(&truths, &predictions));
        }
        if has_event(&supervisor, |e| matches!(e, LoopEvent::Promoted { .. })) {
            promoted = true;
            break;
        }
    }

    // The full cycle ran: detect → retrain → shadow → promote.
    let f1_at_detection = f1_at_detection.expect("drift never flagged");
    assert!(has_event(&supervisor, |e| matches!(
        e,
        LoopEvent::Retrained { .. }
    )));
    assert!(has_event(&supervisor, |e| matches!(
        e,
        LoopEvent::ShadowStarted { .. }
    )));
    assert!(promoted, "challenger never promoted");
    assert_eq!(fleet.active_version(ENDPOINT).expect("version"), 2);

    // The alarm preceded the damage: at detection time the running F1 was
    // still above the floor...
    assert!(
        f1_at_detection > F1_FLOOR,
        "drift flagged too late: running F1 already {f1_at_detection:.3}"
    );
    // ...which the stationary drifted distribution itself falls below — the
    // floor would have been breached had the loop kept serving the old
    // champion. Measured on the old champion's codec-independent recipe:
    // refit is unnecessary, just score a fresh post-ramp batch directly.
    let champion_view = recipe()
        .fit(&split.train, 13)
        .expect("refit is deterministic");
    let inner = DvfsCorpusStream::known_apps(builder.clone(), 0x5eed).expect("stream");
    let mut stationary = drift_attack(&stds, DriftSchedule::step(0))
        .apply(inner)
        .expect("drift applies");
    let mut rows = Vec::with_capacity(4 * BATCH);
    let mut labels = Vec::with_capacity(4 * BATCH);
    while rows.len() < 4 * BATCH {
        let record = stationary.next().expect("infinite");
        rows.push(record.features);
        labels.push(record.label);
    }
    let matrix = Matrix::from_rows(&rows).expect("consistent rows");
    let votes: Vec<Label> = champion_view
        .detect_batch(&matrix)
        .expect("detects")
        .iter()
        .map(|r| r.prediction.label)
        .collect();
    let stationary_f1 = f1_score(&labels, &votes);
    assert!(
        stationary_f1 < F1_FLOOR,
        "drift too weak to matter: stationary F1 {stationary_f1:.3}"
    );
}

#[test]
fn budgeted_mimicry_does_not_trigger_retrain() {
    let builder = builder();
    let split = builder.build_split(7).expect("split");
    let champion = recipe().fit(&split.train, 13).expect("champion fits");

    let fleet = Arc::new(ShardedFleet::new(2));
    assert_eq!(fleet.deploy(ENDPOINT, champion).expect("deploys"), 1);
    let mut supervisor = LoopSupervisor::new(Arc::clone(&fleet), ENDPOINT, loop_config());

    let (mut predictions, mut truths) = (Vec::new(), Vec::new());

    // Calibrate on clean traffic, then switch to the mimicry stream: every
    // malware signature is blended 10% of the way toward its nearest benign
    // training row. That erodes raw accuracy, but the feature distribution
    // stays inside the training support — the drift detector must not fire,
    // because a retrain on mimicked rows would teach the detector nothing.
    let mut healthy = DvfsCorpusStream::known_apps(builder.clone(), 0x4ea1).expect("stream");
    for _ in 0..5 {
        serve_batch(
            &mut healthy,
            &fleet,
            &mut supervisor,
            &mut predictions,
            &mut truths,
        );
        assert_eq!(supervisor.tick().expect("tick"), LoopState::Monitoring);
    }

    let inner = DvfsCorpusStream::known_apps(builder.clone(), 0x3113).expect("stream");
    let mut mimicked = Mimicry::from_benign_rows(&split.train, 0.1)
        .expect("benign templates exist")
        .apply(inner)
        .expect("mimicry applies");
    for _ in 0..10 {
        serve_batch(
            &mut mimicked,
            &fleet,
            &mut supervisor,
            &mut predictions,
            &mut truths,
        );
        match supervisor.tick() {
            Ok(state) => assert_eq!(state, LoopState::Monitoring, "mimicry tripped the loop"),
            Err(hmd_loop::LoopError::WindowStarved { .. }) => {}
            Err(other) => panic!("tick failed: {other}"),
        }
    }
    assert_eq!(supervisor.state(), LoopState::Monitoring);
    assert!(
        supervisor.events().is_empty(),
        "mimicry raised loop events: {:?}",
        supervisor.events()
    );
    assert_eq!(
        fleet.active_version(ENDPOINT).expect("version"),
        1,
        "mimicry must not cause a deployment"
    );
}
