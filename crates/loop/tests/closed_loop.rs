//! Seeded end-to-end closed-loop tests through a [`ShardedFleet`]:
//!
//! * **Recovery**: a champion trained on the known workload mix watches a
//!   stream that drifts to the paper's zero-day proxies (unknown DVFS app
//!   families). The supervisor detects the drift, retrains a challenger on
//!   its labelled sliding window, shadows it on served traffic, promotes it
//!   through the `ChallengerNoWorse` gate, verifies, and recovers — with
//!   escalation rate and F1 on the drifted mix both restored.
//! * **Rollback**: a deliberately garbage challenger (label-poisoned
//!   sliding window) is force-promoted with `PromotionGate::Always`; the
//!   verify phase catches the escalation-rate regression and rolls back to
//!   the old champion automatically.
//!
//! Throughout both, served reports are **bit-identical** to direct
//! `detect_batch` calls on codec copies of whichever champion is active —
//! the shadow-isolation invariant — which the test proves by reproducing
//! the supervisor's challenger fit from a mirrored window (the fastfit path
//! is deterministic) and comparing every served report.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use hmd_core::detector::{
    load, save, Detector, DetectorBackend, DetectorConfig, DetectorExt, MonitorSession,
};
use hmd_data::{Dataset, Label, Matrix};
use hmd_dvfs::apps::{AppCatalog, AppProfile};
use hmd_dvfs::dataset::DvfsCorpusBuilder;
use hmd_loop::{DriftPolicy, LoopConfig, LoopEvent, LoopState, LoopSupervisor, PromotionGate};
use hmd_ml::metrics::f1_score;
use hmd_serve::{FlushPolicy, ShardConfig, ShardedFleet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ENDPOINT: &str = "edge-hmd";
const BATCH: usize = 32;

fn builder() -> DvfsCorpusBuilder {
    DvfsCorpusBuilder::new()
        .with_samples_per_app(6)
        .with_trace_len(192)
}

fn recipe() -> DetectorConfig {
    DetectorConfig::trusted(DetectorBackend::random_forest())
        .with_num_estimators(11)
        .with_entropy_threshold(0.4)
}

/// A labelled batch of fresh signatures drawn from `apps` (round-robin).
fn batch(builder: &DvfsCorpusBuilder, apps: &[&AppProfile], rng: &mut StdRng) -> Dataset {
    let mut rows = Vec::with_capacity(BATCH);
    let mut labels = Vec::with_capacity(BATCH);
    for i in 0..BATCH {
        let app = apps[i % apps.len()];
        rows.push(builder.simulate_signature(app, rng));
        labels.push(app.label);
    }
    Dataset::new(Matrix::from_rows(&rows).expect("consistent rows"), labels).expect("valid batch")
}

/// Serves one labelled batch through the fleet, asserts every report is
/// bit-identical to direct detection on `active` (the codec copy of the
/// model the fleet should currently be serving), feeds the supervisor's
/// sliding window (and the test's mirror of it), and returns the batch's
/// served escalation count.
#[allow(clippy::too_many_arguments)]
fn serve_and_mirror(
    fleet: &ShardedFleet,
    active: &dyn Detector,
    batch: &Dataset,
    supervisor: &mut LoopSupervisor,
    mirror_rows: &mut VecDeque<Vec<f64>>,
    mirror_labels: &mut VecDeque<Label>,
    mirror_capacity: usize,
    context: &str,
) -> usize {
    let direct = active
        .detect_batch(batch.features())
        .expect("direct detect");
    let served = fleet
        .score_batch(ENDPOINT, batch.features())
        .expect("serves");
    assert_eq!(served.len(), direct.len());
    let mut escalated = 0;
    for (row, scored) in served.iter().enumerate() {
        assert_eq!(
            scored.report, direct[row],
            "{context}: served row {row} diverged from the active champion"
        );
        if scored.report.decision.label().is_none() {
            escalated += 1;
        }
    }
    for (row, label) in batch.features().iter_rows().zip(batch.labels()) {
        supervisor.ingest(row, *label);
        if mirror_rows.len() == mirror_capacity {
            mirror_rows.pop_front();
            mirror_labels.pop_front();
        }
        mirror_rows.push_back(row.to_vec());
        mirror_labels.push_back(*label);
    }
    escalated
}

/// Refits the supervisor's challenger from the mirrored window: the fastfit
/// path is deterministic, so this copy is bit-identical to the model the
/// supervisor deployed as a shadow (and later promoted).
fn reproduce_challenger(
    config: &LoopConfig,
    mirror_rows: &VecDeque<Vec<f64>>,
    mirror_labels: &VecDeque<Label>,
) -> Box<dyn Detector> {
    let rows: Vec<Vec<f64>> = mirror_rows.iter().cloned().collect();
    let labels: Vec<Label> = mirror_labels.iter().copied().collect();
    let matrix = Matrix::from_rows(&rows).expect("consistent rows");
    config
        .detector
        .refit_on_window(&matrix.view(), &labels, config.seed)
        .expect("challenger refit")
}

fn has_event(supervisor: &LoopSupervisor, wanted: fn(&LoopEvent) -> bool) -> bool {
    supervisor.events().iter().any(wanted)
}

#[test]
fn drift_retrain_shadow_promote_recovers_f1_with_bit_identical_serving() {
    let builder = builder();
    let catalog = AppCatalog::standard();
    let known: Vec<&AppProfile> = catalog.known_apps();
    // The drifted mix: the zero-day proxies dominate, with a minority of
    // known apps still running.
    let drifted: Vec<&AppProfile> = catalog
        .unknown_apps()
        .into_iter()
        .chain(known.iter().copied().take(2))
        .collect();
    let mut rng = StdRng::seed_from_u64(4242);

    // Champion trained on the known mix only.
    let split = builder.build_split(7).expect("split");
    let champion = recipe().fit(&split.train, 13).expect("champion fits");
    let champion_copy = load(&save(champion.as_ref()).expect("saves")).expect("loads");

    let fleet = Arc::new(ShardedFleet::with_config(
        ShardConfig::new(2).with_flush(FlushPolicy::new(BATCH, Duration::from_millis(50))),
    ));
    assert_eq!(fleet.deploy(ENDPOINT, champion).expect("deploys"), 1);

    let mut config = LoopConfig::new(recipe());
    config.drift = DriftPolicy {
        calibration_windows: 3,
        min_window_rows: 8,
        ..DriftPolicy::default()
    };
    config.window_capacity = 8 * BATCH;
    config.min_retrain_rows = 4 * BATCH;
    config.shadow_rows = 2 * BATCH as u64;
    config.verify_rows = 2 * BATCH;
    config.gate = PromotionGate::ChallengerNoWorse { margin: 0.05 };
    config.seed = 17;
    let capacity = config.window_capacity;
    let mut supervisor = LoopSupervisor::new(Arc::clone(&fleet), ENDPOINT, config.clone());
    let (mut mirror_rows, mut mirror_labels) = (VecDeque::new(), VecDeque::new());

    // ---- Phase 1: healthy stream calibrates the drift baseline ----------
    let mut rows_served = 0usize;
    for _ in 0..5 {
        rows_served += BATCH;
        serve_and_mirror(
            &fleet,
            champion_copy.as_ref(),
            &batch(&builder, &known, &mut rng),
            &mut supervisor,
            &mut mirror_rows,
            &mut mirror_labels,
            capacity,
            "healthy",
        );
        assert_eq!(supervisor.tick().expect("tick"), LoopState::Monitoring);
    }
    assert!(
        supervisor.events().is_empty(),
        "healthy stream raised events"
    );
    let baseline = supervisor
        .drift_detector()
        .baseline()
        .expect("calibrated")
        .escalation_rate;

    // ---- Phase 2: the workload mix drifts to the zero-day proxies -------
    // Stream drifted batches until drift fires and a challenger is fit. The
    // window must hold enough drifted rows first, so ticks may starve; keep
    // feeding until the supervisor enters `Shadowing`.
    let mut challenger_copy: Option<Box<dyn Detector>> = None;
    let mut champion_escalations = 0usize;
    let mut drifted_rows_before_shadow = 0usize;
    for round in 0..32 {
        champion_escalations += serve_and_mirror(
            &fleet,
            champion_copy.as_ref(),
            &batch(&builder, &drifted, &mut rng),
            &mut supervisor,
            &mut mirror_rows,
            &mut mirror_labels,
            capacity,
            "drifted (pre-shadow)",
        );
        drifted_rows_before_shadow += BATCH;
        rows_served += BATCH;
        match supervisor.tick() {
            Ok(LoopState::Shadowing) => {
                // The supervisor fit its challenger from exactly the rows we
                // mirrored; reproduce it for bit-identity checks.
                challenger_copy = Some(reproduce_challenger(&config, &mirror_rows, &mirror_labels));
                break;
            }
            Ok(LoopState::Monitoring) => continue,
            Ok(state) => panic!("unexpected state {state:?} in round {round}"),
            Err(hmd_loop::LoopError::WindowStarved { .. }) => continue,
            Err(other) => panic!("tick failed: {other}"),
        }
    }
    let challenger_copy = challenger_copy.expect("drift never fired on the zero-day mix");
    assert!(
        champion_escalations as f64 / drifted_rows_before_shadow as f64 > baseline + 0.2,
        "drifted mix did not raise the champion's escalation rate"
    );
    assert!(has_event(&supervisor, |e| matches!(
        e,
        LoopEvent::DriftDetected { .. }
    )));
    assert!(has_event(&supervisor, |e| matches!(
        e,
        LoopEvent::Retrained { .. }
    )));
    assert!(has_event(&supervisor, |e| matches!(
        e,
        LoopEvent::ShadowStarted { .. }
    )));

    // ---- Phase 3: shadow scores served traffic; gate promotes -----------
    // Served rows still come from the OLD champion while the challenger
    // shadows (bit-identity asserted every batch).
    let mut promoted = false;
    for _ in 0..8 {
        rows_served += BATCH;
        serve_and_mirror(
            &fleet,
            champion_copy.as_ref(),
            &batch(&builder, &drifted, &mut rng),
            &mut supervisor,
            &mut mirror_rows,
            &mut mirror_labels,
            capacity,
            "drifted (shadowing)",
        );
        if supervisor.tick().expect("tick") == LoopState::Verifying {
            promoted = true;
            break;
        }
    }
    assert!(promoted, "shadow never promoted");
    assert_eq!(fleet.active_version(ENDPOINT).expect("version"), 2);
    let promotion = supervisor
        .events()
        .iter()
        .find_map(|e| match e {
            LoopEvent::Promoted {
                challenger_escalation,
                champion_escalation,
                version,
            } => Some((*version, *challenger_escalation, *champion_escalation)),
            _ => None,
        })
        .expect("promotion event");
    assert_eq!(promotion.0, 2);
    assert!(
        promotion.1 <= promotion.2 + 0.05,
        "gate promoted a challenger worse than the champion: {promotion:?}"
    );

    // ---- Phase 4: the new champion serves; verification recovers --------
    let mut recovered = false;
    let mut post_escalations = 0usize;
    let mut post_rows = 0usize;
    for _ in 0..8 {
        post_escalations += serve_and_mirror(
            &fleet,
            challenger_copy.as_ref(),
            &batch(&builder, &drifted, &mut rng),
            &mut supervisor,
            &mut mirror_rows,
            &mut mirror_labels,
            capacity,
            "drifted (post-promote)",
        );
        post_rows += BATCH;
        rows_served += BATCH;
        supervisor.tick().expect("tick");
        if has_event(&supervisor, |e| matches!(e, LoopEvent::Recovered { .. })) {
            recovered = true;
            break;
        }
    }
    assert!(recovered, "verification never recovered");
    assert!(
        !has_event(&supervisor, |e| matches!(e, LoopEvent::RolledBack { .. })),
        "healthy promotion must not roll back"
    );
    assert_eq!(supervisor.state(), LoopState::Monitoring);

    // The loop measurably recovered: the new champion escalates far less of
    // the drifted mix than the old one did...
    let old_rate = champion_escalations as f64 / drifted_rows_before_shadow as f64;
    let new_rate = post_escalations as f64 / post_rows as f64;
    assert!(
        new_rate < old_rate - 0.2,
        "escalation rate did not recover: old {old_rate:.3}, new {new_rate:.3}"
    );

    // ...and F1 on a fresh drifted evaluation set recovers too (measured on
    // raw ensemble votes, the same quantity for both models).
    let eval = batch(&builder, &drifted, &mut rng);
    let old_predictions: Vec<Label> = champion_copy
        .detect_batch(eval.features())
        .expect("old eval")
        .iter()
        .map(|r| r.prediction.label)
        .collect();
    let new_predictions: Vec<Label> = challenger_copy
        .detect_batch(eval.features())
        .expect("new eval")
        .iter()
        .map(|r| r.prediction.label)
        .collect();
    let old_f1 = f1_score(eval.labels(), &old_predictions);
    let new_f1 = f1_score(eval.labels(), &new_predictions);
    assert!(
        new_f1 >= old_f1 && new_f1 > 0.85,
        "F1 did not recover: old {old_f1:.3}, new {new_f1:.3}"
    );

    // The challenger's shadow statistics never leaked into the endpoint's
    // served statistics: the lifetime monitor counts exactly the rows the
    // champions served (the F1 eval above ran on codec copies, not through
    // the fleet).
    assert_eq!(fleet.stats(ENDPOINT).expect("stats").windows, rows_served);
}

#[test]
fn regressing_forced_promotion_rolls_back_automatically() {
    let builder = builder();
    let catalog = AppCatalog::standard();
    let known: Vec<&AppProfile> = catalog.known_apps();
    let drifted: Vec<&AppProfile> = catalog.unknown_apps();
    let mut rng = StdRng::seed_from_u64(9001);

    let split = builder.build_split(7).expect("split");
    let champion = recipe().fit(&split.train, 13).expect("champion fits");
    let champion_copy = load(&save(champion.as_ref()).expect("saves")).expect("loads");

    let fleet = Arc::new(ShardedFleet::with_config(
        ShardConfig::new(2).with_flush(FlushPolicy::new(BATCH, Duration::from_millis(50))),
    ));
    assert_eq!(fleet.deploy(ENDPOINT, champion).expect("deploys"), 1);

    let mut config = LoopConfig::new(recipe());
    config.drift = DriftPolicy {
        calibration_windows: 3,
        min_window_rows: 8,
        ..DriftPolicy::default()
    };
    config.window_capacity = 4 * BATCH;
    config.min_retrain_rows = 2 * BATCH;
    config.shadow_rows = BATCH as u64;
    config.verify_rows = 2 * BATCH;
    config.regression_tolerance = 0.15;
    // Force the rollout: the gate is what normally keeps a bad challenger
    // out, so bypass it to prove the verify phase is a real safety net.
    config.gate = PromotionGate::Always;
    let mut supervisor = LoopSupervisor::new(Arc::clone(&fleet), ENDPOINT, config);

    // Calibrate healthy.
    for _ in 0..3 {
        let healthy = batch(&builder, &known, &mut rng);
        fleet
            .score_batch(ENDPOINT, healthy.features())
            .expect("serves");
        assert_eq!(supervisor.tick().expect("tick"), LoopState::Monitoring);
    }

    // Drift the stream, but poison the supervisor's labelled window with
    // coin-flip labels: the retrained ensemble's members disagree on fresh
    // rows, so the challenger escalates nearly everything — a regression
    // the verify phase must catch.
    let mut shadowing = false;
    for _ in 0..32 {
        let poisoned = batch(&builder, &drifted, &mut rng);
        fleet
            .score_batch(ENDPOINT, poisoned.features())
            .expect("serves");
        for (row, label) in poisoned.features().iter_rows().zip(poisoned.labels()) {
            let _ = label;
            supervisor.ingest(row, Label::from(rng.gen_bool(0.5)));
        }
        match supervisor.tick() {
            Ok(LoopState::Shadowing) => {
                shadowing = true;
                break;
            }
            Ok(_) => continue,
            Err(hmd_loop::LoopError::WindowStarved { .. }) => continue,
            Err(other) => panic!("tick failed: {other}"),
        }
    }
    assert!(shadowing, "drift never fired");

    // Shadow long enough to force-promote, then verify long enough to
    // catch the regression and roll back.
    let mut rolled_back = false;
    for _ in 0..16 {
        let stream = batch(&builder, &drifted, &mut rng);
        fleet
            .score_batch(ENDPOINT, stream.features())
            .expect("serves");
        supervisor.tick().expect("tick");
        if has_event(&supervisor, |e| matches!(e, LoopEvent::RolledBack { .. })) {
            rolled_back = true;
            break;
        }
    }
    assert!(rolled_back, "regression never rolled back");
    assert!(
        has_event(&supervisor, |e| matches!(
            e,
            LoopEvent::Promoted { version: 2, .. }
        )),
        "forced promotion missing from the audit log"
    );
    assert!(
        !has_event(&supervisor, |e| matches!(e, LoopEvent::Recovered { .. })),
        "a garbage challenger must not be declared recovered"
    );
    assert_eq!(supervisor.state(), LoopState::Monitoring);

    // The rollback restored the original champion: version 1 serves again,
    // bit-identically to the codec copy saved before deployment.
    assert_eq!(fleet.active_version(ENDPOINT).expect("version"), 1);
    let eval = batch(&builder, &known, &mut rng);
    let direct = champion_copy
        .detect_batch(eval.features())
        .expect("direct detect");
    let served = fleet
        .score_batch(ENDPOINT, eval.features())
        .expect("serves");
    for (row, scored) in served.iter().enumerate() {
        assert_eq!(scored.version, 1, "row {row} not served by the restored v1");
        assert_eq!(
            scored.report, direct[row],
            "restored champion diverged on row {row}"
        );
    }
}

/// The supervisor's window statistics come from the same reset-on-read
/// machinery `MonitorSession` uses, so a quick cross-check: ticking the
/// supervisor consumes the endpoint's pending window without touching the
/// lifetime statistics a dashboard reads.
#[test]
fn ticks_consume_windows_without_perturbing_lifetime_stats() {
    let builder = builder();
    let catalog = AppCatalog::standard();
    let known: Vec<&AppProfile> = catalog.known_apps();
    let mut rng = StdRng::seed_from_u64(31);

    let split = builder.build_split(7).expect("split");
    let champion = recipe().fit(&split.train, 13).expect("fits");
    let reference = load(&save(champion.as_ref()).expect("saves")).expect("loads");

    let fleet = Arc::new(ShardedFleet::new(2));
    fleet.deploy(ENDPOINT, champion).expect("deploys");
    let mut supervisor =
        LoopSupervisor::new(Arc::clone(&fleet), ENDPOINT, LoopConfig::new(recipe()));

    let stream = batch(&builder, &known, &mut rng);
    fleet
        .score_batch(ENDPOINT, stream.features())
        .expect("serves");
    let lifetime = |stats: &hmd_core::detector::MonitorStats| {
        (
            stats.windows,
            stats.accepted,
            stats.escalated,
            stats.accepted_malware,
            stats.accepted_benign,
            stats.max_entropy,
            stats.min_entropy,
            stats.mean_entropy(),
        )
    };
    let before = fleet.stats(ENDPOINT).expect("stats");
    supervisor.tick().expect("tick");
    let after = fleet.stats(ENDPOINT).expect("stats");
    assert_eq!(
        lifetime(&before),
        lifetime(&after),
        "tick perturbed lifetime statistics"
    );
    assert_eq!(
        fleet.window_stats(ENDPOINT).expect("window").windows,
        0,
        "tick left the pending window unconsumed"
    );

    // Sanity: the session-level statistics of the same stream agree with
    // the fleet's lifetime view.
    let mut session = MonitorSession::new(reference.as_ref());
    session
        .observe_batch(stream.features())
        .expect("session observes");
    assert_eq!(lifetime(session.stats()), lifetime(&after));
}
