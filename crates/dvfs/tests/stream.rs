//! Seeded-determinism and constant-memory guarantees of
//! [`DvfsCorpusStream`]: the streaming generator must be a pure function of
//! (builder, mix, seed) — bit-identical across independent iterations — and
//! must sustain a million rows without materializing anything beyond one
//! row at a time.

use hmd_data::stream::CorpusStream;
use hmd_data::Label;
use hmd_dvfs::dataset::DvfsCorpusBuilder;
use hmd_dvfs::DvfsCorpusStream;

/// The cheapest valid builder: per-row cost is a 4-interval governor trace,
/// so the million-row sweep stays fast even in debug builds.
fn tiny_builder() -> DvfsCorpusBuilder {
    DvfsCorpusBuilder::new().with_trace_len(4)
}

#[test]
fn same_seed_streams_are_bit_identical() {
    let a = DvfsCorpusStream::full_catalog(tiny_builder(), 7).unwrap();
    let b = DvfsCorpusStream::full_catalog(tiny_builder(), 7).unwrap();
    // Lock-step comparison: no materialized corpus, just two cursors.
    for (i, (ra, rb)) in a.zip(b).take(4096).enumerate() {
        assert_eq!(ra, rb, "row {i} diverged between same-seed streams");
        // Bit-identical, not approximately equal.
        for (x, y) in ra.features.iter().zip(rb.features.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "row {i} differs in bits");
        }
    }
}

#[test]
fn different_seeds_diverge() {
    let a = DvfsCorpusStream::full_catalog(tiny_builder(), 7).unwrap();
    let b = DvfsCorpusStream::full_catalog(tiny_builder(), 8).unwrap();
    assert!(
        a.zip(b).take(64).any(|(ra, rb)| ra.features != rb.features),
        "seeds 7 and 8 produced identical streams"
    );
}

#[test]
fn million_row_stream_folds_in_constant_memory() {
    const ROWS: usize = 1_000_000;
    const CHUNK: usize = 100_000;
    let mut stream = DvfsCorpusStream::known_apps(tiny_builder(), 42).unwrap();
    let width = stream.num_features();

    // Chunked folding: every row is consumed and reduced on the spot; the
    // only state that survives a chunk is a handful of scalars. Spot-check
    // each chunk's statistics so a generator that degenerates mid-stream
    // (NaNs, collapsed labels, wrong width) fails loudly.
    let mut total = 0usize;
    let mut malware = 0usize;
    let mut checksum = 0.0f64;
    for chunk in 0..(ROWS / CHUNK) {
        let mut chunk_sum = 0.0f64;
        let mut chunk_malware = 0usize;
        for record in stream.by_ref().take(CHUNK) {
            assert_eq!(record.features.len(), width);
            let row_sum: f64 = record.features.iter().sum();
            assert!(row_sum.is_finite(), "non-finite row in chunk {chunk}");
            chunk_sum += row_sum;
            if record.label == Label::Malware {
                chunk_malware += 1;
            }
            total += 1;
        }
        assert!(
            chunk_malware > 0 && chunk_malware < CHUNK,
            "chunk {chunk} lost a class: {chunk_malware} malware of {CHUNK}"
        );
        checksum += chunk_sum;
        malware += chunk_malware;
    }
    assert_eq!(total, ROWS, "stream ended early");
    assert!(checksum.is_finite());
    // Round-robin over a fixed mix keeps the label balance exactly stable.
    let malware_fraction = malware as f64 / total as f64;
    assert!(
        (0.2..=0.8).contains(&malware_fraction),
        "label balance degenerated: {malware_fraction:.3}"
    );
}

#[test]
fn prefix_is_stable_under_longer_iteration() {
    // Reading more rows must not change the rows before them: the stream
    // has no lookahead or batch effects.
    let short: Vec<_> = DvfsCorpusStream::full_catalog(tiny_builder(), 3)
        .unwrap()
        .take(32)
        .collect();
    let long: Vec<_> = DvfsCorpusStream::full_catalog(tiny_builder(), 3)
        .unwrap()
        .take(256)
        .collect();
    assert_eq!(short[..], long[..32]);
}
