//! Application catalog: the benign apps and malware families whose behaviour
//! the DVFS simulator reproduces.
//!
//! The original dataset of Chawla et al. was collected from real Android
//! applications and malware samples. Here every application is a behavioural
//! model — a [`WorkloadModel`] phase structure plus the governor it runs
//! under. Applications are divided into *known* families (available for
//! training) and *unknown* families (held out entirely, acting as the paper's
//! zero-day proxies). Unknown families deliberately occupy utilisation/period
//! regimes that no known family covers, so their signatures are
//! out-of-distribution.

use crate::governor::GovernorKind;
use crate::workload::{Phase, WorkloadModel};
use hmd_data::{AppId, Label};
use serde::{Deserialize, Serialize};

/// A simulated application (benign app or malware family).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Stable identifier used in dataset metadata.
    pub id: AppId,
    /// Human-readable name.
    pub name: String,
    /// Ground-truth class.
    pub label: Label,
    /// Whether the application belongs to the known (trainable) bucket.
    pub known: bool,
    /// Behavioural model producing CPU utilisation traces.
    pub workload: WorkloadModel,
    /// Governor the device runs while this application executes.
    pub governor: GovernorKind,
}

impl AppProfile {
    fn new(
        id: u32,
        name: &str,
        label: Label,
        known: bool,
        workload: WorkloadModel,
        governor: GovernorKind,
    ) -> AppProfile {
        AppProfile {
            id: AppId(id),
            name: name.to_string(),
            label,
            known,
            workload,
            governor,
        }
    }
}

/// The full catalog of simulated applications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppCatalog {
    apps: Vec<AppProfile>,
}

impl AppCatalog {
    /// The default catalog: 10 known benign apps, 8 known malware families,
    /// 3 unknown benign apps and 3 unknown malware families.
    #[allow(clippy::vec_init_then_push)]
    pub fn standard() -> AppCatalog {
        let mut apps = Vec::new();

        // -------- known benign applications --------
        apps.push(AppProfile::new(
            1,
            "web_browser",
            Label::Benign,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.55, 8.0).with_noise(0.10).with_spikes(0.05),
                Phase::new(0.12, 25.0).with_noise(0.05),
            ]),
            GovernorKind::Ondemand,
        ));
        apps.push(AppProfile::new(
            2,
            "video_player",
            Label::Benign,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.42, 6.0).with_noise(0.04),
                Phase::new(0.30, 6.0).with_noise(0.04),
            ]),
            GovernorKind::Schedutil,
        ));
        apps.push(AppProfile::new(
            3,
            "music_streaming",
            Label::Benign,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.18, 40.0).with_noise(0.04),
                Phase::new(0.35, 5.0).with_noise(0.06),
            ]),
            GovernorKind::Conservative,
        ));
        apps.push(AppProfile::new(
            4,
            "social_media",
            Label::Benign,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.48, 10.0).with_noise(0.12).with_spikes(0.03),
                Phase::new(0.08, 20.0).with_noise(0.03),
            ]),
            GovernorKind::Ondemand,
        ));
        apps.push(AppProfile::new(
            5,
            "email_client",
            Label::Benign,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.10, 50.0).with_noise(0.03),
                Phase::new(0.40, 4.0).with_noise(0.08),
            ]),
            GovernorKind::Conservative,
        ));
        apps.push(AppProfile::new(
            6,
            "photo_editor",
            Label::Benign,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.72, 12.0).with_noise(0.08),
                Phase::new(0.20, 18.0).with_noise(0.05),
            ]),
            GovernorKind::Schedutil,
        ));
        apps.push(AppProfile::new(
            7,
            "navigation",
            Label::Benign,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.38, 30.0).with_noise(0.06),
                Phase::new(0.55, 8.0).with_noise(0.08),
            ]),
            GovernorKind::Schedutil,
        ));
        apps.push(AppProfile::new(
            8,
            "casual_game",
            Label::Benign,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.65, 25.0).with_noise(0.07).with_spikes(0.02),
                Phase::new(0.25, 10.0).with_noise(0.05),
            ]),
            GovernorKind::Ondemand,
        ));
        apps.push(AppProfile::new(
            9,
            "messenger",
            Label::Benign,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.15, 35.0).with_noise(0.05).with_spikes(0.04),
                Phase::new(0.45, 5.0).with_noise(0.08),
            ]),
            GovernorKind::Conservative,
        ));
        apps.push(AppProfile::new(
            10,
            "camera",
            Label::Benign,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.60, 15.0).with_noise(0.05),
                Phase::new(0.33, 12.0).with_noise(0.05),
            ]),
            GovernorKind::Schedutil,
        ));

        // -------- known malware families --------
        apps.push(AppProfile::new(
            21,
            "cryptominer",
            Label::Malware,
            true,
            WorkloadModel::new(vec![Phase::new(0.97, 200.0).with_noise(0.02)]),
            GovernorKind::Ondemand,
        ));
        apps.push(AppProfile::new(
            22,
            "ransomware",
            Label::Malware,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.92, 40.0).with_noise(0.04),
                Phase::new(0.75, 15.0).with_noise(0.06),
            ]),
            GovernorKind::Ondemand,
        ));
        apps.push(AppProfile::new(
            23,
            "spyware_keylogger",
            Label::Malware,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.06, 60.0).with_noise(0.02).with_spikes(0.10),
                Phase::new(0.28, 3.0).with_noise(0.04),
            ]),
            GovernorKind::Conservative,
        ));
        apps.push(AppProfile::new(
            24,
            "ddos_bot",
            Label::Malware,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.85, 10.0).with_noise(0.05),
                Phase::new(0.05, 10.0).with_noise(0.02),
            ]),
            GovernorKind::Ondemand,
        ));
        apps.push(AppProfile::new(
            25,
            "sms_fraud",
            Label::Malware,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.22, 4.0).with_noise(0.03).with_spikes(0.15),
                Phase::new(0.04, 45.0).with_noise(0.02),
            ]),
            GovernorKind::Conservative,
        ));
        apps.push(AppProfile::new(
            26,
            "adware_clicker",
            Label::Malware,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.50, 3.0).with_noise(0.04).with_spikes(0.20),
                Phase::new(0.10, 6.0).with_noise(0.03),
            ]),
            GovernorKind::Ondemand,
        ));
        apps.push(AppProfile::new(
            27,
            "banking_trojan",
            Label::Malware,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.35, 5.0).with_noise(0.04).with_spikes(0.08),
                Phase::new(0.80, 8.0).with_noise(0.05),
            ]),
            GovernorKind::Schedutil,
        ));
        apps.push(AppProfile::new(
            28,
            "data_exfiltrator",
            Label::Malware,
            true,
            WorkloadModel::new(vec![
                Phase::new(0.68, 60.0).with_noise(0.03),
                Phase::new(0.15, 40.0).with_noise(0.03).with_spikes(0.06),
            ]),
            GovernorKind::Conservative,
        ));

        // -------- unknown (held-out, zero-day proxy) applications --------
        // Every unknown application is a behavioural *hybrid*: it mixes the
        // phase structure of a known benign family with the phase structure
        // of a known malware family (plus governor changes and new phase
        // periods). Their signatures therefore fall in the sparsely trained
        // region between the known clusters: some bootstrap replicates call
        // them benign, others malware, and the vote entropy is high — exactly
        // the epistemic-uncertainty regime the paper uses to flag zero-days.
        apps.push(AppProfile::new(
            41,
            "unknown_video_conference", // video_player blended with ddos_bot bursts
            Label::Benign,
            false,
            WorkloadModel::new(vec![
                Phase::new(0.42, 7.0).with_noise(0.05),
                Phase::new(0.85, 9.0).with_noise(0.05),
                Phase::new(0.05, 9.0).with_noise(0.02),
            ]),
            GovernorKind::Schedutil,
        ));
        apps.push(AppProfile::new(
            42,
            "unknown_ar_game", // casual_game blended with sustained ransomware-like load
            Label::Benign,
            false,
            WorkloadModel::new(vec![
                Phase::new(0.65, 22.0).with_noise(0.07).with_spikes(0.02),
                Phase::new(0.90, 35.0).with_noise(0.05),
                Phase::new(0.25, 9.0).with_noise(0.05),
            ]),
            GovernorKind::Ondemand,
        ));
        apps.push(AppProfile::new(
            43,
            "unknown_file_sync", // music_streaming blended with sms_fraud spike pattern
            Label::Benign,
            false,
            WorkloadModel::new(vec![
                Phase::new(0.18, 38.0).with_noise(0.04).with_spikes(0.14),
                Phase::new(0.23, 4.5).with_noise(0.03).with_spikes(0.12),
            ]),
            GovernorKind::Conservative,
        ));
        apps.push(AppProfile::new(
            44,
            "unknown_gpu_cryptojacker", // cryptominer blended with web_browser idling
            Label::Malware,
            false,
            WorkloadModel::new(vec![
                Phase::new(0.96, 70.0).with_noise(0.03),
                Phase::new(0.54, 8.5).with_noise(0.10).with_spikes(0.05),
                Phase::new(0.12, 24.0).with_noise(0.05),
            ]),
            GovernorKind::Ondemand,
        ));
        apps.push(AppProfile::new(
            45,
            "unknown_wiper", // ransomware bursts blended with email_client idle
            Label::Malware,
            false,
            WorkloadModel::new(vec![
                Phase::new(0.91, 37.0).with_noise(0.04),
                Phase::new(0.10, 48.0).with_noise(0.03),
                Phase::new(0.41, 4.5).with_noise(0.08),
            ]),
            GovernorKind::Conservative,
        ));
        apps.push(AppProfile::new(
            46,
            "unknown_stealth_beacon", // spyware_keylogger blended with navigation cruising
            Label::Malware,
            false,
            WorkloadModel::new(vec![
                Phase::new(0.07, 55.0).with_noise(0.02).with_spikes(0.09),
                Phase::new(0.37, 28.0).with_noise(0.06),
                Phase::new(0.55, 7.5).with_noise(0.08),
            ]),
            GovernorKind::Schedutil,
        ));

        AppCatalog { apps }
    }

    /// All applications.
    pub fn apps(&self) -> &[AppProfile] {
        &self.apps
    }

    /// Applications in the known (trainable) bucket.
    pub fn known_apps(&self) -> Vec<&AppProfile> {
        self.apps.iter().filter(|a| a.known).collect()
    }

    /// Applications in the unknown (held-out) bucket.
    pub fn unknown_apps(&self) -> Vec<&AppProfile> {
        self.apps.iter().filter(|a| !a.known).collect()
    }

    /// Looks up an application by id.
    pub fn get(&self, id: AppId) -> Option<&AppProfile> {
        self.apps.iter().find(|a| a.id == id)
    }

    /// Number of applications in the catalog.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// `true` when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}

impl Default for AppCatalog {
    fn default() -> Self {
        AppCatalog::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_both_classes_in_both_buckets() {
        let catalog = AppCatalog::standard();
        let known = catalog.known_apps();
        let unknown = catalog.unknown_apps();
        assert!(known.iter().any(|a| a.label == Label::Benign));
        assert!(known.iter().any(|a| a.label == Label::Malware));
        assert!(unknown.iter().any(|a| a.label == Label::Benign));
        assert!(unknown.iter().any(|a| a.label == Label::Malware));
        assert_eq!(known.len() + unknown.len(), catalog.len());
    }

    #[test]
    fn app_ids_are_unique() {
        let catalog = AppCatalog::standard();
        let mut ids: Vec<u32> = catalog.apps().iter().map(|a| a.id.0).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate application ids");
    }

    #[test]
    fn lookup_by_id_works() {
        let catalog = AppCatalog::standard();
        let miner = catalog.get(AppId(21)).expect("cryptominer exists");
        assert_eq!(miner.name, "cryptominer");
        assert_eq!(miner.label, Label::Malware);
        assert!(catalog.get(AppId(999)).is_none());
    }

    #[test]
    fn known_bucket_is_larger_than_unknown() {
        let catalog = AppCatalog::standard();
        assert!(catalog.known_apps().len() > catalog.unknown_apps().len());
    }
}
