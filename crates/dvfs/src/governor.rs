//! DVFS governors: the kernel policies that map observed CPU utilisation to a
//! frequency state.
//!
//! Three governor families are modelled after their Linux cpufreq
//! counterparts: `ondemand` (jump to max on high load, proportional
//! otherwise), `conservative` (step up/down gradually) and a simplified
//! `schedutil` (frequency proportional to utilisation with headroom).

use crate::soc::SocConfig;
use serde::{Deserialize, Serialize};

/// A DVFS governor: consumes one utilisation observation per sampling period
/// and returns the next frequency-state index.
pub trait Governor: Send + Sync {
    /// Chooses the next DVFS state given the utilisation (`0.0..=1.0`)
    /// observed during the last sampling period.
    fn next_state(&mut self, utilization: f64, soc: &SocConfig) -> usize;

    /// Resets internal state (current frequency, hysteresis counters) for a
    /// fresh trace.
    fn reset(&mut self, soc: &SocConfig);

    /// Human-readable governor name.
    fn name(&self) -> &'static str;
}

/// Identifier for constructing governors by name (used by app profiles and
/// experiment configs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GovernorKind {
    /// Linux `ondemand`-style governor.
    Ondemand,
    /// Linux `conservative`-style governor.
    Conservative,
    /// Simplified `schedutil`-style governor.
    Schedutil,
}

impl GovernorKind {
    /// Builds a boxed governor of this kind with default parameters.
    pub fn build(self) -> Box<dyn Governor> {
        match self {
            GovernorKind::Ondemand => Box::new(OndemandGovernor::new()),
            GovernorKind::Conservative => Box::new(ConservativeGovernor::new()),
            GovernorKind::Schedutil => Box::new(SchedutilGovernor::new()),
        }
    }
}

/// Linux `ondemand`-style governor.
///
/// When utilisation exceeds `up_threshold` the governor jumps straight to the
/// highest OPP; otherwise it picks the lowest OPP whose capacity covers the
/// observed utilisation, with a small down-hysteresis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OndemandGovernor {
    /// Utilisation above which the governor jumps to the maximum frequency.
    pub up_threshold: f64,
    /// Number of consecutive low-utilisation samples required before scaling
    /// down (sampling-down factor).
    pub sampling_down_factor: u32,
    current: usize,
    low_streak: u32,
}

impl OndemandGovernor {
    /// Creates the governor with the Linux defaults (`up_threshold` 0.8,
    /// sampling-down factor 2).
    pub fn new() -> OndemandGovernor {
        OndemandGovernor {
            up_threshold: 0.8,
            sampling_down_factor: 2,
            current: 0,
            low_streak: 0,
        }
    }
}

impl Default for OndemandGovernor {
    fn default() -> Self {
        OndemandGovernor::new()
    }
}

impl Governor for OndemandGovernor {
    fn next_state(&mut self, utilization: f64, soc: &SocConfig) -> usize {
        let utilization = utilization.clamp(0.0, 1.0);
        if utilization >= self.up_threshold {
            self.low_streak = 0;
            self.current = soc.max_state();
        } else {
            let target = soc.state_for_capacity(utilization / self.up_threshold);
            if target < self.current {
                self.low_streak += 1;
                if self.low_streak >= self.sampling_down_factor {
                    self.current = target;
                    self.low_streak = 0;
                }
            } else {
                self.current = target;
                self.low_streak = 0;
            }
        }
        self.current
    }

    fn reset(&mut self, _soc: &SocConfig) {
        self.current = 0;
        self.low_streak = 0;
    }

    fn name(&self) -> &'static str {
        "ondemand"
    }
}

/// Linux `conservative`-style governor: frequency moves at most one OPP per
/// sampling period, up when utilisation exceeds `up_threshold`, down when it
/// falls below `down_threshold`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConservativeGovernor {
    /// Utilisation above which the governor steps one OPP up.
    pub up_threshold: f64,
    /// Utilisation below which the governor steps one OPP down.
    pub down_threshold: f64,
    current: usize,
}

impl ConservativeGovernor {
    /// Creates the governor with thresholds 0.75 / 0.35.
    pub fn new() -> ConservativeGovernor {
        ConservativeGovernor {
            up_threshold: 0.75,
            down_threshold: 0.35,
            current: 0,
        }
    }
}

impl Default for ConservativeGovernor {
    fn default() -> Self {
        ConservativeGovernor::new()
    }
}

impl Governor for ConservativeGovernor {
    fn next_state(&mut self, utilization: f64, soc: &SocConfig) -> usize {
        let utilization = utilization.clamp(0.0, 1.0);
        if utilization > self.up_threshold && self.current < soc.max_state() {
            self.current += 1;
        } else if utilization < self.down_threshold && self.current > 0 {
            self.current -= 1;
        }
        self.current
    }

    fn reset(&mut self, _soc: &SocConfig) {
        self.current = 0;
    }

    fn name(&self) -> &'static str {
        "conservative"
    }
}

/// Simplified `schedutil` governor: target frequency is utilisation times the
/// maximum capacity with 25 % headroom, smoothed with an exponential moving
/// average of the utilisation signal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedutilGovernor {
    /// Headroom multiplier applied to the utilisation (Linux uses 1.25).
    pub headroom: f64,
    /// Exponential-moving-average coefficient of the utilisation filter.
    pub smoothing: f64,
    filtered: f64,
    current: usize,
}

impl SchedutilGovernor {
    /// Creates the governor with 1.25 headroom and 0.5 smoothing.
    pub fn new() -> SchedutilGovernor {
        SchedutilGovernor {
            headroom: 1.25,
            smoothing: 0.5,
            filtered: 0.0,
            current: 0,
        }
    }
}

impl Default for SchedutilGovernor {
    fn default() -> Self {
        SchedutilGovernor::new()
    }
}

impl Governor for SchedutilGovernor {
    fn next_state(&mut self, utilization: f64, soc: &SocConfig) -> usize {
        let utilization = utilization.clamp(0.0, 1.0);
        self.filtered = self.smoothing * utilization + (1.0 - self.smoothing) * self.filtered;
        self.current = soc.state_for_capacity(self.filtered * self.headroom);
        self.current
    }

    fn reset(&mut self, _soc: &SocConfig) {
        self.filtered = 0.0;
        self.current = 0;
    }

    fn name(&self) -> &'static str {
        "schedutil"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn soc() -> SocConfig {
        SocConfig::snapdragon_like()
    }

    #[test]
    fn ondemand_jumps_to_max_on_high_load() {
        let soc = soc();
        let mut gov = OndemandGovernor::new();
        gov.reset(&soc);
        assert_eq!(gov.next_state(0.95, &soc), soc.max_state());
    }

    #[test]
    fn ondemand_scales_down_with_hysteresis() {
        let soc = soc();
        let mut gov = OndemandGovernor::new();
        gov.reset(&soc);
        gov.next_state(0.95, &soc);
        // first low sample keeps the previous frequency
        assert_eq!(gov.next_state(0.05, &soc), soc.max_state());
        // second consecutive low sample finally scales down
        assert!(gov.next_state(0.05, &soc) < soc.max_state());
    }

    #[test]
    fn conservative_moves_one_step_at_a_time() {
        let soc = soc();
        let mut gov = ConservativeGovernor::new();
        gov.reset(&soc);
        assert_eq!(gov.next_state(1.0, &soc), 1);
        assert_eq!(gov.next_state(1.0, &soc), 2);
        assert_eq!(gov.next_state(0.1, &soc), 1);
        assert_eq!(gov.next_state(0.5, &soc), 1, "mid load holds frequency");
    }

    #[test]
    fn conservative_saturates_at_bounds() {
        let soc = soc();
        let mut gov = ConservativeGovernor::new();
        gov.reset(&soc);
        for _ in 0..20 {
            gov.next_state(1.0, &soc);
        }
        assert_eq!(gov.next_state(1.0, &soc), soc.max_state());
        for _ in 0..20 {
            gov.next_state(0.0, &soc);
        }
        assert_eq!(gov.next_state(0.0, &soc), 0);
    }

    #[test]
    fn schedutil_tracks_utilization_monotonically() {
        let soc = soc();
        let mut gov = SchedutilGovernor::new();
        gov.reset(&soc);
        let low = (0..10).map(|_| gov.next_state(0.2, &soc)).last().unwrap();
        gov.reset(&soc);
        let high = (0..10).map(|_| gov.next_state(0.9, &soc)).last().unwrap();
        assert!(
            high > low,
            "high load ({high}) should exceed low load ({low})"
        );
    }

    #[test]
    fn reset_returns_to_lowest_state() {
        let soc = soc();
        for kind in [
            GovernorKind::Ondemand,
            GovernorKind::Conservative,
            GovernorKind::Schedutil,
        ] {
            let mut gov = kind.build();
            for _ in 0..5 {
                gov.next_state(1.0, &soc);
            }
            gov.reset(&soc);
            let state = gov.next_state(0.0, &soc);
            assert!(state <= 1, "{} should rest near the bottom", gov.name());
        }
    }

    #[test]
    fn governor_kind_builds_named_governors() {
        assert_eq!(GovernorKind::Ondemand.build().name(), "ondemand");
        assert_eq!(GovernorKind::Conservative.build().name(), "conservative");
        assert_eq!(GovernorKind::Schedutil.build().name(), "schedutil");
    }
}
