//! DVFS state traces: the raw hardware signature of the DVFS-based HMD.

use crate::governor::Governor;
use crate::soc::SocConfig;
use crate::workload::WorkloadModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A time series of DVFS state indices recorded at the governor's sampling
/// period.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvfsTrace {
    states: Vec<usize>,
    num_states: usize,
}

impl DvfsTrace {
    /// Creates a trace from raw state indices.
    ///
    /// # Panics
    ///
    /// Panics if any state index is `>= num_states` or `num_states == 0`.
    pub fn new(states: Vec<usize>, num_states: usize) -> DvfsTrace {
        assert!(num_states > 0, "a trace needs at least one DVFS state");
        assert!(
            states.iter().all(|&s| s < num_states),
            "state index out of range"
        );
        DvfsTrace { states, num_states }
    }

    /// Simulates a trace: runs the workload's utilisation trace through the
    /// governor on the given SoC.
    pub fn simulate<R: Rng>(
        workload: &WorkloadModel,
        governor: &mut dyn Governor,
        soc: &SocConfig,
        len: usize,
        rng: &mut R,
    ) -> DvfsTrace {
        governor.reset(soc);
        let utilization = workload.utilization_trace(len, rng);
        let states = utilization
            .iter()
            .map(|&u| governor.next_state(u, soc))
            .collect();
        DvfsTrace::new(states, soc.num_states())
    }

    /// The state index sequence.
    pub fn states(&self) -> &[usize] {
        &self.states
    }

    /// Number of distinct DVFS states of the SoC that produced the trace.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Trace length in sampling periods.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Fraction of time spent in each DVFS state (the state-occupancy
    /// histogram).
    pub fn occupancy(&self) -> Vec<f64> {
        let mut histogram = vec![0.0; self.num_states];
        if self.states.is_empty() {
            return histogram;
        }
        for &s in &self.states {
            histogram[s] += 1.0;
        }
        for h in &mut histogram {
            *h /= self.states.len() as f64;
        }
        histogram
    }

    /// Row-normalised state transition matrix (`num_states × num_states`,
    /// flattened row-major). Rows that never occur are left all-zero.
    pub fn transition_matrix(&self) -> Vec<f64> {
        let n = self.num_states;
        let mut counts = vec![0.0; n * n];
        for w in self.states.windows(2) {
            counts[w[0] * n + w[1]] += 1.0;
        }
        for row in 0..n {
            let total: f64 = counts[row * n..(row + 1) * n].iter().sum();
            if total > 0.0 {
                for c in 0..n {
                    counts[row * n + c] /= total;
                }
            }
        }
        counts
    }

    /// Number of state changes divided by the trace length (switching
    /// activity, a proxy for how often the governor re-targets).
    pub fn switching_rate(&self) -> f64 {
        if self.states.len() < 2 {
            return 0.0;
        }
        let switches = self.states.windows(2).filter(|w| w[0] != w[1]).count();
        switches as f64 / (self.states.len() - 1) as f64
    }

    /// Mean state index normalised to `[0, 1]`.
    pub fn mean_level(&self) -> f64 {
        if self.states.is_empty() || self.num_states <= 1 {
            return 0.0;
        }
        let sum: usize = self.states.iter().sum();
        sum as f64 / (self.states.len() as f64 * (self.num_states - 1) as f64)
    }

    /// State indices as `f64` values (used by spectral feature extraction).
    pub fn as_signal(&self) -> Vec<f64> {
        self.states.iter().map(|&s| s as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::OndemandGovernor;
    use crate::workload::Phase;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn demo_trace() -> DvfsTrace {
        DvfsTrace::new(vec![0, 0, 1, 2, 2, 2, 1, 0], 3)
    }

    #[test]
    fn occupancy_sums_to_one() {
        let occ = demo_trace().occupancy();
        assert_eq!(occ.len(), 3);
        assert!((occ.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((occ[2] - 3.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn transition_matrix_rows_are_normalised() {
        let tm = demo_trace().transition_matrix();
        for row in 0..3 {
            let sum: f64 = tm[row * 3..(row + 1) * 3].iter().sum();
            assert!(
                sum == 0.0 || (sum - 1.0).abs() < 1e-12,
                "row {row} sums to {sum}"
            );
        }
    }

    #[test]
    fn switching_rate_counts_changes() {
        let trace = demo_trace();
        // transitions: 0->0,0->1,1->2,2->2,2->2,2->1,1->0 => 4 changes / 7
        assert!((trace.switching_rate() - 4.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn mean_level_is_normalised() {
        let trace = demo_trace();
        let level = trace.mean_level();
        assert!((0.0..=1.0).contains(&level));
    }

    #[test]
    #[should_panic(expected = "state index out of range")]
    fn out_of_range_states_panic() {
        let _ = DvfsTrace::new(vec![0, 5], 3);
    }

    #[test]
    fn simulate_produces_full_length_trace() {
        let soc = SocConfig::snapdragon_like();
        let workload = WorkloadModel::new(vec![Phase::new(0.9, 10.0), Phase::new(0.1, 10.0)]);
        let mut governor = OndemandGovernor::new();
        let mut rng = StdRng::seed_from_u64(0);
        let trace = DvfsTrace::simulate(&workload, &mut governor, &soc, 300, &mut rng);
        assert_eq!(trace.len(), 300);
        assert_eq!(trace.num_states(), soc.num_states());
        // a bursty workload should visit both low and high states
        let occ = trace.occupancy();
        assert!(occ[soc.max_state()] > 0.05);
        assert!(occ[0] + occ[1] > 0.05);
    }
}
