//! DVFS corpus generation: simulating signatures for every application in the
//! catalog and assembling the paper's train / known-test / unknown split
//! (Table I, DVFS block: 2100 / 700 / 284 samples).

use crate::apps::{AppCatalog, AppProfile};
use crate::features::FeatureExtractor;
use crate::soc::SocConfig;
use crate::trace::DvfsTrace;
use hmd_data::split::{known_unknown_split, KnownUnknownSplit};
use hmd_data::{DataError, Dataset, Matrix, SampleMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Builder for DVFS signature corpora.
///
/// # Example
///
/// ```
/// use hmd_dvfs::dataset::DvfsCorpusBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let split = DvfsCorpusBuilder::new()
///     .with_samples_per_app(4)
///     .with_trace_len(128)
///     .build_split(7)?;
/// assert_eq!(split.train.num_features(), split.unknown.num_features());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DvfsCorpusBuilder {
    /// SoC whose governor and OPP table produce the traces.
    pub soc: SocConfig,
    /// Feature extractor applied to every trace.
    pub extractor: FeatureExtractor,
    /// Signatures generated per known application.
    pub samples_per_known_app: usize,
    /// Signatures generated per unknown application.
    pub samples_per_unknown_app: usize,
    /// Trace length in governor sampling periods.
    pub trace_len: usize,
    /// Fraction of known signatures held out as the known test set.
    pub test_fraction: f64,
}

impl DvfsCorpusBuilder {
    /// A small corpus suitable for unit and integration tests
    /// (12 samples per known app, 8 per unknown app, 256-sample traces).
    pub fn new() -> DvfsCorpusBuilder {
        DvfsCorpusBuilder {
            soc: SocConfig::snapdragon_like(),
            extractor: FeatureExtractor::new(),
            samples_per_known_app: 12,
            samples_per_unknown_app: 8,
            trace_len: 256,
            test_fraction: 0.25,
        }
    }

    /// The corpus scale of the paper's Table I: 18 known applications ×
    /// 156 samples ≈ 2800 known signatures (2100 train / 700 test at a 25 %
    /// split) and 6 unknown applications × 47 ≈ 284 unknown signatures, with
    /// 1024-sample traces.
    pub fn paper_scale() -> DvfsCorpusBuilder {
        DvfsCorpusBuilder {
            soc: SocConfig::snapdragon_like(),
            extractor: FeatureExtractor::new(),
            samples_per_known_app: 156,
            samples_per_unknown_app: 47,
            trace_len: 1024,
            test_fraction: 0.25,
        }
    }

    /// A mid-sized corpus for benchmarks that need paper-shaped results in
    /// seconds rather than minutes.
    pub fn bench_scale() -> DvfsCorpusBuilder {
        DvfsCorpusBuilder {
            soc: SocConfig::snapdragon_like(),
            extractor: FeatureExtractor::new(),
            samples_per_known_app: 40,
            samples_per_unknown_app: 16,
            trace_len: 512,
            test_fraction: 0.25,
        }
    }

    /// Sets both per-app sample counts to the same value.
    pub fn with_samples_per_app(mut self, n: usize) -> Self {
        self.samples_per_known_app = n;
        self.samples_per_unknown_app = n;
        self
    }

    /// Sets the trace length (governor sampling periods per signature).
    pub fn with_trace_len(mut self, len: usize) -> Self {
        self.trace_len = len;
        self
    }

    /// Sets the known-test fraction.
    pub fn with_test_fraction(mut self, fraction: f64) -> Self {
        self.test_fraction = fraction;
        self
    }

    /// Generates the feature vector of a single fresh signature for one
    /// application (used by the online-monitoring example).
    pub fn simulate_signature<R: Rng>(&self, app: &AppProfile, rng: &mut R) -> Vec<f64> {
        let mut governor = app.governor.build();
        let trace = DvfsTrace::simulate(
            &app.workload,
            governor.as_mut(),
            &self.soc,
            self.trace_len,
            rng,
        );
        self.extractor.extract(&trace)
    }

    /// Generates the full corpus (all applications, with per-sample
    /// application metadata).
    ///
    /// # Errors
    ///
    /// Returns a [`DataError`] if the generated matrix is inconsistent, which
    /// indicates a bug rather than a user error.
    pub fn build_corpus(&self, seed: u64) -> Result<Dataset, DataError> {
        let catalog = AppCatalog::standard();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut meta = Vec::new();
        for app in catalog.apps() {
            let count = if app.known {
                self.samples_per_known_app
            } else {
                self.samples_per_unknown_app
            };
            for _ in 0..count {
                rows.push(self.simulate_signature(app, &mut rng));
                labels.push(app.label);
                meta.push(if app.known {
                    SampleMeta::known(app.id)
                } else {
                    SampleMeta::unknown(app.id)
                });
            }
        }
        let features = Matrix::from_rows(&rows)?;
        let mut dataset = Dataset::with_meta(features, labels, meta)?;
        dataset.set_feature_names(self.extractor.feature_names(self.soc.num_states()))?;
        Ok(dataset)
    }

    /// Generates the corpus and splits it into train / known-test / unknown.
    ///
    /// # Errors
    ///
    /// Propagates corpus-generation and splitting errors.
    pub fn build_split(&self, seed: u64) -> Result<KnownUnknownSplit, DataError> {
        let corpus = self.build_corpus(seed)?;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        known_unknown_split(&corpus, self.test_fraction, &mut rng)
    }
}

impl Default for DvfsCorpusBuilder {
    fn default() -> Self {
        DvfsCorpusBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Label;

    #[test]
    fn corpus_has_expected_size_and_metadata() {
        let builder = DvfsCorpusBuilder::new()
            .with_samples_per_app(5)
            .with_trace_len(128);
        let corpus = builder.build_corpus(1).unwrap();
        let catalog = AppCatalog::standard();
        assert_eq!(corpus.len(), catalog.len() * 5);
        assert_eq!(corpus.meta().len(), corpus.len());
        assert_eq!(
            corpus.num_features(),
            builder.extractor.num_features(builder.soc.num_states())
        );
    }

    #[test]
    fn split_respects_unknown_apps() {
        let split = DvfsCorpusBuilder::new()
            .with_samples_per_app(6)
            .with_trace_len(128)
            .build_split(3)
            .unwrap();
        assert!(split.unknown.meta().iter().all(|m| m.unknown_app));
        assert!(split.train.meta().iter().all(|m| !m.unknown_app));
        assert!(split.test_known.meta().iter().all(|m| !m.unknown_app));
        // both classes present in training data
        let counts = split.train.class_counts();
        assert!(counts[0] > 0 && counts[1] > 0);
    }

    #[test]
    fn paper_scale_matches_table_one_proportions() {
        let builder = DvfsCorpusBuilder::paper_scale();
        let known_total = 18 * builder.samples_per_known_app;
        let unknown_total = 6 * builder.samples_per_unknown_app;
        // Table I: 2100 train + 700 test = 2800 known, 284 unknown.
        assert_eq!(known_total, 2808);
        assert_eq!(unknown_total, 282);
        assert!((builder.test_fraction - 0.25).abs() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let builder = DvfsCorpusBuilder::new()
            .with_samples_per_app(3)
            .with_trace_len(64);
        let a = builder.build_corpus(9).unwrap();
        let b = builder.build_corpus(9).unwrap();
        assert_eq!(a, b);
        let c = builder.build_corpus(10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn benign_and_malware_signatures_are_distinguishable_on_average() {
        // Centroid distance between classes should be clearly nonzero: the
        // DVFS dataset is the paper's "disjoint classes" example.
        let corpus = DvfsCorpusBuilder::new()
            .with_samples_per_app(8)
            .with_trace_len(256)
            .build_corpus(5)
            .unwrap();
        let features = corpus.features();
        let mut benign = vec![0.0; corpus.num_features()];
        let mut malware = vec![0.0; corpus.num_features()];
        let mut nb = 0.0;
        let mut nm = 0.0;
        for i in 0..corpus.len() {
            let row = features.row(i);
            if corpus.labels()[i] == Label::Malware {
                for (a, b) in malware.iter_mut().zip(row) {
                    *a += b;
                }
                nm += 1.0;
            } else {
                for (a, b) in benign.iter_mut().zip(row) {
                    *a += b;
                }
                nb += 1.0;
            }
        }
        let dist: f64 = benign
            .iter()
            .zip(&malware)
            .map(|(b, m)| (b / nb - m / nm).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 0.1, "class centroids too close: {dist}");
    }
}
