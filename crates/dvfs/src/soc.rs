//! System-on-chip model: the frequency/voltage operating-performance-point
//! (OPP) table the governor switches between.

use serde::{Deserialize, Serialize};

/// Static description of the simulated SoC's DVFS capabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SocConfig {
    /// Available CPU frequencies in MHz, ascending.
    pub frequencies_mhz: Vec<u32>,
    /// Governor sampling period in milliseconds (how often the governor
    /// re-evaluates utilisation and picks an OPP).
    pub sample_period_ms: u32,
}

impl SocConfig {
    /// A Snapdragon-like big-core OPP table with 8 frequency states and a
    /// 20 ms governor sampling period.
    pub fn snapdragon_like() -> SocConfig {
        SocConfig {
            frequencies_mhz: vec![300, 650, 980, 1200, 1440, 1800, 2100, 2400],
            sample_period_ms: 20,
        }
    }

    /// A smaller IoT-class SoC with 5 frequency states.
    pub fn iot_class() -> SocConfig {
        SocConfig {
            frequencies_mhz: vec![200, 400, 600, 800, 1000],
            sample_period_ms: 50,
        }
    }

    /// Number of DVFS states (OPPs).
    pub fn num_states(&self) -> usize {
        self.frequencies_mhz.len()
    }

    /// Index of the highest OPP.
    pub fn max_state(&self) -> usize {
        self.num_states().saturating_sub(1)
    }

    /// Frequency of state `index` normalised to the maximum frequency
    /// (`1.0` for the top OPP).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn relative_capacity(&self, index: usize) -> f64 {
        let max = *self
            .frequencies_mhz
            .last()
            // hmd-lint: allow(no-panic-in-lib) documented under `# Panics`;
            // the indexing on the next line panics on the same misuse, and
            // every constructor ships a non-empty OPP table.
            .expect("OPP table must not be empty") as f64;
        self.frequencies_mhz[index] as f64 / max
    }

    /// Lowest state whose capacity covers the requested utilisation of the
    /// maximum frequency (used by schedutil-style governors).
    pub fn state_for_capacity(&self, capacity: f64) -> usize {
        let capacity = capacity.clamp(0.0, 1.0);
        for (i, _) in self.frequencies_mhz.iter().enumerate() {
            if self.relative_capacity(i) + 1e-9 >= capacity {
                return i;
            }
        }
        self.max_state()
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig::snapdragon_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapdragon_table_is_ascending() {
        let soc = SocConfig::snapdragon_like();
        assert!(soc.frequencies_mhz.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(soc.num_states(), 8);
        assert_eq!(soc.max_state(), 7);
    }

    #[test]
    fn relative_capacity_is_one_at_top_state() {
        let soc = SocConfig::default();
        assert!((soc.relative_capacity(soc.max_state()) - 1.0).abs() < 1e-12);
        assert!(soc.relative_capacity(0) < 0.2);
    }

    #[test]
    fn state_for_capacity_picks_lowest_sufficient_state() {
        let soc = SocConfig::iot_class();
        assert_eq!(soc.state_for_capacity(0.0), 0);
        assert_eq!(soc.state_for_capacity(1.0), soc.max_state());
        // 0.55 needs at least 600 MHz out of 1000 MHz
        assert_eq!(soc.state_for_capacity(0.55), 2);
        // out-of-range inputs are clamped
        assert_eq!(soc.state_for_capacity(7.0), soc.max_state());
        assert_eq!(soc.state_for_capacity(-3.0), 0);
    }
}
