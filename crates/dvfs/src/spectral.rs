//! Spectral features of DVFS state traces.
//!
//! The DVFS-based HMD of Chawla et al. derives part of its signature from the
//! frequency content of the DVFS time series (periodic workloads such as
//! video playback or repeated encryption bursts leave characteristic peaks).
//! This module provides a naive discrete Fourier transform and band-energy
//! summarisation — O(n·k) for `k` retained bins, which is ample for the
//! trace lengths used here.

/// Magnitude of the first `num_bins` DFT coefficients (excluding the DC term)
/// of `signal`, normalised by the signal length.
///
/// Returns all zeros for signals shorter than 2 samples.
pub fn dft_magnitudes(signal: &[f64], num_bins: usize) -> Vec<f64> {
    let n = signal.len();
    let mut magnitudes = vec![0.0; num_bins];
    if n < 2 {
        return magnitudes;
    }
    let mean = signal.iter().sum::<f64>() / n as f64;
    for (bin, magnitude) in magnitudes.iter_mut().enumerate() {
        let k = bin + 1; // skip DC
        let mut re = 0.0;
        let mut im = 0.0;
        for (t, &x) in signal.iter().enumerate() {
            let angle = -2.0 * std::f64::consts::PI * (k as f64) * (t as f64) / (n as f64);
            let centred = x - mean;
            re += centred * angle.cos();
            im += centred * angle.sin();
        }
        *magnitude = (re * re + im * im).sqrt() / n as f64;
    }
    magnitudes
}

/// Aggregates DFT magnitudes into `num_bands` equally wide energy bands
/// (sum of squared magnitudes per band).
pub fn band_energies(signal: &[f64], num_bins: usize, num_bands: usize) -> Vec<f64> {
    let magnitudes = dft_magnitudes(signal, num_bins);
    let mut bands = vec![0.0; num_bands];
    if num_bands == 0 || magnitudes.is_empty() {
        return bands;
    }
    let per_band = (magnitudes.len() as f64 / num_bands as f64).ceil() as usize;
    for (i, m) in magnitudes.iter().enumerate() {
        let band = (i / per_band.max(1)).min(num_bands - 1);
        bands[band] += m * m;
    }
    bands
}

/// Index (1-based bin number) of the dominant non-DC frequency component.
pub fn dominant_frequency_bin(signal: &[f64], num_bins: usize) -> usize {
    let magnitudes = dft_magnitudes(signal, num_bins);
    magnitudes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i + 1)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(freq_cycles: f64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|t| (2.0 * std::f64::consts::PI * freq_cycles * t as f64 / len as f64).sin())
            .collect()
    }

    #[test]
    fn pure_tone_concentrates_in_its_bin() {
        let signal = sine(5.0, 256);
        let mags = dft_magnitudes(&signal, 20);
        let peak_bin = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak_bin + 1, 5);
        assert_eq!(dominant_frequency_bin(&signal, 20), 5);
    }

    #[test]
    fn constant_signal_has_no_spectral_energy() {
        let signal = vec![3.0; 128];
        let mags = dft_magnitudes(&signal, 10);
        assert!(mags.iter().all(|m| m.abs() < 1e-9));
    }

    #[test]
    fn short_signals_return_zeros() {
        assert_eq!(dft_magnitudes(&[1.0], 4), vec![0.0; 4]);
        assert_eq!(band_energies(&[], 4, 2), vec![0.0; 2]);
    }

    #[test]
    fn band_energies_follow_tone_location() {
        let low_tone = sine(2.0, 256);
        let high_tone = sine(18.0, 256);
        let low_bands = band_energies(&low_tone, 20, 4);
        let high_bands = band_energies(&high_tone, 20, 4);
        assert!(low_bands[0] > low_bands[3]);
        assert!(high_bands[3] > high_bands[0]);
    }

    #[test]
    fn band_count_is_respected() {
        let signal = sine(3.0, 64);
        assert_eq!(band_energies(&signal, 16, 4).len(), 4);
        assert_eq!(band_energies(&signal, 16, 0).len(), 0);
    }
}
