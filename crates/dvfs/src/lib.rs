//! DVFS (Dynamic Voltage and Frequency Scaling) power-management simulator
//! and signature dataset generator.
//!
//! The paper's first HMD (Chawla et al., *Securing IoT Devices using Dynamic
//! Power Management*) classifies Android workloads from the time series of
//! DVFS states the power-management governor visits while the workload runs.
//! The original dataset was collected on physical Snapdragon devices; this
//! crate substitutes a behavioural simulator that preserves the properties
//! the paper's analysis depends on:
//!
//! * each application family drives the governor through a *characteristic*
//!   pattern of frequency states (disjoint benign/malware classes), and
//! * applications held out as "unknown" have behaviour parameters outside the
//!   training families' ranges, so their signatures are out-of-distribution.
//!
//! The pipeline mirrors Fig. 1 of the paper:
//!
//! ```text
//! workload model → CPU utilisation trace → governor → DVFS state trace
//!                → feature extraction → signature vector
//! ```
//!
//! # Example
//!
//! ```
//! use hmd_dvfs::dataset::DvfsCorpusBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let split = DvfsCorpusBuilder::new()
//!     .with_samples_per_app(6)
//!     .with_trace_len(256)
//!     .build_split(42)?;
//! assert!(split.train.len() > 0);
//! assert!(split.unknown.len() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod apps;
pub mod dataset;
pub mod features;
pub mod governor;
pub mod soc;
pub mod spectral;
pub mod stream;
pub mod trace;
pub mod workload;

pub use apps::{AppCatalog, AppProfile};
pub use dataset::DvfsCorpusBuilder;
pub use features::FeatureExtractor;
pub use governor::{
    ConservativeGovernor, Governor, GovernorKind, OndemandGovernor, SchedutilGovernor,
};
pub use soc::SocConfig;
pub use stream::DvfsCorpusStream;
pub use trace::DvfsTrace;
pub use workload::{Phase, WorkloadModel};
