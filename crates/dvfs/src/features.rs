//! Feature extraction from DVFS traces.
//!
//! Mirrors the "Feature Extraction" stage of the HMD pipeline in Fig. 1: a
//! DVFS state trace becomes a fixed-length signature vector combining
//! state-occupancy, transition, statistical and spectral descriptors.

use crate::spectral::band_energies;
use crate::trace::DvfsTrace;
use serde::{Deserialize, Serialize};

/// Configuration of the DVFS signature extractor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureExtractor {
    /// Number of DFT bins evaluated for the spectral descriptors.
    pub spectral_bins: usize,
    /// Number of spectral energy bands included in the signature.
    pub spectral_bands: usize,
    /// Include the full transition-matrix diagonal (per-state dwell
    /// probabilities) in addition to aggregate transition statistics.
    pub include_dwell_profile: bool,
}

impl FeatureExtractor {
    /// Default extractor: 32 DFT bins aggregated into 4 bands, dwell profile
    /// included.
    pub fn new() -> FeatureExtractor {
        FeatureExtractor {
            spectral_bins: 32,
            spectral_bands: 4,
            include_dwell_profile: true,
        }
    }

    /// Human-readable names of the extracted features, in output order.
    pub fn feature_names(&self, num_states: usize) -> Vec<String> {
        let mut names: Vec<String> = (0..num_states).map(|s| format!("occupancy_s{s}")).collect();
        names.push("mean_level".into());
        names.push("level_std".into());
        names.push("level_skewness".into());
        names.push("level_kurtosis".into());
        names.push("switching_rate".into());
        names.push("transition_entropy".into());
        names.push("mean_dwell".into());
        if self.include_dwell_profile {
            names.extend((0..num_states).map(|s| format!("self_transition_s{s}")));
        }
        names.extend((0..self.spectral_bands).map(|b| format!("band_energy_{b}")));
        names
    }

    /// Number of features produced for a trace with `num_states` DVFS states.
    pub fn num_features(&self, num_states: usize) -> usize {
        self.feature_names(num_states).len()
    }

    /// Extracts the signature vector of a trace.
    pub fn extract(&self, trace: &DvfsTrace) -> Vec<f64> {
        let num_states = trace.num_states();
        let mut features = Vec::with_capacity(self.num_features(num_states));

        // 1. state occupancy histogram
        features.extend(trace.occupancy());

        // 2. statistical moments of the (normalised) state level signal
        let signal = trace.as_signal();
        let (mean, std, skew, kurt) = moments(&signal);
        let scale = (num_states.saturating_sub(1)).max(1) as f64;
        features.push(mean / scale);
        features.push(std / scale);
        features.push(skew);
        features.push(kurt);

        // 3. transition statistics
        features.push(trace.switching_rate());
        let tm = trace.transition_matrix();
        features.push(transition_entropy(&tm, num_states));
        features.push(mean_dwell(trace));
        if self.include_dwell_profile {
            for s in 0..num_states {
                features.push(tm[s * num_states + s]);
            }
        }

        // 4. spectral band energies
        features.extend(band_energies(
            &signal,
            self.spectral_bins,
            self.spectral_bands,
        ));

        features
    }
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        FeatureExtractor::new()
    }
}

/// Mean, standard deviation, skewness and excess kurtosis of a signal.
/// Degenerate signals (constant or too short) report zero higher moments.
fn moments(signal: &[f64]) -> (f64, f64, f64, f64) {
    let n = signal.len() as f64;
    if signal.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let mean = signal.iter().sum::<f64>() / n;
    let var = signal.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let std = var.sqrt();
    if std < 1e-12 {
        return (mean, 0.0, 0.0, 0.0);
    }
    let skew = signal
        .iter()
        .map(|x| ((x - mean) / std).powi(3))
        .sum::<f64>()
        / n;
    let kurt = signal
        .iter()
        .map(|x| ((x - mean) / std).powi(4))
        .sum::<f64>()
        / n
        - 3.0;
    (mean, std, skew, kurt)
}

/// Average Shannon entropy (bits) of the rows of the transition matrix,
/// weighted equally over rows that occur.
fn transition_entropy(transition_matrix: &[f64], num_states: usize) -> f64 {
    let mut total = 0.0;
    let mut active_rows = 0usize;
    for row in 0..num_states {
        let slice = &transition_matrix[row * num_states..(row + 1) * num_states];
        let row_sum: f64 = slice.iter().sum();
        if row_sum <= 0.0 {
            continue;
        }
        active_rows += 1;
        let mut h = 0.0;
        for &p in slice {
            if p > 0.0 {
                h -= p * p.log2();
            }
        }
        total += h;
    }
    if active_rows == 0 {
        0.0
    } else {
        total / active_rows as f64
    }
}

/// Mean run length (consecutive samples in the same state), normalised by the
/// trace length.
fn mean_dwell(trace: &DvfsTrace) -> f64 {
    let states = trace.states();
    if states.is_empty() {
        return 0.0;
    }
    let mut runs = 1usize;
    for w in states.windows(2) {
        if w[0] != w[1] {
            runs += 1;
        }
    }
    (states.len() as f64 / runs as f64) / states.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::OndemandGovernor;
    use crate::soc::SocConfig;
    use crate::workload::{Phase, WorkloadModel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace_for(mean_util: f64, seed: u64) -> DvfsTrace {
        let soc = SocConfig::snapdragon_like();
        let workload = WorkloadModel::new(vec![Phase::new(mean_util, 20.0)]);
        let mut governor = OndemandGovernor::new();
        let mut rng = StdRng::seed_from_u64(seed);
        DvfsTrace::simulate(&workload, &mut governor, &soc, 512, &mut rng)
    }

    #[test]
    fn feature_count_matches_names() {
        let extractor = FeatureExtractor::new();
        let trace = trace_for(0.5, 1);
        let features = extractor.extract(&trace);
        assert_eq!(features.len(), extractor.num_features(trace.num_states()));
        assert_eq!(
            extractor.feature_names(trace.num_states()).len(),
            features.len()
        );
    }

    #[test]
    fn features_are_finite() {
        let extractor = FeatureExtractor::new();
        for seed in 0..5 {
            let trace = trace_for(0.3 + 0.1 * seed as f64, seed);
            assert!(extractor.extract(&trace).iter().all(|f| f.is_finite()));
        }
    }

    #[test]
    fn high_and_low_load_produce_different_signatures() {
        let extractor = FeatureExtractor::new();
        let idle = extractor.extract(&trace_for(0.05, 2));
        let busy = extractor.extract(&trace_for(0.95, 3));
        let distance: f64 = idle
            .iter()
            .zip(&busy)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(distance > 0.5, "signatures too close: {distance}");
    }

    #[test]
    fn constant_trace_has_zero_switching_features() {
        let extractor = FeatureExtractor::new();
        let trace = DvfsTrace::new(vec![3; 100], 8);
        let features = extractor.extract(&trace);
        let names = extractor.feature_names(8);
        let idx = names.iter().position(|n| n == "switching_rate").unwrap();
        assert_eq!(features[idx], 0.0);
        let occ_idx = 3; // occupancy_s3
        assert_eq!(features[occ_idx], 1.0);
    }

    #[test]
    fn dwell_profile_toggle_changes_dimensionality() {
        let with = FeatureExtractor::new();
        let without = FeatureExtractor {
            include_dwell_profile: false,
            ..FeatureExtractor::new()
        };
        assert_eq!(
            with.num_features(8),
            without.num_features(8) + 8,
            "dwell profile adds one feature per state"
        );
    }

    #[test]
    fn moments_of_constant_signal_are_degenerate() {
        let (mean, std, skew, kurt) = moments(&[2.0; 50]);
        assert_eq!(mean, 2.0);
        assert_eq!(std, 0.0);
        assert_eq!(skew, 0.0);
        assert_eq!(kurt, 0.0);
    }
}
