//! Workload behaviour models: phase-structured CPU utilisation generators.
//!
//! An application is modelled as a cyclic sequence of [`Phase`]s (e.g. a video
//! player alternates decode bursts with idle waits; a crypto-miner holds the
//! CPU at full utilisation). Each phase produces noisy utilisation samples at
//! the governor's sampling period; the resulting trace drives the governor in
//! [`crate::trace`].

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One behavioural phase of a workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Mean CPU utilisation during the phase (`0.0..=1.0`).
    pub mean_utilization: f64,
    /// Standard deviation of the per-sample utilisation noise.
    pub noise: f64,
    /// Mean phase duration in governor sampling periods.
    pub mean_duration: f64,
    /// Probability per sample of a short spike to full utilisation
    /// (models interrupts, GC pauses, network bursts).
    pub spike_probability: f64,
}

impl Phase {
    /// Creates a phase with the given mean utilisation and duration and
    /// moderate noise.
    pub fn new(mean_utilization: f64, mean_duration: f64) -> Phase {
        Phase {
            mean_utilization,
            noise: 0.05,
            mean_duration,
            spike_probability: 0.0,
        }
    }

    /// Sets the per-sample noise level.
    pub fn with_noise(mut self, noise: f64) -> Phase {
        self.noise = noise;
        self
    }

    /// Sets the probability of a full-utilisation spike per sample.
    pub fn with_spikes(mut self, probability: f64) -> Phase {
        self.spike_probability = probability;
        self
    }
}

/// A phase-cycling workload model that produces CPU utilisation traces.
///
/// # Example
///
/// ```
/// use hmd_dvfs::workload::{Phase, WorkloadModel};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let model = WorkloadModel::new(vec![
///     Phase::new(0.9, 20.0),
///     Phase::new(0.1, 30.0),
/// ]);
/// let mut rng = StdRng::seed_from_u64(1);
/// let trace = model.utilization_trace(100, &mut rng);
/// assert_eq!(trace.len(), 100);
/// assert!(trace.iter().all(|u| (0.0..=1.0).contains(u)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadModel {
    phases: Vec<Phase>,
    /// Jitter applied to phase durations (fraction of the mean duration).
    pub duration_jitter: f64,
}

impl WorkloadModel {
    /// Creates a workload from its phases.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty.
    pub fn new(phases: Vec<Phase>) -> WorkloadModel {
        assert!(!phases.is_empty(), "a workload needs at least one phase");
        WorkloadModel {
            phases,
            duration_jitter: 0.2,
        }
    }

    /// The workload's phases.
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Sets the relative jitter of phase durations.
    pub fn with_duration_jitter(mut self, jitter: f64) -> WorkloadModel {
        self.duration_jitter = jitter;
        self
    }

    /// Generates a CPU utilisation trace of `len` governor sampling periods.
    pub fn utilization_trace<R: Rng>(&self, len: usize, rng: &mut R) -> Vec<f64> {
        let mut trace = Vec::with_capacity(len);
        let mut phase_index = rng.gen_range(0..self.phases.len());
        let mut remaining = self.sample_duration(phase_index, rng);
        for _ in 0..len {
            if remaining == 0 {
                phase_index = (phase_index + 1) % self.phases.len();
                remaining = self.sample_duration(phase_index, rng);
            }
            let phase = &self.phases[phase_index];
            let mut u = phase.mean_utilization + sample_gaussian(rng) * phase.noise;
            if phase.spike_probability > 0.0
                && rng.gen_bool(phase.spike_probability.clamp(0.0, 1.0))
            {
                u = 1.0;
            }
            trace.push(u.clamp(0.0, 1.0));
            remaining -= 1;
        }
        trace
    }

    fn sample_duration<R: Rng>(&self, phase_index: usize, rng: &mut R) -> usize {
        let mean = self.phases[phase_index].mean_duration.max(1.0);
        let jitter = 1.0 + self.duration_jitter * sample_gaussian(rng);
        (mean * jitter).round().max(1.0) as usize
    }
}

/// Standard-normal sample via the Box–Muller transform.
pub fn sample_gaussian<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trace_length_and_bounds() {
        let model = WorkloadModel::new(vec![Phase::new(0.5, 10.0)]);
        let mut rng = StdRng::seed_from_u64(0);
        let trace = model.utilization_trace(500, &mut rng);
        assert_eq!(trace.len(), 500);
        assert!(trace.iter().all(|u| (0.0..=1.0).contains(u)));
    }

    #[test]
    fn mean_utilization_tracks_phase_means() {
        let model = WorkloadModel::new(vec![Phase::new(0.8, 1000.0).with_noise(0.02)]);
        let mut rng = StdRng::seed_from_u64(1);
        let trace = model.utilization_trace(2000, &mut rng);
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        assert!((mean - 0.8).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn spiky_phase_produces_full_utilization_samples() {
        let model = WorkloadModel::new(vec![Phase::new(0.1, 50.0)
            .with_spikes(0.3)
            .with_noise(0.01)]);
        let mut rng = StdRng::seed_from_u64(2);
        let trace = model.utilization_trace(400, &mut rng);
        let spikes = trace.iter().filter(|&&u| u >= 0.999).count();
        assert!(spikes > 50, "expected many spikes, got {spikes}");
    }

    #[test]
    fn phases_alternate_over_time() {
        let model = WorkloadModel::new(vec![
            Phase::new(0.9, 5.0).with_noise(0.01),
            Phase::new(0.1, 5.0).with_noise(0.01),
        ]);
        let mut rng = StdRng::seed_from_u64(3);
        let trace = model.utilization_trace(200, &mut rng);
        let high = trace.iter().filter(|&&u| u > 0.5).count();
        let low = trace.len() - high;
        assert!(high > 40 && low > 40, "high {high}, low {low}");
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phase_list_panics() {
        let _ = WorkloadModel::new(vec![]);
    }

    #[test]
    fn gaussian_sampler_has_roughly_unit_variance() {
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<f64> = (0..5000).map(|_| sample_gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
