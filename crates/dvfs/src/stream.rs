//! Constant-memory streaming DVFS corpus generation.
//!
//! [`DvfsCorpusStream`] implements [`CorpusStream`]: it simulates one fresh
//! signature per [`Iterator::next`] call, cycling round-robin over a fixed
//! application mix with a single seeded RNG. Nothing is materialised, so a
//! robustness sweep can fold over millions of signatures at the memory cost
//! of exactly one feature vector. The same builder + app mix + seed yields a
//! bit-identical row sequence.
//!
//! # Example
//!
//! ```
//! use hmd_data::stream::CorpusStream;
//! use hmd_dvfs::dataset::DvfsCorpusBuilder;
//! use hmd_dvfs::stream::DvfsCorpusStream;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let builder = DvfsCorpusBuilder::new().with_trace_len(32);
//! let mut stream = DvfsCorpusStream::full_catalog(builder, 7)?;
//! let width = stream.num_features();
//! let first = stream.next().expect("stream is infinite");
//! assert_eq!(first.features.len(), width);
//! # Ok(())
//! # }
//! ```

use crate::apps::{AppCatalog, AppProfile};
use crate::dataset::DvfsCorpusBuilder;
use hmd_data::stream::{CorpusStream, StreamRecord};
use hmd_data::{DataError, SampleMeta};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An infinite, seeded stream of DVFS signatures over a fixed application mix.
///
/// The stream owns its application profiles and a [`StdRng`]; rows are
/// produced by cycling through the mix in order and simulating one fresh
/// trace per row, exactly as the batch [`DvfsCorpusBuilder::build_corpus`]
/// does per sample — but one row at a time.
#[derive(Debug, Clone)]
pub struct DvfsCorpusStream {
    builder: DvfsCorpusBuilder,
    apps: Vec<AppProfile>,
    rng: StdRng,
    cursor: usize,
}

impl DvfsCorpusStream {
    /// Streams over an explicit application mix.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] when `apps` is empty — an empty mix can
    /// never yield a row.
    pub fn new(
        builder: DvfsCorpusBuilder,
        apps: Vec<AppProfile>,
        seed: u64,
    ) -> Result<DvfsCorpusStream, DataError> {
        if apps.is_empty() {
            return Err(DataError::Empty {
                context: "DVFS stream application mix",
            });
        }
        Ok(DvfsCorpusStream {
            builder,
            apps,
            rng: StdRng::seed_from_u64(seed),
            cursor: 0,
        })
    }

    /// Streams over the full standard catalog (known and unknown apps).
    ///
    /// # Errors
    ///
    /// Propagates [`DvfsCorpusStream::new`] errors (the standard catalog is
    /// never empty, so this cannot fail in practice).
    pub fn full_catalog(
        builder: DvfsCorpusBuilder,
        seed: u64,
    ) -> Result<DvfsCorpusStream, DataError> {
        let apps = AppCatalog::standard().apps().to_vec();
        DvfsCorpusStream::new(builder, apps, seed)
    }

    /// Streams over the known (trainable) applications only.
    ///
    /// # Errors
    ///
    /// Propagates [`DvfsCorpusStream::new`] errors.
    pub fn known_apps(
        builder: DvfsCorpusBuilder,
        seed: u64,
    ) -> Result<DvfsCorpusStream, DataError> {
        let apps = AppCatalog::standard()
            .known_apps()
            .into_iter()
            .cloned()
            .collect();
        DvfsCorpusStream::new(builder, apps, seed)
    }

    /// Streams over the unknown (zero-day proxy) applications only.
    ///
    /// # Errors
    ///
    /// Propagates [`DvfsCorpusStream::new`] errors.
    pub fn unknown_apps(
        builder: DvfsCorpusBuilder,
        seed: u64,
    ) -> Result<DvfsCorpusStream, DataError> {
        let apps = AppCatalog::standard()
            .unknown_apps()
            .into_iter()
            .cloned()
            .collect();
        DvfsCorpusStream::new(builder, apps, seed)
    }

    /// The application mix this stream cycles through.
    pub fn apps(&self) -> &[AppProfile] {
        &self.apps
    }
}

impl Iterator for DvfsCorpusStream {
    type Item = StreamRecord;

    fn next(&mut self) -> Option<StreamRecord> {
        let app = &self.apps[self.cursor % self.apps.len()];
        self.cursor = self.cursor.wrapping_add(1);
        let features = self.builder.simulate_signature(app, &mut self.rng);
        Some(StreamRecord {
            features,
            label: app.label,
            meta: if app.known {
                SampleMeta::known(app.id)
            } else {
                SampleMeta::unknown(app.id)
            },
        })
    }
}

impl CorpusStream for DvfsCorpusStream {
    fn num_features(&self) -> usize {
        self.builder
            .extractor
            .num_features(self.builder.soc.num_states())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::stream::collect_dataset;

    fn tiny_builder() -> DvfsCorpusBuilder {
        DvfsCorpusBuilder::new().with_trace_len(16)
    }

    #[test]
    fn empty_mix_is_rejected() {
        assert!(matches!(
            DvfsCorpusStream::new(tiny_builder(), Vec::new(), 0),
            Err(DataError::Empty { .. })
        ));
    }

    #[test]
    fn rows_have_the_advertised_width() {
        let mut stream = DvfsCorpusStream::full_catalog(tiny_builder(), 3).unwrap();
        let width = stream.num_features();
        for record in stream.by_ref().take(10) {
            assert_eq!(record.features.len(), width);
        }
    }

    #[test]
    fn round_robin_covers_the_whole_mix() {
        let mut stream = DvfsCorpusStream::full_catalog(tiny_builder(), 3).unwrap();
        let n_apps = stream.apps().len();
        let ids: Vec<_> = stream.by_ref().take(n_apps).map(|r| r.meta.app).collect();
        let expected: Vec<_> = AppCatalog::standard().apps().iter().map(|a| a.id).collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn known_stream_matches_batch_metadata() {
        let mut stream = DvfsCorpusStream::known_apps(tiny_builder(), 9).unwrap();
        let dataset = collect_dataset(&mut stream, 24).unwrap();
        assert!(dataset.meta().iter().all(|m| !m.unknown_app));
        let counts = dataset.class_counts();
        assert!(counts[0] > 0 && counts[1] > 0);
    }

    #[test]
    fn unknown_stream_is_all_unknown() {
        let mut stream = DvfsCorpusStream::unknown_apps(tiny_builder(), 9).unwrap();
        assert!(stream.by_ref().take(12).all(|r| r.meta.unknown_app));
    }
}
