//! Seeded randomized equivalence suite for the presorted columnar training
//! engine (`hmd_ml::fastfit`).
//!
//! The fast-fit path must produce **bit-identical trees** to the retained
//! pre-optimisation fitters: the same node structure, split features,
//! thresholds and leaf statistics, across random datasets (depths 1–12,
//! 1–64 features), duplicate/constant feature columns, the
//! `min_samples_leaf` / `min_impurity_decrease` edge cases, and through
//! bagging/forest bootstrap **views** versus materialised replicate copies.
//!
//! Tree equality (`DecisionTree: PartialEq`) compares the node vectors
//! directly — split feature indices, `f64` thresholds, leaf
//! `malware_fraction` / `samples` — so a pass means the two growers made the
//! same decision at every node, not merely that predictions agree. Both
//! growers order values with `f64::total_cmp`, so ties break identically.

use hmd_data::split::bootstrap_indices;
use hmd_data::{Dataset, Label, Matrix};
use hmd_ml::bagging::BaggingParams;
use hmd_ml::forest::{RandomForest, RandomForestParams};
use hmd_ml::tree::{DecisionTree, DecisionTreeParams, MaxFeatures};
use hmd_ml::{Classifier, Estimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random dataset with `n` samples over `d` features and a weak class signal
/// so grown trees have non-trivial structure.
fn random_dataset(n: usize, d: usize, rng: &mut StdRng) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let malware = rng.gen_bool(0.5);
        let shift = if malware { 0.25 } else { -0.25 };
        rows.push(
            (0..d)
                .map(|_| shift + rng.gen_range(-1.0..1.0))
                .collect::<Vec<f64>>(),
        );
        labels.push(Label::from(malware));
    }
    Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
}

/// Dataset stressing tie handling: constant columns, duplicated columns and
/// heavily discretised values so equal-value runs dominate every sweep.
fn tied_dataset(n: usize, rng: &mut StdRng) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let malware = rng.gen_bool(0.5);
        let a = f64::from(rng.gen_range(0..3u8));
        let b = f64::from(rng.gen_range(0..2u8)) + if malware { 0.5 } else { 0.0 };
        // Columns: discretised, duplicate of it, constant, negated duplicate.
        rows.push(vec![a, a, 7.5, -b]);
        labels.push(Label::from(malware));
    }
    Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
}

fn random_tree_params(rng: &mut StdRng) -> DecisionTreeParams {
    let mf = match rng.gen_range(0..3) {
        0 => MaxFeatures::All,
        1 => MaxFeatures::Sqrt,
        _ => MaxFeatures::Exact(rng.gen_range(1..8)),
    };
    DecisionTreeParams::new()
        .with_max_depth(rng.gen_range(1..=12))
        .with_min_samples_leaf(rng.gen_range(1..4))
        .with_min_samples_split(rng.gen_range(2..6))
        .with_max_features(mf)
}

/// Asserts two trees are bit-identical and agree on a probe batch.
fn assert_trees_identical(fast: &DecisionTree, reference: &DecisionTree, ds: &Dataset) {
    assert_eq!(
        fast, reference,
        "presorted and reference fitters must grow identical trees"
    );
    assert_eq!(fast.num_nodes(), reference.num_nodes());
    assert_eq!(fast.depth(), reference.depth());
    for row in ds.features().iter_rows() {
        assert_eq!(
            fast.predict_proba_one(row).to_bits(),
            reference.predict_proba_one(row).to_bits()
        );
    }
}

#[test]
fn presorted_tree_matches_reference_across_random_grid() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0001);
    for _ in 0..30 {
        let d = rng.gen_range(1..=64);
        let ds = random_dataset(rng.gen_range(20..140), d, &mut rng);
        let params = random_tree_params(&mut rng);
        let seed = rng.gen();
        let fast = DecisionTree::fit(&ds, &params, seed).unwrap();
        let reference = DecisionTree::fit_reference(&ds, &params, seed).unwrap();
        assert_trees_identical(&fast, &reference, &ds);
    }
}

#[test]
fn every_depth_from_one_to_twelve_matches() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0002);
    let ds = random_dataset(120, 6, &mut rng);
    for depth in 1..=12 {
        let params = DecisionTreeParams::new().with_max_depth(depth);
        let fast = DecisionTree::fit(&ds, &params, depth as u64).unwrap();
        let reference = DecisionTree::fit_reference(&ds, &params, depth as u64).unwrap();
        assert_trees_identical(&fast, &reference, &ds);
    }
}

#[test]
fn duplicate_and_constant_columns_break_ties_identically() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0003);
    for _ in 0..15 {
        let ds = tied_dataset(rng.gen_range(15..90), &mut rng);
        let params = random_tree_params(&mut rng);
        let seed = rng.gen();
        let fast = DecisionTree::fit(&ds, &params, seed).unwrap();
        let reference = DecisionTree::fit_reference(&ds, &params, seed).unwrap();
        assert_trees_identical(&fast, &reference, &ds);
    }
}

#[test]
fn leaf_and_impurity_constraints_match_at_the_edges() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0004);
    let ds = random_dataset(60, 4, &mut rng);
    for &min_leaf in &[1usize, 2, 5, 10, 29, 30, 31] {
        for &min_decrease in &[0.0, 1e-7, 0.02, 0.3] {
            let params = DecisionTreeParams::new()
                .with_min_samples_leaf(min_leaf)
                .with_max_depth(8);
            let params = DecisionTreeParams {
                min_impurity_decrease: min_decrease,
                ..params
            };
            let seed = (min_leaf as u64) << 8 | (min_decrease * 100.0) as u64;
            let fast = DecisionTree::fit(&ds, &params, seed).unwrap();
            let reference = DecisionTree::fit_reference(&ds, &params, seed).unwrap();
            assert_trees_identical(&fast, &reference, &ds);
        }
    }
}

#[test]
fn resampled_view_equals_materialized_select() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0005);
    for _ in 0..15 {
        let d = rng.gen_range(1..=24);
        let ds = random_dataset(rng.gen_range(20..100), d, &mut rng);
        // A messy multiset: repeats, gaps, unsorted order.
        let rows: Vec<usize> = (0..rng.gen_range(5..80))
            .map(|_| rng.gen_range(0..ds.len()))
            .collect();
        let params = random_tree_params(&mut rng);
        let seed = rng.gen();
        let via_view = params.fit_resampled(&ds, &rows, seed).unwrap();
        let via_copy = params.fit(&ds.select(&rows), seed).unwrap();
        assert_eq!(
            via_view, via_copy,
            "zero-copy view must equal the materialized replicate"
        );
    }
}

#[test]
fn forest_bootstrap_views_match_materialized_reference() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0006);
    for _ in 0..8 {
        let d = rng.gen_range(1..=32);
        let ds = random_dataset(rng.gen_range(30..100), d, &mut rng);
        let params = RandomForestParams::new()
            .with_num_trees(rng.gen_range(1..8))
            .with_tree_params(random_tree_params(&mut rng))
            .with_bootstrap(rng.gen_bool(0.7));
        let seed = rng.gen();
        let fast = RandomForest::fit(&ds, &params, seed).unwrap();
        let reference = RandomForest::fit_reference(&ds, &params, seed).unwrap();
        // Forest equality covers every tree's nodes and the compiled flat
        // engine derived from them.
        assert_eq!(fast, reference);
    }
}

#[test]
fn forest_view_composition_equals_select_then_fit() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0007);
    for _ in 0..6 {
        let ds = random_dataset(rng.gen_range(30..80), 5, &mut rng);
        let rows: Vec<usize> = (0..rng.gen_range(10..60))
            .map(|_| rng.gen_range(0..ds.len()))
            .collect();
        let params = RandomForestParams::new().with_num_trees(4);
        let seed = rng.gen();
        let via_view = params.fit_resampled(&ds, &rows, seed).unwrap();
        let via_copy = params.fit(&ds.select(&rows), seed).unwrap();
        assert_eq!(via_view, via_copy);
    }
}

#[test]
fn bagged_tree_views_match_materialized_copies() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0008);
    for _ in 0..6 {
        let ds = random_dataset(rng.gen_range(40..100), rng.gen_range(1..=16), &mut rng);
        let params = BaggingParams::new(random_tree_params(&mut rng))
            .with_num_estimators(rng.gen_range(1..10))
            .with_sample_fraction([1.0, 0.5, 0.8][rng.gen_range(0..3usize)])
            .with_bootstrap(rng.gen_bool(0.8));
        let seed = rng.gen();
        let fast = params.fit(&ds, seed).unwrap();
        let reference = params.fit_reference(&ds, seed).unwrap();
        assert_eq!(fast.estimators(), reference.estimators());
        assert_eq!(fast.flat(), reference.flat());
    }
}

#[test]
fn bagged_forest_views_match_materialized_copies() {
    let mut rng = StdRng::seed_from_u64(0xFA57_0009);
    for _ in 0..4 {
        let ds = random_dataset(rng.gen_range(40..90), rng.gen_range(2..=12), &mut rng);
        let base = RandomForestParams::new()
            .with_num_trees(rng.gen_range(1..4))
            .with_tree_params(random_tree_params(&mut rng));
        let params = BaggingParams::new(base)
            .with_num_estimators(rng.gen_range(1..6))
            .with_sample_fraction(if rng.gen_bool(0.5) { 1.0 } else { 0.6 });
        let seed = rng.gen();
        let fast = params.fit(&ds, seed).unwrap();
        let reference = params.fit_reference(&ds, seed).unwrap();
        assert_eq!(fast.estimators(), reference.estimators());
        assert_eq!(fast.flat(), reference.flat());
    }
}

#[test]
fn bootstrap_seed_draws_are_unchanged_by_the_view_path() {
    // Pin the exact replicate protocol: the view path must consume the same
    // per-estimator RNG stream as materialised selection did, so models
    // trained by older revisions of the workspace are reproduced exactly.
    let mut rng = StdRng::seed_from_u64(0xFA57_000A);
    let ds = random_dataset(70, 3, &mut rng);
    let params =
        BaggingParams::new(DecisionTreeParams::new().with_max_depth(6)).with_num_estimators(5);
    let ensemble = params.fit(&ds, 42).unwrap();

    // Hand-rolled reference replicating BaggingParams::fit's seeding scheme.
    let mut seeder = StdRng::seed_from_u64(42);
    let seeds: Vec<u64> = (0..5).map(|_| seeder.gen()).collect();
    for (model, &estimator_seed) in ensemble.estimators().iter().zip(&seeds) {
        let mut draw_rng = StdRng::seed_from_u64(estimator_seed);
        let (indices, _) = bootstrap_indices(ds.len(), &mut draw_rng);
        let replicate = ds.select(&indices);
        let expected = DecisionTree::fit_reference(
            &replicate,
            &DecisionTreeParams::new().with_max_depth(6),
            estimator_seed,
        )
        .unwrap();
        assert_eq!(model, &expected);
    }
}

#[test]
fn empty_view_is_rejected_like_an_empty_dataset() {
    let mut rng = StdRng::seed_from_u64(0xFA57_000B);
    let ds = random_dataset(10, 2, &mut rng);
    let err = DecisionTreeParams::new()
        .fit_resampled(&ds, &[], 0)
        .unwrap_err();
    assert!(matches!(err, hmd_ml::MlError::TrainingFailed { .. }));
}
