//! Seeded randomized equivalence suite for the flat inference engine.
//!
//! The compiled [`hmd_ml::flat`] forms must be **bit-identical** to the
//! nested training-time structures on every path: labels, probabilities and
//! vote counts, across random trees, forests and bagging ensembles (depths
//! 1–12, 1–64 features), and after a persistence round-trip (which drops the
//! flat form and recompiles it on load).
//!
//! The nested references used here deliberately avoid the flat engine:
//! `DecisionTree` predictions walk the enum nodes, forest votes are
//! recomputed from `trees()`, and ensemble votes come from
//! `BaggingEnsemble::votes`, which always walks the base classifiers.

use hmd_codec::JsonCodec;
use hmd_data::{Dataset, Label, Matrix};
use hmd_ml::bagging::BaggingParams;
use hmd_ml::flat::FlatForest;
use hmd_ml::forest::{RandomForest, RandomForestParams};
use hmd_ml::tree::{DecisionTreeParams, MaxFeatures};
use hmd_ml::{Classifier, Estimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random dataset with `n` samples over `d` features and a weak class signal
/// so grown trees have non-trivial structure.
fn random_dataset(n: usize, d: usize, rng: &mut StdRng) -> Dataset {
    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let malware = rng.gen_bool(0.5);
        let shift = if malware { 0.25 } else { -0.25 };
        rows.push(
            (0..d)
                .map(|_| shift + rng.gen_range(-1.0..1.0))
                .collect::<Vec<f64>>(),
        );
        labels.push(Label::from(malware));
    }
    Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
}

/// Probe rows spanning the training distribution and far outside it.
fn probes(d: usize, count: usize, rng: &mut StdRng) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..count)
        .map(|_| (0..d).map(|_| rng.gen_range(-6.0..6.0)).collect())
        .collect();
    Matrix::from_rows(&rows).unwrap()
}

fn random_tree_params(rng: &mut StdRng) -> DecisionTreeParams {
    let mf = match rng.gen_range(0..3) {
        0 => MaxFeatures::All,
        1 => MaxFeatures::Sqrt,
        _ => MaxFeatures::Exact(rng.gen_range(1..8)),
    };
    DecisionTreeParams::new()
        .with_max_depth(rng.gen_range(1..=12))
        .with_min_samples_leaf(rng.gen_range(1..4))
        .with_max_features(mf)
}

#[test]
fn flat_tree_is_bit_identical_to_nested_walk() {
    let mut rng = StdRng::seed_from_u64(0xF1A7_0001);
    for _ in 0..20 {
        let d = rng.gen_range(1..=64);
        let ds = random_dataset(rng.gen_range(20..120), d, &mut rng);
        let seed = rng.gen();
        let tree = random_tree_params(&mut rng).fit(&ds, seed).unwrap();
        let flat = tree.compile();
        let batch = probes(d, 64, &mut rng);

        // Per-row equivalence against the nested enum walk.
        for row in batch.iter_rows().chain(ds.features().iter_rows()) {
            assert_eq!(
                flat.predict_proba_one(row).to_bits(),
                tree.predict_proba_one(row).to_bits()
            );
            assert_eq!(flat.predict_one(row), tree.predict_one(row));
            assert_eq!(
                flat.predict_with_proba_one(row),
                tree.predict_with_proba_one(row)
            );
        }

        // The tiled batch override matches the per-row walks exactly.
        let mut batched = Vec::new();
        flat.predict_proba_batch(batch.view(), &mut batched);
        let per_row: Vec<f64> = batch
            .iter_rows()
            .map(|r| tree.predict_proba_one(r))
            .collect();
        assert_eq!(batched.len(), per_row.len());
        for (a, b) in batched.iter().zip(&per_row) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // The tree's own batch override (which compiles on demand for large
        // batches) agrees too.
        let mut tree_batched = Vec::new();
        tree.predict_proba_batch(batch.view(), &mut tree_batched);
        for (a, b) in tree_batched.iter().zip(&per_row) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn flat_forest_votes_match_nested_tree_majorities() {
    let mut rng = StdRng::seed_from_u64(0xF1A7_0002);
    for _ in 0..12 {
        let d = rng.gen_range(1..=32);
        let ds = random_dataset(rng.gen_range(30..100), d, &mut rng);
        let seed = rng.gen();
        let forest = RandomForestParams::new()
            .with_num_trees(rng.gen_range(1..12))
            .with_tree_params(random_tree_params(&mut rng))
            .fit(&ds, seed)
            .unwrap();
        let batch = probes(d, 130, &mut rng);

        for row in batch.iter_rows() {
            // Nested reference: majority over the individual enum-node trees.
            let nested_votes = forest
                .trees()
                .iter()
                .filter(|t| t.predict_one(row).is_malware())
                .count();
            let nested_proba = nested_votes as f64 / forest.num_trees() as f64;
            assert_eq!(
                forest.predict_proba_one(row).to_bits(),
                nested_proba.to_bits()
            );
            assert_eq!(forest.predict_one(row), Label::from(nested_proba >= 0.5));
        }

        // Batch override vs nested reference, spanning a block boundary.
        let mut batched = Vec::new();
        forest.predict_proba_batch(batch.view(), &mut batched);
        for (row, proba) in batch.iter_rows().zip(&batched) {
            let nested = forest
                .trees()
                .iter()
                .filter(|t| t.predict_one(row).is_malware())
                .count() as f64
                / forest.num_trees() as f64;
            assert_eq!(proba.to_bits(), nested.to_bits());
        }
    }
}

/// Per-row observations of one ensemble, gathered for the nested-vs-flat
/// comparison: batch counts, single-row counts, nested votes, ensemble size.
type EnsembleObservations = (Vec<[usize; 2]>, Vec<[usize; 2]>, Vec<Vec<Label>>, usize);

#[test]
fn flat_bagging_vote_counts_match_nested_votes() {
    let mut rng = StdRng::seed_from_u64(0xF1A7_0003);
    for round in 0..8 {
        let d = rng.gen_range(1..=16);
        let ds = random_dataset(rng.gen_range(40..100), d, &mut rng);
        let seed = rng.gen();
        let batch = probes(d, 70, &mut rng);

        // Alternate tree-based ensembles: bagged trees and bagged forests.
        let (counts_batch, singles, nested, total): EnsembleObservations = if round % 2 == 0 {
            let ensemble = BaggingParams::new(random_tree_params(&mut rng))
                .with_num_estimators(rng.gen_range(1..10))
                .fit(&ds, seed)
                .unwrap();
            assert!(ensemble.flat().is_some(), "tree ensembles must compile");
            (
                ensemble.vote_counts_batch(&batch),
                batch.iter_rows().map(|r| ensemble.vote_counts(r)).collect(),
                batch.iter_rows().map(|r| ensemble.votes(r)).collect(),
                ensemble.num_estimators(),
            )
        } else {
            let base = RandomForestParams::new()
                .with_num_trees(rng.gen_range(1..5))
                .with_tree_params(random_tree_params(&mut rng));
            let ensemble = BaggingParams::new(base)
                .with_num_estimators(rng.gen_range(1..8))
                .fit(&ds, seed)
                .unwrap();
            assert!(ensemble.flat().is_some(), "forest ensembles must compile");
            (
                ensemble.vote_counts_batch(&batch),
                batch.iter_rows().map(|r| ensemble.vote_counts(r)).collect(),
                batch.iter_rows().map(|r| ensemble.votes(r)).collect(),
                ensemble.num_estimators(),
            )
        };

        for ((batch_counts, single_counts), votes) in counts_batch.iter().zip(&singles).zip(&nested)
        {
            // Nested reference: histogram of per-estimator hard votes.
            let malware = votes.iter().filter(|v| v.is_malware()).count();
            let reference = [total - malware, malware];
            assert_eq!(*batch_counts, reference);
            assert_eq!(*single_counts, reference);
        }
    }
}

#[test]
fn non_tree_ensembles_fall_back_without_flat_form() {
    use hmd_ml::logistic::LogisticRegressionParams;
    let mut rng = StdRng::seed_from_u64(0xF1A7_0004);
    let ds = random_dataset(60, 3, &mut rng);
    let ensemble = BaggingParams::new(LogisticRegressionParams::new().with_epochs(40))
        .with_num_estimators(7)
        .fit(&ds, 1)
        .unwrap();
    assert!(ensemble.flat().is_none());
    let batch = probes(3, 33, &mut rng);
    let counts = ensemble.vote_counts_batch(&batch);
    for (row, batch_counts) in batch.iter_rows().zip(&counts) {
        let votes = ensemble.votes(row);
        let malware = votes.iter().filter(|v| v.is_malware()).count();
        assert_eq!(*batch_counts, [7 - malware, malware]);
    }
}

#[test]
fn persistence_round_trip_recompiles_the_flat_engine() {
    let mut rng = StdRng::seed_from_u64(0xF1A7_0005);
    for _ in 0..6 {
        let d = rng.gen_range(1..=24);
        let ds = random_dataset(rng.gen_range(40..90), d, &mut rng);
        let seed = rng.gen();
        let ensemble = BaggingParams::new(
            RandomForestParams::new()
                .with_num_trees(3)
                .with_tree_params(random_tree_params(&mut rng)),
        )
        .with_num_estimators(5)
        .fit(&ds, seed)
        .unwrap();

        let restored =
            hmd_ml::bagging::BaggingEnsemble::<RandomForest>::from_json(&ensemble.to_json())
                .expect("round trip");
        assert!(restored.flat().is_some(), "load must recompile the engine");
        assert_eq!(
            restored.flat(),
            ensemble.flat(),
            "recompiled form is identical"
        );

        let batch = probes(d, 80, &mut rng);
        let original = ensemble.vote_counts_batch(&batch);
        let roundtrip = restored.vote_counts_batch(&batch);
        assert_eq!(original, roundtrip);

        let mut a = Vec::new();
        let mut b = Vec::new();
        ensemble.predict_proba_batch(batch.view(), &mut a);
        restored.predict_proba_batch(batch.view(), &mut b);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn forest_codec_round_trip_preserves_flat_predictions() {
    let mut rng = StdRng::seed_from_u64(0xF1A7_0006);
    let d = 9;
    let ds = random_dataset(80, d, &mut rng);
    let forest = RandomForestParams::new()
        .with_num_trees(7)
        .fit(&ds, 21)
        .unwrap();
    let restored = RandomForest::from_json(&forest.to_json()).expect("round trip");
    assert_eq!(restored, forest, "flat cache is part of forest equality");
    let batch = probes(d, 96, &mut rng);
    let mut a = Vec::new();
    let mut b = Vec::new();
    forest.predict_proba_batch(batch.view(), &mut a);
    restored.predict_proba_batch(batch.view(), &mut b);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

#[test]
fn truncated_ensembles_recompile_consistently() {
    let mut rng = StdRng::seed_from_u64(0xF1A7_0007);
    let ds = random_dataset(70, 4, &mut rng);
    let ensemble = BaggingParams::new(DecisionTreeParams::new().with_max_depth(8))
        .with_num_estimators(9)
        .fit(&ds, 3)
        .unwrap();
    let truncated = ensemble.truncated(4).unwrap();
    assert!(truncated.flat().is_some());
    let batch = probes(4, 40, &mut rng);
    for (row, counts) in batch.iter_rows().zip(truncated.vote_counts_batch(&batch)) {
        let malware = truncated
            .votes(row)
            .iter()
            .filter(|v| v.is_malware())
            .count();
        assert_eq!(counts, [4 - malware, malware]);
    }
}

/// `From` conversions compile the same engine the caches hold.
#[test]
fn from_impls_match_cached_engines() {
    let mut rng = StdRng::seed_from_u64(0xF1A7_0008);
    let ds = random_dataset(50, 5, &mut rng);
    let forest = RandomForestParams::new()
        .with_num_trees(4)
        .fit(&ds, 8)
        .unwrap();
    let via_from: FlatForest = (&forest).into();
    assert_eq!(&via_from, forest.flat());

    let tree = DecisionTreeParams::new().fit(&ds, 9).unwrap();
    let flat_a = tree.compile();
    let flat_b: hmd_ml::flat::FlatTree = (&tree).into();
    assert_eq!(flat_a, flat_b);
}
