//! Property-based tests for the ML substrate.

use hmd_data::{Dataset, Label, Matrix};
use hmd_ml::bagging::BaggingParams;
use hmd_ml::metrics::{roc_auc, ConfusionMatrix};
use hmd_ml::tree::{gini, DecisionTreeParams};
use hmd_ml::{Classifier, Estimator};
use proptest::prelude::*;

fn labelled_dataset(max_n: usize) -> impl Strategy<Value = Dataset> {
    (8..=max_n).prop_flat_map(|n| {
        (
            proptest::collection::vec(-10.0f64..10.0, n * 2),
            proptest::collection::vec(proptest::bool::ANY, n),
        )
            .prop_map(move |(values, flags)| {
                let matrix = Matrix::from_vec(n, 2, values).expect("sized buffer");
                // Force both classes to be present so learners can train.
                let mut labels: Vec<Label> = flags.iter().copied().map(Label::from).collect();
                labels[0] = Label::Benign;
                labels[1] = Label::Malware;
                Dataset::new(matrix, labels).expect("consistent dataset")
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gini_is_bounded(p in 0.0f64..=1.0) {
        let g = gini(p);
        prop_assert!((0.0..=0.5 + 1e-12).contains(&g));
    }

    #[test]
    fn confusion_matrix_metrics_are_bounded(
        truth in proptest::collection::vec(proptest::bool::ANY, 1..60),
        pred in proptest::collection::vec(proptest::bool::ANY, 1..60),
    ) {
        let n = truth.len().min(pred.len());
        let truth: Vec<Label> = truth[..n].iter().copied().map(Label::from).collect();
        let pred: Vec<Label> = pred[..n].iter().copied().map(Label::from).collect();
        let cm = ConfusionMatrix::from_predictions(&truth, &pred);
        for metric in [cm.accuracy(), cm.precision(), cm.recall(), cm.f1_score()] {
            prop_assert!((0.0..=1.0).contains(&metric));
        }
        prop_assert_eq!(cm.total(), n);
    }

    #[test]
    fn roc_auc_is_bounded_and_flip_symmetric(
        flags in proptest::collection::vec(proptest::bool::ANY, 4..40),
        scores in proptest::collection::vec(0.0f64..1.0, 4..40),
    ) {
        let n = flags.len().min(scores.len());
        let truth: Vec<Label> = flags[..n].iter().copied().map(Label::from).collect();
        let scores = &scores[..n];
        let auc = roc_auc(&truth, scores);
        prop_assert!((0.0..=1.0).contains(&auc));
        // Negating the scores mirrors the AUC around 0.5 (when both classes present).
        let has_both =
            truth.iter().any(|l| l.is_malware()) && truth.iter().any(|l| !l.is_malware());
        if has_both {
            let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
            let mirrored = roc_auc(&truth, &negated);
            prop_assert!((auc + mirrored - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn tree_training_accuracy_is_high_on_its_own_data(ds in labelled_dataset(40)) {
        // A deep unconstrained tree should fit almost any consistent training set.
        let tree = DecisionTreeParams::new().with_max_depth(20).fit(&ds, 0).unwrap();
        let preds = tree.predict(ds.features());
        let mismatches = preds.iter().zip(ds.labels()).filter(|(p, l)| p != l).count();
        // Mismatches only possible when identical feature vectors carry both labels.
        let mut contradictory = 0usize;
        for i in 0..ds.len() {
            for j in 0..ds.len() {
                if i != j
                    && ds.features().row(i) == ds.features().row(j)
                    && ds.labels()[i] != ds.labels()[j]
                {
                    contradictory += 1;
                    break;
                }
            }
        }
        prop_assert!(mismatches <= contradictory,
            "mismatches {mismatches} exceed contradictory samples {contradictory}");
    }

    #[test]
    fn bagging_vote_counts_always_sum_to_ensemble_size(ds in labelled_dataset(30), x in -10.0f64..10.0, y in -10.0f64..10.0) {
        let ensemble = BaggingParams::new(DecisionTreeParams::new().with_max_depth(4))
            .with_num_estimators(7)
            .fit(&ds, 1)
            .unwrap();
        let counts = ensemble.vote_counts(&[x, y]);
        prop_assert_eq!(counts[0] + counts[1], 7);
        let proba = ensemble.predict_proba_one(&[x, y]);
        prop_assert!((proba - counts[1] as f64 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn tree_prediction_matches_probability_threshold(ds in labelled_dataset(30), x in -10.0f64..10.0, y in -10.0f64..10.0) {
        let tree = DecisionTreeParams::new().fit(&ds, 2).unwrap();
        let p = tree.predict_proba_one(&[x, y]);
        let label = tree.predict_one(&[x, y]);
        prop_assert_eq!(label, Label::from(p >= 0.5));
    }
}
