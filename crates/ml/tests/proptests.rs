//! Randomised property tests for the ML substrate.
//!
//! The offline toolchain has no `proptest`, so these run the same properties
//! over a fixed number of seeded random cases.

use hmd_data::{Dataset, Label, Matrix};
use hmd_ml::bagging::BaggingParams;
use hmd_ml::metrics::{roc_auc, ConfusionMatrix};
use hmd_ml::tree::{gini, DecisionTreeParams};
use hmd_ml::{Classifier, Estimator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 32;

fn labelled_dataset(rng: &mut StdRng, max_n: usize) -> Dataset {
    let n = rng.gen_range(8..=max_n);
    let values: Vec<f64> = (0..n * 2).map(|_| rng.gen_range(-10.0..10.0)).collect();
    let matrix = Matrix::from_vec(n, 2, values).expect("sized buffer");
    // Force both classes to be present so learners can train.
    let mut labels: Vec<Label> = (0..n).map(|_| Label::from(rng.gen_bool(0.5))).collect();
    labels[0] = Label::Benign;
    labels[1] = Label::Malware;
    Dataset::new(matrix, labels).expect("consistent dataset")
}

fn random_labels(rng: &mut StdRng, n: usize) -> Vec<Label> {
    (0..n).map(|_| Label::from(rng.gen_bool(0.5))).collect()
}

#[test]
fn gini_is_bounded() {
    for case in 0..=100u64 {
        let p = case as f64 / 100.0;
        let g = gini(p);
        assert!((0.0..=0.5 + 1e-12).contains(&g), "p {p} → gini {g}");
    }
}

#[test]
fn confusion_matrix_metrics_are_bounded() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let n = rng.gen_range(1..60usize);
        let truth = random_labels(&mut rng, n);
        let pred = random_labels(&mut rng, n);
        let cm = ConfusionMatrix::from_predictions(&truth, &pred);
        for metric in [cm.accuracy(), cm.precision(), cm.recall(), cm.f1_score()] {
            assert!((0.0..=1.0).contains(&metric), "case {case}: {metric}");
        }
        assert_eq!(cm.total(), n, "case {case}");
    }
}

#[test]
fn roc_auc_is_bounded_and_flip_symmetric() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let n = rng.gen_range(4..40usize);
        let truth = random_labels(&mut rng, n);
        let scores: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
        let auc = roc_auc(&truth, &scores);
        assert!((0.0..=1.0).contains(&auc), "case {case}: {auc}");
        // Negating the scores mirrors the AUC around 0.5 (when both classes present).
        let has_both =
            truth.iter().any(|l| l.is_malware()) && truth.iter().any(|l| !l.is_malware());
        if has_both {
            let negated: Vec<f64> = scores.iter().map(|s| -s).collect();
            let mirrored = roc_auc(&truth, &negated);
            assert!((auc + mirrored - 1.0).abs() < 1e-9, "case {case}");
        }
    }
}

#[test]
fn tree_training_accuracy_is_high_on_its_own_data() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + case);
        let ds = labelled_dataset(&mut rng, 40);
        // A deep unconstrained tree should fit almost any consistent training set.
        let tree = DecisionTreeParams::new()
            .with_max_depth(20)
            .fit(&ds, 0)
            .unwrap();
        let preds = tree.predict(ds.features());
        let mismatches = preds
            .iter()
            .zip(ds.labels())
            .filter(|(p, l)| p != l)
            .count();
        // Mismatches only possible when identical feature vectors carry both labels.
        let mut contradictory = 0usize;
        for i in 0..ds.len() {
            for j in 0..ds.len() {
                if i != j
                    && ds.features().row(i) == ds.features().row(j)
                    && ds.labels()[i] != ds.labels()[j]
                {
                    contradictory += 1;
                    break;
                }
            }
        }
        assert!(
            mismatches <= contradictory,
            "case {case}: mismatches {mismatches} exceed contradictory samples {contradictory}"
        );
    }
}

#[test]
fn bagging_vote_counts_always_sum_to_ensemble_size() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + case);
        let ds = labelled_dataset(&mut rng, 30);
        let (x, y) = (rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
        let ensemble = BaggingParams::new(DecisionTreeParams::new().with_max_depth(4))
            .with_num_estimators(7)
            .fit(&ds, 1)
            .unwrap();
        let counts = ensemble.vote_counts(&[x, y]);
        assert_eq!(counts[0] + counts[1], 7, "case {case}");
        let proba = ensemble.predict_proba_one(&[x, y]);
        assert!(
            (proba - counts[1] as f64 / 7.0).abs() < 1e-12,
            "case {case}: {proba}"
        );
    }
}

#[test]
fn tree_prediction_matches_probability_threshold() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + case);
        let ds = labelled_dataset(&mut rng, 30);
        let (x, y) = (rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0));
        let tree = DecisionTreeParams::new().fit(&ds, 2).unwrap();
        let p = tree.predict_proba_one(&[x, y]);
        let label = tree.predict_one(&[x, y]);
        assert_eq!(label, Label::from(p >= 0.5), "case {case}");
    }
}
