//! Linear support vector machine trained with the Pegasos primal sub-gradient
//! solver, plus optional Platt-scaled probability outputs.
//!
//! The paper notes that bagging SVMs produces poor uncertainty estimates
//! because the convex objective gives nearly identical base classifiers on the
//! DVFS dataset, and that SVM training fails to converge on the bootstrapped
//! HPC dataset. Both behaviours are reproducible with this implementation.

use crate::logistic::sigmoid;
use crate::platt::PlattScaler;
use crate::{Classifier, Estimator, MlError, ModelTag};
use hmd_codec::{CodecError, Json, JsonCodec};
use hmd_data::{Dataset, Label};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`LinearSvm`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvmParams {
    /// Regularisation strength λ of the Pegasos objective.
    pub lambda: f64,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// When true, fit a Platt scaler on the training decision values so that
    /// [`Classifier::predict_proba_one`] returns calibrated probabilities.
    pub calibrate: bool,
    /// Abort training (reporting [`MlError::DidNotConverge`]) if the average
    /// hinge loss is still above this value after the final epoch. `None`
    /// disables the check. The paper's HPC experiment relies on this to mimic
    /// scikit-learn's convergence failure.
    pub convergence_loss_threshold: Option<f64>,
}

impl LinearSvmParams {
    /// Defaults: λ = 1e-3, 60 epochs, Platt calibration on, no convergence
    /// check.
    pub fn new() -> LinearSvmParams {
        LinearSvmParams {
            lambda: 1e-3,
            epochs: 60,
            calibrate: true,
            convergence_loss_threshold: None,
        }
    }

    /// Sets the regularisation strength.
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Sets the number of epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Enables or disables Platt calibration of the probability output.
    pub fn with_calibration(mut self, calibrate: bool) -> Self {
        self.calibrate = calibrate;
        self
    }

    /// Requires the final average hinge loss to be below `threshold`.
    pub fn with_convergence_check(mut self, threshold: f64) -> Self {
        self.convergence_loss_threshold = Some(threshold);
        self
    }

    fn validate(&self) -> Result<(), MlError> {
        if self.lambda <= 0.0 || !self.lambda.is_finite() {
            return Err(MlError::InvalidHyperparameter {
                name: "lambda",
                message: format!("must be positive and finite, got {}", self.lambda),
            });
        }
        if self.epochs == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "epochs",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

impl Default for LinearSvmParams {
    fn default() -> Self {
        LinearSvmParams::new()
    }
}

impl JsonCodec for LinearSvmParams {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("lambda", self.lambda.to_json()),
            ("epochs", self.epochs.to_json()),
            ("calibrate", self.calibrate.to_json()),
            (
                "convergence_loss_threshold",
                self.convergence_loss_threshold.to_json(),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<LinearSvmParams, CodecError> {
        Ok(LinearSvmParams {
            lambda: f64::from_json(json.get("lambda")?)?,
            epochs: usize::from_json(json.get("epochs")?)?,
            calibrate: bool::from_json(json.get("calibrate")?)?,
            convergence_loss_threshold: Option::<f64>::from_json(
                json.get("convergence_loss_threshold")?,
            )?,
        })
    }
}

impl Estimator for LinearSvmParams {
    type Model = LinearSvm;

    fn fit(&self, dataset: &Dataset, seed: u64) -> Result<LinearSvm, MlError> {
        LinearSvm::fit(dataset, self, seed)
    }

    fn name(&self) -> &'static str {
        "linear-svm"
    }
}

/// A trained linear SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    platt: Option<PlattScaler>,
}

impl LinearSvm {
    /// Fits the SVM with the Pegasos solver.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for invalid parameters,
    /// [`MlError::TrainingFailed`] when the training set contains a single
    /// class, and [`MlError::DidNotConverge`] when a convergence check is
    /// configured and fails.
    pub fn fit(
        dataset: &Dataset,
        params: &LinearSvmParams,
        seed: u64,
    ) -> Result<LinearSvm, MlError> {
        params.validate()?;
        let counts = dataset.class_counts();
        if counts[0] == 0 || counts[1] == 0 {
            return Err(MlError::TrainingFailed {
                message: "linear SVM requires both classes in the training set".into(),
            });
        }
        let n = dataset.len();
        let d = dataset.num_features();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = vec![0.0; d];
        let mut bias = 0.0;
        let mut t: u64 = 0;

        for _ in 0..params.epochs {
            for _ in 0..n {
                t += 1;
                let i = rng.gen_range(0..n);
                let (row, label) = dataset.sample(i);
                let y = label.signed();
                let eta = 1.0 / (params.lambda * t as f64);
                let margin = y * (dot(&weights, row) + bias);
                // Pegasos sub-gradient step
                for w in weights.iter_mut() {
                    *w *= 1.0 - eta * params.lambda;
                }
                if margin < 1.0 {
                    for (w, &x) in weights.iter_mut().zip(row) {
                        *w += eta * y * x;
                    }
                    bias += eta * y;
                }
            }
        }

        if let Some(threshold) = params.convergence_loss_threshold {
            let avg_hinge: f64 = dataset
                .features()
                .iter_rows()
                .zip(dataset.labels())
                .map(|(row, l)| (1.0 - l.signed() * (dot(&weights, row) + bias)).max(0.0))
                .sum::<f64>()
                / n as f64;
            if avg_hinge > threshold {
                return Err(MlError::DidNotConverge {
                    learner: "linear-svm",
                    iterations: params.epochs * n,
                });
            }
        }

        let platt = if params.calibrate {
            let decisions: Vec<f64> = dataset
                .features()
                .iter_rows()
                .map(|row| dot(&weights, row) + bias)
                .collect();
            Some(PlattScaler::fit(&decisions, dataset.labels())?)
        } else {
            None
        };

        Ok(LinearSvm {
            weights,
            bias,
            platt,
        })
    }

    /// Fitted weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Signed distance to the separating hyper-plane (unnormalised).
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        dot(&self.weights, features) + self.bias
    }

    /// The fitted Platt scaler, when calibration was requested.
    pub fn platt(&self) -> Option<&PlattScaler> {
        self.platt.as_ref()
    }
}

impl ModelTag for LinearSvm {
    const TAG: &'static str = "linear-svm";
}

impl JsonCodec for LinearSvm {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("weights", self.weights.to_json()),
            ("bias", self.bias.to_json()),
            ("platt", self.platt.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<LinearSvm, CodecError> {
        Ok(LinearSvm {
            weights: Vec::<f64>::from_json(json.get("weights")?)?,
            bias: f64::from_json(json.get("bias")?)?,
            platt: Option::<PlattScaler>::from_json(json.get("platt")?)?,
        })
    }
}

impl Classifier for LinearSvm {
    fn predict_one(&self, features: &[f64]) -> Label {
        Label::from(self.decision_value(features) >= 0.0)
    }

    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        let d = self.decision_value(features);
        match &self.platt {
            Some(platt) => platt.probability(d),
            None => sigmoid(d),
        }
    }

    fn predict_with_proba_one(&self, features: &[f64]) -> (Label, f64) {
        // One dot product; the label keeps the margin rule (the calibrated
        // probability can cross 0.5 at a different point than the margin).
        let d = self.decision_value(features);
        let p = match &self.platt {
            Some(platt) => platt.probability(d),
            None => sigmoid(d),
        };
        (Label::from(d >= 0.0), p)
    }

    fn input_width(&self) -> Option<usize> {
        Some(self.weights.len())
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Matrix;

    fn separable(n: usize, margin: f64, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let malware = rng.gen_bool(0.5);
            let offset = if malware { margin } else { -margin };
            rows.push(vec![
                offset + rng.gen_range(-0.3..0.3),
                offset + rng.gen_range(-0.3..0.3),
            ]);
            labels.push(Label::from(malware));
        }
        Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn learns_separable_blobs() {
        let train = separable(300, 1.0, 1);
        let test = separable(100, 1.0, 2);
        let svm = LinearSvmParams::new().fit(&train, 0).unwrap();
        let acc = svm
            .predict(test.features())
            .iter()
            .zip(test.labels())
            .filter(|(p, l)| p == l)
            .count() as f64
            / test.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn single_class_training_fails() {
        let rows = vec![vec![0.0], vec![1.0]];
        let ds = Dataset::new(
            Matrix::from_rows(&rows).unwrap(),
            vec![Label::Benign, Label::Benign],
        )
        .unwrap();
        let err = LinearSvmParams::new().fit(&ds, 0).unwrap_err();
        assert!(matches!(err, MlError::TrainingFailed { .. }));
    }

    #[test]
    fn convergence_check_triggers_on_inseparable_noise() {
        // Labels independent of features: hinge loss cannot go below ~1.
        let mut rng = StdRng::seed_from_u64(9);
        let rows: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let labels: Vec<Label> = (0..200).map(|_| Label::from(rng.gen_bool(0.5))).collect();
        let ds = Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap();
        let err = LinearSvmParams::new()
            .with_epochs(5)
            .with_convergence_check(0.2)
            .fit(&ds, 0)
            .unwrap_err();
        assert!(matches!(err, MlError::DidNotConverge { .. }));
    }

    #[test]
    fn calibrated_probabilities_track_side_of_margin() {
        let train = separable(300, 1.5, 3);
        let svm = LinearSvmParams::new().fit(&train, 0).unwrap();
        assert!(svm.predict_proba_one(&[2.0, 2.0]) > 0.8);
        assert!(svm.predict_proba_one(&[-2.0, -2.0]) < 0.2);
    }

    #[test]
    fn uncalibrated_probability_falls_back_to_sigmoid() {
        let train = separable(100, 1.0, 4);
        let svm = LinearSvmParams::new()
            .with_calibration(false)
            .fit(&train, 0)
            .unwrap();
        assert!(svm.platt().is_none());
        let p = svm.predict_proba_one(&[0.0, 0.0]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn invalid_hyperparameters_rejected() {
        let ds = separable(20, 1.0, 5);
        assert!(LinearSvmParams::new().with_lambda(0.0).fit(&ds, 0).is_err());
        assert!(LinearSvmParams::new().with_epochs(0).fit(&ds, 0).is_err());
    }
}
