use hmd_data::DataError;
use std::error::Error;
use std::fmt;

/// Error type for model training and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MlError {
    /// The underlying dataset operation failed.
    Data(DataError),
    /// A hyper-parameter was outside its valid range.
    InvalidHyperparameter {
        /// Parameter name.
        name: &'static str,
        /// Explanation of the valid range.
        message: String,
    },
    /// Training could not proceed (e.g. single-class training set for a
    /// learner that needs both classes).
    TrainingFailed {
        /// Explanation of the failure.
        message: String,
    },
    /// The solver did not converge within its iteration budget.
    DidNotConverge {
        /// Name of the learner.
        learner: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// A prediction was requested before (or without) training.
    NotFitted,
    /// An implementation broke an API contract (e.g. a batch scorer
    /// returning a different number of reports than rows). Surfacing this
    /// as an error keeps contract breaches out of serving threads' panics.
    ContractViolation {
        /// Which contract was broken.
        message: String,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::Data(err) => write!(f, "data error: {err}"),
            MlError::InvalidHyperparameter { name, message } => {
                write!(f, "invalid hyper-parameter `{name}`: {message}")
            }
            MlError::TrainingFailed { message } => write!(f, "training failed: {message}"),
            MlError::DidNotConverge {
                learner,
                iterations,
            } => {
                write!(
                    f,
                    "{learner} did not converge after {iterations} iterations"
                )
            }
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::ContractViolation { message } => {
                write!(f, "API contract violation: {message}")
            }
        }
    }
}

impl Error for MlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MlError::Data(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DataError> for MlError {
    fn from(err: DataError) -> Self {
        MlError::Data(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_cause() {
        let err = MlError::DidNotConverge {
            learner: "svm",
            iterations: 10,
        };
        assert!(err.to_string().contains("svm"));
    }

    #[test]
    fn data_errors_convert() {
        let err: MlError = DataError::Empty { context: "x" }.into();
        assert!(matches!(err, MlError::Data(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MlError>();
    }
}
