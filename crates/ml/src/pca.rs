//! Principal component analysis.
//!
//! The HMD pipelines in Fig. 1 apply dimensionality reduction between feature
//! extraction and classification; [`Pca`] provides it via the covariance
//! matrix and the Jacobi eigensolver from [`crate::linalg`].

use crate::linalg::{covariance_matrix, jacobi_eigen};
use crate::MlError;
use hmd_codec::{CodecError, Json, JsonCodec};
use hmd_data::Matrix;
use serde::{Deserialize, Serialize};

/// A fitted PCA projection.
///
/// # Example
///
/// ```
/// use hmd_data::Matrix;
/// use hmd_ml::pca::Pca;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let data = Matrix::from_rows(&[
///     vec![1.0, 1.1], vec![2.0, 1.9], vec![3.0, 3.2], vec![4.0, 3.9],
/// ])?;
/// let pca = Pca::fit(&data, 1)?;
/// let projected = pca.transform(&data)?;
/// assert_eq!(projected.shape(), (4, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pca {
    means: Vec<f64>,
    /// Projection matrix, one column per retained component.
    components: Matrix,
    explained_variance: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits a PCA with `num_components` components on the rows of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] when `num_components` is 0
    /// or exceeds the number of features, and propagates eigensolver failures.
    pub fn fit(data: &Matrix, num_components: usize) -> Result<Pca, MlError> {
        let d = data.cols();
        if num_components == 0 || num_components > d {
            return Err(MlError::InvalidHyperparameter {
                name: "num_components",
                message: format!("must lie in 1..={d}, got {num_components}"),
            });
        }
        let means = data.column_means();
        let cov = covariance_matrix(data);
        let eig = jacobi_eigen(&cov, 100)?;
        let columns: Vec<usize> = (0..num_components).collect();
        let components = eig.eigenvectors.select_columns(&columns);
        let explained_variance: Vec<f64> = eig.eigenvalues[..num_components]
            .iter()
            .map(|&v| v.max(0.0))
            .collect();
        let total_variance: f64 = eig.eigenvalues.iter().map(|&v| v.max(0.0)).sum();
        Ok(Pca {
            means,
            components,
            explained_variance,
            total_variance,
        })
    }

    /// Number of retained components.
    pub fn num_components(&self) -> usize {
        self.components.cols()
    }

    /// Variance captured by each retained component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of the total variance captured by the retained components.
    pub fn explained_variance_ratio(&self) -> f64 {
        if self.total_variance <= 0.0 {
            return 0.0;
        }
        self.explained_variance.iter().sum::<f64>() / self.total_variance
    }

    /// Projects data onto the retained components.
    ///
    /// # Errors
    ///
    /// Returns a dimension-mismatch error when the feature count differs from
    /// the fitted one.
    pub fn transform(&self, data: &Matrix) -> Result<Matrix, MlError> {
        if data.cols() != self.means.len() {
            return Err(MlError::Data(hmd_data::DataError::DimensionMismatch {
                context: "PCA feature count",
                expected: self.means.len(),
                found: data.cols(),
            }));
        }
        let mut centred = data.clone();
        for r in 0..centred.rows() {
            let row = centred.row_mut(r);
            for (c, v) in row.iter_mut().enumerate() {
                *v -= self.means[c];
            }
        }
        Ok(centred.matmul(&self.components)?)
    }

    /// Number of input features the projection was fitted on.
    pub fn input_width(&self) -> usize {
        self.means.len()
    }

    /// Projects a single feature vector.
    ///
    /// # Errors
    ///
    /// Returns a dimension-mismatch error when the vector length differs from
    /// the fitted feature count.
    pub fn transform_one(&self, features: &[f64]) -> Result<Vec<f64>, MlError> {
        if features.len() != self.means.len() {
            return Err(MlError::Data(hmd_data::DataError::DimensionMismatch {
                context: "PCA feature count",
                expected: self.means.len(),
                found: features.len(),
            }));
        }
        let centred: Vec<f64> = features
            .iter()
            .zip(&self.means)
            .map(|(x, m)| x - m)
            .collect();
        let mut out = vec![0.0; self.components.cols()];
        for (c, o) in out.iter_mut().enumerate() {
            *o = centred
                .iter()
                .enumerate()
                .map(|(r, v)| v * self.components[(r, c)])
                .sum();
        }
        Ok(out)
    }
}

impl JsonCodec for Pca {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("means", self.means.to_json()),
            ("components", self.components.to_json()),
            ("explained_variance", self.explained_variance.to_json()),
            ("total_variance", self.total_variance.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<Pca, CodecError> {
        let means = Vec::<f64>::from_json(json.get("means")?)?;
        let components = Matrix::from_json(json.get("components")?)?;
        if components.rows() != means.len() {
            return Err(CodecError::new(format!(
                "pca: projection has {} rows but {} means",
                components.rows(),
                means.len()
            )));
        }
        Ok(Pca {
            means,
            components,
            explained_variance: Vec::<f64>::from_json(json.get("explained_variance")?)?,
            total_variance: f64::from_json(json.get("total_variance")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn correlated_data(n: usize) -> Matrix {
        let mut rng = StdRng::seed_from_u64(1);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let t: f64 = rng.gen_range(-2.0..2.0);
                let noise: f64 = rng.gen_range(-0.05..0.05);
                vec![t, 2.0 * t + noise, -t + noise]
            })
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn first_component_captures_dominant_variance() {
        let data = correlated_data(200);
        let pca = Pca::fit(&data, 1).unwrap();
        assert!(pca.explained_variance_ratio() > 0.95);
    }

    #[test]
    fn transform_has_requested_width() {
        let data = correlated_data(50);
        let pca = Pca::fit(&data, 2).unwrap();
        let projected = pca.transform(&data).unwrap();
        assert_eq!(projected.shape(), (50, 2));
    }

    #[test]
    fn transform_one_matches_matrix_transform() {
        let data = correlated_data(30);
        let pca = Pca::fit(&data, 2).unwrap();
        let projected = pca.transform(&data).unwrap();
        let single = pca.transform_one(data.row(7)).unwrap();
        for (a, b) in single.iter().zip(projected.row(7)) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_component_counts_are_rejected() {
        let data = correlated_data(10);
        assert!(Pca::fit(&data, 0).is_err());
        assert!(Pca::fit(&data, 4).is_err());
    }

    #[test]
    fn projected_components_are_decorrelated() {
        let data = correlated_data(300);
        let pca = Pca::fit(&data, 2).unwrap();
        let projected = pca.transform(&data).unwrap();
        let cov = covariance_matrix(&projected);
        assert!(cov[(0, 1)].abs() < 1e-6, "cross covariance {}", cov[(0, 1)]);
    }
}
