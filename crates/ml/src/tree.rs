//! CART decision trees.
//!
//! Binary trees with axis-aligned splits on continuous features, grown by
//! greedily minimising Gini impurity. Feature subsampling at every node
//! (`max_features`) turns the tree into the randomised base learner used by
//! [`crate::forest::RandomForest`].

use crate::{Classifier, Estimator, MlError, ModelTag};
use hmd_codec::{CodecError, Json, JsonCodec};
use hmd_data::{Dataset, Label};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Strategy for choosing how many features to examine at each split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// Examine every feature (classic CART).
    All,
    /// Examine `ceil(sqrt(d))` randomly chosen features (random-forest style).
    Sqrt,
    /// Examine exactly this many randomly chosen features.
    Exact(usize),
}

impl MaxFeatures {
    pub(crate) fn resolve(self, num_features: usize) -> usize {
        match self {
            MaxFeatures::All => num_features,
            MaxFeatures::Sqrt => (num_features as f64).sqrt().ceil() as usize,
            MaxFeatures::Exact(k) => k.clamp(1, num_features),
        }
        .max(1)
        .min(num_features)
    }
}

/// Hyper-parameters of a [`DecisionTree`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeParams {
    /// Maximum tree depth (root has depth 0).
    pub max_depth: usize,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples allowed in a leaf.
    pub min_samples_leaf: usize,
    /// How many features to examine at each split.
    pub max_features: MaxFeatures,
    /// Minimum impurity decrease required to accept a split.
    pub min_impurity_decrease: f64,
}

impl DecisionTreeParams {
    /// Creates parameters with the defaults used throughout the workspace
    /// (depth 12, split ≥ 2 samples, leaves ≥ 1 sample, all features).
    pub fn new() -> DecisionTreeParams {
        DecisionTreeParams {
            max_depth: 12,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: MaxFeatures::All,
            min_impurity_decrease: 1e-7,
        }
    }

    /// Sets the maximum depth.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        self.max_depth = depth;
        self
    }

    /// Sets the minimum number of samples required to split a node.
    pub fn with_min_samples_split(mut self, n: usize) -> Self {
        self.min_samples_split = n;
        self
    }

    /// Sets the minimum number of samples required in a leaf.
    pub fn with_min_samples_leaf(mut self, n: usize) -> Self {
        self.min_samples_leaf = n;
        self
    }

    /// Sets the per-split feature subsampling strategy.
    pub fn with_max_features(mut self, mf: MaxFeatures) -> Self {
        self.max_features = mf;
        self
    }

    fn validate(&self) -> Result<(), MlError> {
        if self.min_samples_split < 2 {
            return Err(MlError::InvalidHyperparameter {
                name: "min_samples_split",
                message: format!("must be at least 2, got {}", self.min_samples_split),
            });
        }
        if self.min_samples_leaf == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "min_samples_leaf",
                message: "must be at least 1".into(),
            });
        }
        Ok(())
    }
}

impl Default for DecisionTreeParams {
    fn default() -> Self {
        DecisionTreeParams::new()
    }
}

impl JsonCodec for MaxFeatures {
    fn to_json(&self) -> Json {
        match self {
            MaxFeatures::All => Json::Str("all".to_string()),
            MaxFeatures::Sqrt => Json::Str("sqrt".to_string()),
            MaxFeatures::Exact(k) => k.to_json(),
        }
    }

    fn from_json(json: &Json) -> Result<MaxFeatures, CodecError> {
        match json {
            Json::Str(s) if s == "all" => Ok(MaxFeatures::All),
            Json::Str(s) if s == "sqrt" => Ok(MaxFeatures::Sqrt),
            Json::Int(_) => Ok(MaxFeatures::Exact(json.as_usize()?)),
            other => Err(CodecError::new(format!(
                "expected max_features, found {other}"
            ))),
        }
    }
}

impl JsonCodec for DecisionTreeParams {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("max_depth", self.max_depth.to_json()),
            ("min_samples_split", self.min_samples_split.to_json()),
            ("min_samples_leaf", self.min_samples_leaf.to_json()),
            ("max_features", self.max_features.to_json()),
            (
                "min_impurity_decrease",
                self.min_impurity_decrease.to_json(),
            ),
        ])
    }

    fn from_json(json: &Json) -> Result<DecisionTreeParams, CodecError> {
        Ok(DecisionTreeParams {
            max_depth: usize::from_json(json.get("max_depth")?)?,
            min_samples_split: usize::from_json(json.get("min_samples_split")?)?,
            min_samples_leaf: usize::from_json(json.get("min_samples_leaf")?)?,
            max_features: MaxFeatures::from_json(json.get("max_features")?)?,
            min_impurity_decrease: f64::from_json(json.get("min_impurity_decrease")?)?,
        })
    }
}

impl Estimator for DecisionTreeParams {
    type Model = DecisionTree;

    fn fit(&self, dataset: &Dataset, seed: u64) -> Result<DecisionTree, MlError> {
        DecisionTree::fit(dataset, self, seed)
    }

    fn fit_resampled(
        &self,
        dataset: &Dataset,
        rows: &[usize],
        seed: u64,
    ) -> Result<DecisionTree, MlError> {
        DecisionTree::fit_view(dataset, crate::fastfit::View::Rows(rows), self, seed)
    }

    fn fit_reference(&self, dataset: &Dataset, seed: u64) -> Result<DecisionTree, MlError> {
        DecisionTree::fit_reference(dataset, self, seed)
    }

    fn name(&self) -> &'static str {
        "decision-tree"
    }
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Node {
    Leaf {
        /// Fraction of malware samples that reached this leaf.
        malware_fraction: f64,
        samples: usize,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A trained CART decision tree.
///
/// # Example
///
/// ```
/// use hmd_data::{Dataset, Label, Matrix};
/// use hmd_ml::tree::DecisionTreeParams;
/// use hmd_ml::{Classifier, Estimator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[vec![0.0], vec![0.1], vec![0.9], vec![1.0]])?;
/// let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
/// let tree = DecisionTreeParams::new().fit(&Dataset::new(x, y)?, 0)?;
/// assert_eq!(tree.predict_one(&[0.95]), Label::Malware);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_features: usize,
}

struct TreeBuilder<'a> {
    dataset: &'a Dataset,
    params: &'a DecisionTreeParams,
    rng: StdRng,
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Fits a tree on the dataset with the given parameters.
    ///
    /// Training runs on the presorted columnar engine ([`crate::fastfit`]):
    /// each feature is sorted once per tree and the sorted index arrays are
    /// partitioned down the tree, with feature values read through the
    /// dataset's lazily built column-major cache. The grown tree is
    /// bit-identical — structure, thresholds, leaf fractions — to the
    /// retained per-node-sorting reference fitter
    /// ([`DecisionTree::fit_reference`]), which `tests/fit_equivalence.rs`
    /// enforces.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for invalid parameters and
    /// [`MlError::TrainingFailed`] when the dataset is unusable.
    pub fn fit(
        dataset: &Dataset,
        params: &DecisionTreeParams,
        seed: u64,
    ) -> Result<DecisionTree, MlError> {
        DecisionTree::fit_view(dataset, crate::fastfit::View::Full, params, seed)
    }

    /// Fits a tree on a zero-copy view of `dataset` (see
    /// [`crate::fastfit::View`]): bootstrap replicates — even replicates of
    /// replicates, the bagged-forest shape — train without materialising a
    /// copy. Produces exactly the tree fitting on the selected rows would.
    pub(crate) fn fit_view(
        dataset: &Dataset,
        view: crate::fastfit::View<'_>,
        params: &DecisionTreeParams,
        seed: u64,
    ) -> Result<DecisionTree, MlError> {
        params.validate()?;
        if view.len(dataset.len()) == 0 {
            return Err(MlError::TrainingFailed {
                message: "cannot fit a tree on an empty dataset".into(),
            });
        }
        Ok(DecisionTree {
            nodes: crate::fastfit::grow_tree(dataset, view, params, seed),
            num_features: dataset.num_features(),
        })
    }

    /// The pre-optimisation recursive fitter: sorts the node's samples for
    /// every candidate feature at every node, reading features row-major.
    ///
    /// Retained as the reference path the presorted columnar engine is
    /// proven against (`tests/fit_equivalence.rs`) and benchmarked against
    /// (`fit_throughput`); everything else should call [`DecisionTree::fit`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`DecisionTree::fit`].
    pub fn fit_reference(
        dataset: &Dataset,
        params: &DecisionTreeParams,
        seed: u64,
    ) -> Result<DecisionTree, MlError> {
        params.validate()?;
        if dataset.is_empty() {
            return Err(MlError::TrainingFailed {
                message: "cannot fit a tree on an empty dataset".into(),
            });
        }
        let mut builder = TreeBuilder {
            dataset,
            params,
            rng: StdRng::seed_from_u64(seed),
            nodes: Vec::new(),
        };
        let all: Vec<usize> = (0..dataset.len()).collect();
        builder.grow(&all, 0);
        Ok(DecisionTree {
            nodes: builder.nodes,
            num_features: dataset.num_features(),
        })
    }

    /// Number of nodes in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the tree (a single leaf has depth 0).
    pub fn depth(&self) -> usize {
        self.depth_of(0)
    }

    fn depth_of(&self, index: usize) -> usize {
        match &self.nodes[index] {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + self.depth_of(*left).max(self.depth_of(*right)),
        }
    }

    /// Number of features the tree was trained on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Compiles the fitted tree into the cache-packed flat-node form used by
    /// the batch inference engine (see [`crate::flat`]). The compiled tree
    /// predicts bit-identically to the nested walk.
    pub fn compile(&self) -> crate::flat::FlatTree {
        crate::flat::FlatTree::from_nodes(&self.nodes, self.num_features)
    }

    fn leaf_for(&self, features: &[f64]) -> (f64, usize) {
        let mut index = 0;
        loop {
            match &self.nodes[index] {
                Node::Leaf {
                    malware_fraction,
                    samples,
                } => return (*malware_fraction, *samples),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    index = if features[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

impl ModelTag for DecisionTree {
    const TAG: &'static str = "decision-tree";
}

impl JsonCodec for Node {
    fn to_json(&self) -> Json {
        match self {
            Node::Leaf {
                malware_fraction,
                samples,
            } => Json::object(vec![
                ("malware_fraction", malware_fraction.to_json()),
                ("samples", samples.to_json()),
            ]),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => Json::object(vec![
                ("feature", feature.to_json()),
                ("threshold", threshold.to_json()),
                ("left", left.to_json()),
                ("right", right.to_json()),
            ]),
        }
    }

    fn from_json(json: &Json) -> Result<Node, CodecError> {
        if json.get("malware_fraction").is_ok() {
            Ok(Node::Leaf {
                malware_fraction: f64::from_json(json.get("malware_fraction")?)?,
                samples: usize::from_json(json.get("samples")?)?,
            })
        } else {
            Ok(Node::Split {
                feature: usize::from_json(json.get("feature")?)?,
                threshold: f64::from_json(json.get("threshold")?)?,
                left: usize::from_json(json.get("left")?)?,
                right: usize::from_json(json.get("right")?)?,
            })
        }
    }
}

impl JsonCodec for DecisionTree {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("nodes", self.nodes.to_json()),
            ("num_features", self.num_features.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<DecisionTree, CodecError> {
        let nodes = Vec::<Node>::from_json(json.get("nodes")?)?;
        let num_features = usize::from_json(json.get("num_features")?)?;
        if nodes.is_empty() {
            return Err(CodecError::new("decision tree has no nodes"));
        }
        // Prediction indexes features by `feature` and walks child links, so
        // a malformed document must be rejected here: out-of-bounds values
        // would panic at detect time, and a child index that does not
        // increase would let leaf_for loop forever. The grower always stores
        // children after their parent, so strictly increasing child indices
        // are an invariant of every legitimately saved tree.
        for (i, node) in nodes.iter().enumerate() {
            if let Node::Split {
                feature,
                left,
                right,
                ..
            } = node
            {
                if *feature >= num_features {
                    return Err(CodecError::new(format!(
                        "decision tree split on feature {feature} but only {num_features} features"
                    )));
                }
                if *left >= nodes.len() || *right >= nodes.len() {
                    return Err(CodecError::new("decision tree child index out of bounds"));
                }
                if *left <= i || *right <= i {
                    return Err(CodecError::new(
                        "decision tree child index does not increase (cycle)",
                    ));
                }
            }
        }
        Ok(DecisionTree {
            nodes,
            num_features,
        })
    }
}

impl Classifier for DecisionTree {
    fn predict_one(&self, features: &[f64]) -> Label {
        Label::from(self.leaf_for(features).0 >= 0.5)
    }

    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        self.leaf_for(features).0
    }

    fn predict_with_proba_one(&self, features: &[f64]) -> (Label, f64) {
        let p = self.leaf_for(features).0;
        (Label::from(p >= 0.5), p)
    }

    fn predict_proba_batch(&self, features: hmd_data::RowsView<'_>, out: &mut Vec<f64>) {
        // Compiling costs one pass over the nodes, so it only pays once the
        // batch outnumbers them; smaller batches walk the nested nodes.
        if features.rows() >= self.nodes.len().max(64) {
            self.compile().leaf_values_batch(features, out);
        } else {
            out.clear();
            out.extend(features.iter_rows().map(|row| self.leaf_for(row).0));
        }
    }

    fn predict_with_proba_batch(
        &self,
        features: hmd_data::RowsView<'_>,
        out: &mut Vec<(Label, f64)>,
    ) {
        let mut probas = Vec::new();
        self.predict_proba_batch(features, &mut probas);
        out.clear();
        out.extend(probas.into_iter().map(|p| (Label::from(p >= 0.5), p)));
    }

    fn append_flat_group(&self, builder: &mut crate::flat::FlatForestBuilder) -> bool {
        builder.push_tree(&self.nodes);
        true
    }

    fn input_width(&self) -> Option<usize> {
        Some(self.num_features)
    }
}

impl<'a> TreeBuilder<'a> {
    /// Grows a subtree for the samples in `indices`, returning the node index.
    fn grow(&mut self, indices: &[usize], depth: usize) -> usize {
        let labels = self.dataset.labels();
        let malware = indices.iter().filter(|&&i| labels[i].is_malware()).count();
        let malware_fraction = malware as f64 / indices.len() as f64;
        let node_impurity = gini(malware_fraction);

        let should_stop = depth >= self.params.max_depth
            || indices.len() < self.params.min_samples_split
            || node_impurity == 0.0;

        if !should_stop {
            if let Some(split) = self.best_split(indices, node_impurity) {
                let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
                    indices.iter().partition(|&&i| {
                        self.dataset.features().row(i)[split.feature] <= split.threshold
                    });
                // best_split guarantees both children satisfy min_samples_leaf
                let placeholder = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    malware_fraction,
                    samples: indices.len(),
                });
                let left = self.grow(&left_idx, depth + 1);
                let right = self.grow(&right_idx, depth + 1);
                self.nodes[placeholder] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                return placeholder;
            }
        }

        let index = self.nodes.len();
        self.nodes.push(Node::Leaf {
            malware_fraction,
            samples: indices.len(),
        });
        index
    }

    fn best_split(&mut self, indices: &[usize], node_impurity: f64) -> Option<SplitCandidate> {
        let num_features = self.dataset.num_features();
        let k = self.params.max_features.resolve(num_features);
        let mut feature_pool: Vec<usize> = (0..num_features).collect();
        feature_pool.shuffle(&mut self.rng);
        feature_pool.truncate(k);

        let labels = self.dataset.labels();
        let total = indices.len();
        let total_malware = indices.iter().filter(|&&i| labels[i].is_malware()).count();

        let mut best: Option<SplitCandidate> = None;
        for &feature in &feature_pool {
            // Sort the node's samples by this feature and sweep all midpoints.
            // total_cmp gives a NaN-safe total order; the stable sort breaks
            // value ties by ascending sample position, which the presorted
            // engine's partition scheme preserves identically.
            let mut order: Vec<usize> = indices.to_vec();
            order.sort_by(|&a, &b| {
                let va = self.dataset.features().row(a)[feature];
                let vb = self.dataset.features().row(b)[feature];
                va.total_cmp(&vb)
            });

            let mut left_count = 0usize;
            let mut left_malware = 0usize;
            // Each value is read once and carried to the next step as the
            // run predecessor instead of being fetched twice per sweep step.
            let mut carried = self.dataset.features().row(order[0])[feature];
            for w in 0..total - 1 {
                let i = order[w];
                left_count += 1;
                if labels[i].is_malware() {
                    left_malware += 1;
                }
                let current = carried;
                let next = self.dataset.features().row(order[w + 1])[feature];
                carried = next;
                if next <= current {
                    continue; // identical values cannot be separated here
                }
                let right_count = total - left_count;
                if left_count < self.params.min_samples_leaf
                    || right_count < self.params.min_samples_leaf
                {
                    continue;
                }
                let right_malware = total_malware - left_malware;
                let left_impurity = gini(left_malware as f64 / left_count as f64);
                let right_impurity = gini(right_malware as f64 / right_count as f64);
                let weighted = (left_count as f64 * left_impurity
                    + right_count as f64 * right_impurity)
                    / total as f64;
                let decrease = node_impurity - weighted;
                if decrease < self.params.min_impurity_decrease {
                    continue;
                }
                let threshold = (current + next) / 2.0;
                let candidate = SplitCandidate {
                    feature,
                    threshold,
                    decrease,
                };
                if best
                    .as_ref()
                    .map(|b| candidate.decrease > b.decrease)
                    .unwrap_or(true)
                {
                    best = Some(candidate);
                }
            }
        }
        best
    }
}

struct SplitCandidate {
    feature: usize,
    threshold: f64,
    decrease: f64,
}

/// Gini impurity of a binary node with the given positive-class fraction.
pub fn gini(p: f64) -> f64 {
    2.0 * p * (1.0 - p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Matrix;

    fn xor_dataset() -> Dataset {
        // XOR-like pattern: not linearly separable, trees handle it easily.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1234);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            let a = (i % 2) as f64;
            let b = ((i / 2) % 2) as f64;
            rows.push(vec![
                a + rng.gen_range(-0.3..0.3),
                b + rng.gen_range(-0.3..0.3),
            ]);
            labels.push(Label::from((a as i32 ^ b as i32) == 1));
        }
        Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn gini_is_zero_for_pure_nodes() {
        assert_eq!(gini(0.0), 0.0);
        assert_eq!(gini(1.0), 0.0);
        assert!((gini(0.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tree_learns_xor() {
        let ds = xor_dataset();
        let tree = DecisionTreeParams::new()
            .with_max_depth(20)
            .fit(&ds, 3)
            .unwrap();
        let preds = tree.predict(ds.features());
        let correct = preds
            .iter()
            .zip(ds.labels())
            .filter(|(p, l)| p == l)
            .count();
        assert!(
            correct as f64 / ds.len() as f64 > 0.95,
            "tree should fit XOR almost exactly, got {correct}/{}",
            ds.len()
        );
        assert!(tree.depth() >= 2);
    }

    #[test]
    fn max_depth_zero_gives_single_leaf() {
        let ds = xor_dataset();
        let tree = DecisionTreeParams::new()
            .with_max_depth(0)
            .fit(&ds, 0)
            .unwrap();
        assert_eq!(tree.num_nodes(), 1);
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn min_samples_leaf_limits_growth() {
        let ds = xor_dataset();
        let big_leaves = DecisionTreeParams::new()
            .with_min_samples_leaf(15)
            .fit(&ds, 0)
            .unwrap();
        let small_leaves = DecisionTreeParams::new().fit(&ds, 0).unwrap();
        assert!(big_leaves.num_nodes() <= small_leaves.num_nodes());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let ds = xor_dataset();
        let err = DecisionTreeParams::new()
            .with_min_samples_split(1)
            .fit(&ds, 0)
            .unwrap_err();
        assert!(matches!(err, MlError::InvalidHyperparameter { .. }));
        let err = DecisionTreeParams::new()
            .with_min_samples_leaf(0)
            .fit(&ds, 0)
            .unwrap_err();
        assert!(matches!(err, MlError::InvalidHyperparameter { .. }));
    }

    #[test]
    fn proba_reflects_leaf_purity() {
        let ds = xor_dataset();
        let stump = DecisionTreeParams::new()
            .with_max_depth(0)
            .fit(&ds, 0)
            .unwrap();
        let p = stump.predict_proba_one(&[0.0, 0.0]);
        assert!(
            (p - 0.5).abs() < 0.01,
            "root leaf should be ~50% malware, got {p}"
        );
    }

    #[test]
    fn feature_subsampling_still_learns_separable_data() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..60 {
            let x = i as f64 / 60.0;
            rows.push(vec![x, 0.0, 1.0]);
            labels.push(Label::from(x > 0.5));
        }
        let ds = Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap();
        let tree = DecisionTreeParams::new()
            .with_max_features(MaxFeatures::Exact(2))
            .fit(&ds, 9)
            .unwrap();
        let acc = tree
            .predict(ds.features())
            .iter()
            .zip(ds.labels())
            .filter(|(p, l)| p == l)
            .count() as f64
            / ds.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn sqrt_max_features_resolves_sensibly() {
        assert_eq!(MaxFeatures::Sqrt.resolve(9), 3);
        assert_eq!(MaxFeatures::Sqrt.resolve(1), 1);
        assert_eq!(MaxFeatures::Exact(100).resolve(4), 4);
        assert_eq!(MaxFeatures::Exact(0).resolve(4), 1);
        assert_eq!(MaxFeatures::All.resolve(7), 7);
    }
}
