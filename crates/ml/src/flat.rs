//! The compiled flat-node inference engine.
//!
//! Training grows [`crate::tree::DecisionTree`]s as vectors of tagged-enum
//! nodes — a layout that is convenient to build but hostile to serve: every
//! step of a traversal loads a 40-byte enum, branches on its discriminant and
//! chases children scattered across the allocation. This module compiles
//! fitted tree models into a struct-of-arrays form designed for the batch
//! hot path:
//!
//! * Split nodes live in four parallel arrays — `feature: Vec<u32>`,
//!   `threshold: Vec<f64>`, `left`/`right: Vec<u32>` — so the traversal loop
//!   touches exactly the bytes it needs and the hot node range of a tree
//!   stays cache-dense.
//! * Leaves are stored out-of-line in a `leaf_value` array and encoded as
//!   *tagged child indices* (high bit set), so the inner loop has a single
//!   exit test and no enum discriminant branch.
//! * Batches are traversed in tiles of [`BLOCK`] samples: the engine walks
//!   one tree for a whole tile before moving to the next tree, keeping that
//!   tree's nodes hot in L1/L2, and accumulates ensemble votes into reusable
//!   stack buffers — no per-sample allocation.
//!
//! [`FlatTree`] compiles a single decision tree; [`FlatForest`] compiles any
//! collection of trees partitioned into *voting groups* (one group per
//! ensemble member). A random forest is a flat forest whose groups are single
//! trees; a bagging ensemble of forests is a flat forest whose groups are
//! whole forests. Predictions are **bit-identical** to the nested walk: the
//! same `<=` split predicate, the same leaf fractions, the same integer vote
//! arithmetic (see `tests/flat_equivalence.rs`).

use crate::tree::{DecisionTree, Node};
use crate::Classifier;
use hmd_data::{Label, RowsView};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// High bit of a child index, tagging a reference into the leaf-value array
/// instead of the split-node arrays.
const LEAF_BIT: u32 = 1 << 31;

/// Tile width of the batch traversal: samples are processed in blocks of this
/// many rows so one tree's node range is reused across the whole tile.
pub const BLOCK: usize = 64;

/// Row count below which batch kernels stay on the calling thread; smaller
/// batches finish faster than a hand-off to the worker pool would take.
const PAR_MIN_ROWS: usize = 256;

/// Incrementally builds a [`FlatForest`] from nested tree node storage.
///
/// Callers open a voting group with [`FlatForestBuilder::begin_group`], then
/// let each model append its trees via
/// [`crate::Classifier::append_flat_group`].
#[derive(Debug)]
pub struct FlatForestBuilder {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    leaf_value: Vec<f64>,
    leaf_vote: Vec<u8>,
    roots: Vec<u32>,
    group_starts: Vec<u32>,
    num_features: usize,
}

impl FlatForestBuilder {
    /// Starts an empty builder for models trained on `num_features` inputs.
    pub fn new(num_features: usize) -> FlatForestBuilder {
        FlatForestBuilder {
            feature: Vec::new(),
            threshold: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            leaf_value: Vec::new(),
            leaf_vote: Vec::new(),
            roots: Vec::new(),
            group_starts: Vec::new(),
            num_features,
        }
    }

    /// Opens a new voting group; every tree appended until the next
    /// `begin_group` (or [`FlatForestBuilder::finish`]) votes as one member.
    pub fn begin_group(&mut self) {
        self.group_starts.push(self.roots.len() as u32);
    }

    /// Appends one nested tree to the current group.
    pub(crate) fn push_tree(&mut self, nodes: &[Node]) {
        assert!(
            !self.group_starts.is_empty(),
            "push_tree called before begin_group"
        );
        let split_base = self.feature.len() as u32;
        let leaf_base = self.leaf_value.len() as u32;
        // First pass: assign flat indices in nested order (parent before
        // children, preorder), tagging leaves with the high bit.
        let mut map = Vec::with_capacity(nodes.len());
        let mut splits = 0u32;
        let mut leaves = 0u32;
        for node in nodes {
            match node {
                Node::Split { .. } => {
                    map.push(split_base + splits);
                    splits += 1;
                }
                Node::Leaf { .. } => {
                    map.push((leaf_base + leaves) | LEAF_BIT);
                    leaves += 1;
                }
            }
        }
        assert!(
            (self.feature.len() + nodes.len()) < LEAF_BIT as usize,
            "flat forest exceeds 2^31 nodes"
        );
        // Second pass: emit the struct-of-arrays node storage.
        for node in nodes {
            match node {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    self.feature.push(*feature as u32);
                    self.threshold.push(*threshold);
                    self.left.push(map[*left]);
                    self.right.push(map[*right]);
                }
                Node::Leaf {
                    malware_fraction, ..
                } => {
                    self.leaf_value.push(*malware_fraction);
                    // The hard vote is precompiled so the vote kernel reads
                    // one byte instead of comparing an f64 per leaf.
                    self.leaf_vote.push(u8::from(*malware_fraction >= 0.5));
                }
            }
        }
        self.roots.push(map[0]);
    }

    /// Closes the builder into an immutable forest.
    ///
    /// # Panics
    ///
    /// Panics when no group was opened or a group received no trees — both
    /// indicate a broken [`Classifier::append_flat_group`] implementation.
    pub fn finish(self) -> FlatForest {
        let mut group_offsets = self.group_starts;
        assert!(
            !group_offsets.is_empty(),
            "flat forest has no voting groups"
        );
        group_offsets.push(self.roots.len() as u32);
        for pair in group_offsets.windows(2) {
            assert!(pair[0] < pair[1], "flat forest voting group has no trees");
        }
        FlatForest {
            feature: self.feature,
            threshold: self.threshold,
            left: self.left,
            right: self.right,
            leaf_value: self.leaf_value,
            leaf_vote: self.leaf_vote,
            roots: self.roots,
            group_offsets,
            num_features: self.num_features,
        }
    }
}

/// A fitted ensemble of decision trees compiled into cache-dense
/// struct-of-arrays node storage, partitioned into voting groups.
///
/// Each group casts one hard vote per sample (the majority of its trees'
/// leaves); the malware probability of a sample is the fraction of groups
/// voting malware. Compiling a [`crate::forest::RandomForest`] produces one
/// single-tree group per tree — reproducing the forest's soft vote — while a
/// bagging ensemble compiles each base model into one group, reproducing the
/// ensemble's per-estimator hard votes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatForest {
    feature: Vec<u32>,
    threshold: Vec<f64>,
    left: Vec<u32>,
    right: Vec<u32>,
    leaf_value: Vec<f64>,
    /// Precompiled hard vote (`leaf_value >= 0.5`) per leaf, so the vote
    /// kernel's footprint per leaf is one byte.
    leaf_vote: Vec<u8>,
    roots: Vec<u32>,
    /// Prefix offsets into `roots`; group `g` owns `roots[offsets[g]..offsets[g+1]]`.
    group_offsets: Vec<u32>,
    num_features: usize,
}

impl FlatForest {
    /// Number of voting groups (ensemble members).
    pub fn num_groups(&self) -> usize {
        self.group_offsets.len() - 1
    }

    /// Total number of compiled trees across all groups.
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total number of split nodes in the packed arrays.
    pub fn num_split_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Number of input features the compiled models expect.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Walks one tree (identified by its possibly leaf-tagged root reference)
    /// down to its leaf index for one sample.
    #[inline]
    fn leaf_index_of(&self, root: u32, row: &[f64]) -> usize {
        let mut index = root;
        while index & LEAF_BIT == 0 {
            let i = index as usize;
            // Same predicate as the nested walk (`<=` goes left), so NaN and
            // boundary inputs take identical paths.
            index = if row[self.feature[i] as usize] <= self.threshold[i] {
                self.left[i]
            } else {
                self.right[i]
            };
        }
        (index & !LEAF_BIT) as usize
    }

    /// Walks one tree down to its leaf fraction for one sample.
    #[inline]
    fn leaf_of(&self, root: u32, row: &[f64]) -> f64 {
        self.leaf_value[self.leaf_index_of(root, row)]
    }

    /// Walks one tree down to its precompiled hard vote for one sample.
    #[inline]
    fn vote_of(&self, root: u32, row: &[f64]) -> u32 {
        u32::from(self.leaf_vote[self.leaf_index_of(root, row)])
    }

    /// Hard vote of one group on one sample: the exact integer form of
    /// `malware_trees / trees >= 0.5`, with an early exit once the majority
    /// is mathematically decided (a 3-tree group never walks its third tree
    /// when the first two agree).
    #[inline]
    fn group_vote(&self, lo: usize, hi: usize, row: &[f64]) -> u32 {
        let size = hi - lo;
        let mut malware = 0usize;
        for (walked, &root) in (1..=size).zip(&self.roots[lo..hi]) {
            malware += self.vote_of(root, row) as usize;
            if 2 * malware >= size {
                return 1; // majority reached; later trees cannot undo it
            }
            if 2 * (malware + (size - walked)) < size {
                return 0; // unreachable even if every remaining tree votes malware
            }
        }
        0
    }

    /// Malware group-vote count for a single sample.
    #[inline]
    pub fn group_votes_one(&self, row: &[f64]) -> usize {
        let mut votes = 0usize;
        for g in 0..self.num_groups() {
            let lo = self.group_offsets[g] as usize;
            let hi = self.group_offsets[g + 1] as usize;
            votes += self.group_vote(lo, hi, row) as usize;
        }
        votes
    }

    /// Tiled kernel: malware group votes for the rows of one borrowed tile
    /// view (at most [`BLOCK`] rows) written into `votes`.
    ///
    /// The tile bounds the working set — [`BLOCK`] rows of features plus the
    /// packed node arrays stay L1/L2-resident while the kernel sweeps the
    /// ensemble — and votes accumulate into the caller's reusable buffer, so
    /// the hot loop performs no per-sample allocation.
    fn block_group_votes(&self, tile: RowsView<'_>, votes: &mut [u32]) {
        debug_assert!(tile.rows() <= BLOCK && votes.len() == tile.rows());
        votes.fill(0);
        for (vote, row) in votes.iter_mut().zip(tile.iter_rows()) {
            *vote = self.group_votes_one(row) as u32;
        }
    }

    /// Malware group-vote counts for every row of a borrowed batch view.
    ///
    /// Small batches run on the calling thread; larger ones are tiled into
    /// [`BLOCK`]-row blocks and spread across the persistent worker pool.
    /// Because the kernel operates on views, callers can score any row range
    /// of an existing matrix without assembling a copy first.
    pub fn group_votes_batch(&self, batch: RowsView<'_>) -> Vec<u32> {
        let rows = batch.rows();
        if rows < PAR_MIN_ROWS || rayon::current_num_threads() == 1 {
            let mut votes = vec![0u32; rows];
            for start in (0..rows).step_by(BLOCK) {
                let end = (start + BLOCK).min(rows);
                self.block_group_votes(batch.rows_view(start..end), &mut votes[start..end]);
            }
            return votes;
        }
        let blocks: Vec<(usize, usize)> = (0..rows)
            .step_by(BLOCK)
            .map(|start| (start, (start + BLOCK).min(rows)))
            .collect();
        let tiles: Vec<Vec<u32>> = blocks
            .par_iter()
            .map(|&(start, end)| {
                let mut votes = vec![0u32; end - start];
                self.block_group_votes(batch.rows_view(start..end), &mut votes);
                votes
            })
            .collect();
        tiles.concat()
    }
}

impl Classifier for FlatForest {
    fn predict_one(&self, features: &[f64]) -> Label {
        Label::from(self.predict_proba_one(features) >= 0.5)
    }

    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        self.group_votes_one(features) as f64 / self.num_groups() as f64
    }

    fn predict_with_proba_one(&self, features: &[f64]) -> (Label, f64) {
        let p = self.predict_proba_one(features);
        (Label::from(p >= 0.5), p)
    }

    fn predict_proba_batch(&self, batch: RowsView<'_>, out: &mut Vec<f64>) {
        let groups = self.num_groups() as f64;
        out.clear();
        out.extend(
            self.group_votes_batch(batch)
                .into_iter()
                .map(|votes| votes as f64 / groups),
        );
    }

    fn predict_with_proba_batch(&self, batch: RowsView<'_>, out: &mut Vec<(Label, f64)>) {
        let groups = self.num_groups() as f64;
        out.clear();
        out.extend(self.group_votes_batch(batch).into_iter().map(|votes| {
            let p = votes as f64 / groups;
            (Label::from(p >= 0.5), p)
        }));
    }

    fn input_width(&self) -> Option<usize> {
        Some(self.num_features)
    }
}

/// A single fitted decision tree compiled into flat node storage.
///
/// Unlike [`FlatForest`] — whose probability is a vote fraction — a flat
/// tree's probability is the raw malware fraction of the reached leaf,
/// mirroring [`crate::tree::DecisionTree`] exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatTree {
    forest: FlatForest,
}

impl FlatTree {
    pub(crate) fn from_nodes(nodes: &[Node], num_features: usize) -> FlatTree {
        let mut builder = FlatForestBuilder::new(num_features);
        builder.begin_group();
        builder.push_tree(nodes);
        FlatTree {
            forest: builder.finish(),
        }
    }

    /// Number of split nodes in the packed arrays.
    pub fn num_split_nodes(&self) -> usize {
        self.forest.num_split_nodes()
    }

    /// Number of input features the compiled tree expects.
    pub fn num_features(&self) -> usize {
        self.forest.num_features()
    }

    /// Malware fraction of the leaf reached by one sample.
    #[inline]
    pub fn leaf_value(&self, row: &[f64]) -> f64 {
        self.forest.leaf_of(self.forest.roots[0], row)
    }

    /// Leaf fractions for every row of a borrowed batch view, tiled over the
    /// packed arrays.
    pub fn leaf_values_batch(&self, batch: RowsView<'_>, out: &mut Vec<f64>) {
        let root = self.forest.roots[0];
        out.clear();
        out.extend(batch.iter_rows().map(|row| self.forest.leaf_of(root, row)));
    }
}

impl From<&DecisionTree> for FlatTree {
    fn from(tree: &DecisionTree) -> FlatTree {
        tree.compile()
    }
}

impl Classifier for FlatTree {
    fn predict_one(&self, features: &[f64]) -> Label {
        Label::from(self.leaf_value(features) >= 0.5)
    }

    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        self.leaf_value(features)
    }

    fn predict_with_proba_one(&self, features: &[f64]) -> (Label, f64) {
        let p = self.leaf_value(features);
        (Label::from(p >= 0.5), p)
    }

    fn predict_proba_batch(&self, batch: RowsView<'_>, out: &mut Vec<f64>) {
        self.leaf_values_batch(batch, out);
    }

    fn predict_with_proba_batch(&self, batch: RowsView<'_>, out: &mut Vec<(Label, f64)>) {
        let mut probas = Vec::new();
        self.leaf_values_batch(batch, &mut probas);
        out.clear();
        out.extend(probas.into_iter().map(|p| (Label::from(p >= 0.5), p)));
    }

    fn input_width(&self) -> Option<usize> {
        Some(self.forest.num_features)
    }
}

/// Compiles a slice of tree-based ensemble members into one flat forest with
/// one voting group per member. Returns `None` when any member is not
/// tree-based (e.g. logistic regression) or does not report its input width.
pub fn compile_groups<M: Classifier>(members: &[M]) -> Option<FlatForest> {
    let width = members.first()?.input_width()?;
    let mut builder = FlatForestBuilder::new(width);
    for member in members {
        builder.begin_group();
        if !member.append_flat_group(&mut builder) {
            return None;
        }
    }
    Some(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTreeParams;
    use crate::Estimator;
    use hmd_data::{Dataset, Matrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let malware = rng.gen_bool(0.5);
            let c = if malware { 0.7 } else { 0.3 };
            rows.push((0..d).map(|_| c + rng.gen_range(-0.5..0.5)).collect());
            labels.push(Label::from(malware));
        }
        Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn flat_tree_matches_nested_walk() {
        let ds = random_dataset(120, 5, 1);
        let tree = DecisionTreeParams::new().fit(&ds, 2).unwrap();
        let flat = tree.compile();
        for row in ds.features().iter_rows() {
            assert_eq!(flat.leaf_value(row).to_bits(), {
                // The nested reference: DecisionTree's own leaf walk.
                crate::Classifier::predict_proba_one(&tree, row).to_bits()
            });
        }
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let ds = random_dataset(30, 2, 3);
        let stump = DecisionTreeParams::new()
            .with_max_depth(0)
            .fit(&ds, 0)
            .unwrap();
        let flat = stump.compile();
        assert_eq!(flat.num_split_nodes(), 0);
        let p = flat.leaf_value(&[0.0, 0.0]);
        assert_eq!(
            p.to_bits(),
            crate::Classifier::predict_proba_one(&stump, &[0.0, 0.0]).to_bits()
        );
    }

    #[test]
    fn batch_kernel_matches_single_row_kernel_across_block_boundaries() {
        let ds = random_dataset(BLOCK * 3 + 17, 4, 4);
        let trees: Vec<DecisionTree> = (0..5)
            .map(|i| DecisionTreeParams::new().fit(&ds, i).unwrap())
            .collect();
        let flat = compile_groups(&trees).expect("trees compile");
        assert_eq!(flat.num_groups(), 5);
        let batch = flat.group_votes_batch(ds.features().view());
        for (row, &votes) in ds.features().iter_rows().zip(&batch) {
            assert_eq!(flat.group_votes_one(row), votes as usize);
        }
    }

    #[test]
    fn group_votes_never_exceed_group_count() {
        let ds = random_dataset(40, 3, 7);
        let trees: Vec<DecisionTree> = (0..7)
            .map(|i| DecisionTreeParams::new().fit(&ds, i).unwrap())
            .collect();
        let flat = compile_groups(&trees).unwrap();
        for votes in flat.group_votes_batch(ds.features().view()) {
            assert!(votes as usize <= flat.num_groups());
        }
    }

    #[test]
    fn non_tree_members_do_not_compile() {
        use crate::logistic::LogisticRegressionParams;
        let ds = random_dataset(40, 2, 9);
        let models: Vec<_> = (0..3)
            .map(|i| {
                LogisticRegressionParams::new()
                    .with_epochs(10)
                    .fit(&ds, i)
                    .unwrap()
            })
            .collect();
        assert!(compile_groups(&models).is_none());
    }
}
