//! Random forests: bootstrap-aggregated CART trees with per-split feature
//! subsampling.
//!
//! The paper's best-performing ensembles use Random Forest base classifiers;
//! [`RandomForest`] is also usable stand-alone as the "Untrusted HMD"
//! black-box detector.

use crate::fastfit::View;
use crate::flat::{compile_groups, FlatForest, FlatForestBuilder};
use crate::tree::{DecisionTree, DecisionTreeParams, MaxFeatures};
use crate::{Classifier, Estimator, MlError, ModelTag};
use hmd_codec::{CodecError, Json, JsonCodec};
use hmd_data::split::{bootstrap_draw, bootstrap_indices};
use hmd_data::{Dataset, Label};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`RandomForest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForestParams {
    /// Number of trees in the forest.
    pub num_trees: usize,
    /// Parameters of the individual trees.
    pub tree: DecisionTreeParams,
    /// Whether each tree is trained on a bootstrap replicate (true) or on the
    /// full training set (false).
    pub bootstrap: bool,
}

impl RandomForestParams {
    /// Default forest: 25 trees, depth-12 CART trees, `sqrt` feature
    /// subsampling, bootstrap resampling.
    pub fn new() -> RandomForestParams {
        RandomForestParams {
            num_trees: 25,
            tree: DecisionTreeParams::new().with_max_features(MaxFeatures::Sqrt),
            bootstrap: true,
        }
    }

    /// Sets the number of trees.
    pub fn with_num_trees(mut self, n: usize) -> Self {
        self.num_trees = n;
        self
    }

    /// Sets the per-tree parameters.
    pub fn with_tree_params(mut self, tree: DecisionTreeParams) -> Self {
        self.tree = tree;
        self
    }

    /// Enables or disables bootstrap resampling.
    pub fn with_bootstrap(mut self, bootstrap: bool) -> Self {
        self.bootstrap = bootstrap;
        self
    }
}

impl Default for RandomForestParams {
    fn default() -> Self {
        RandomForestParams::new()
    }
}

impl JsonCodec for RandomForestParams {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("num_trees", self.num_trees.to_json()),
            ("tree", self.tree.to_json()),
            ("bootstrap", self.bootstrap.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<RandomForestParams, CodecError> {
        Ok(RandomForestParams {
            num_trees: usize::from_json(json.get("num_trees")?)?,
            tree: DecisionTreeParams::from_json(json.get("tree")?)?,
            bootstrap: bool::from_json(json.get("bootstrap")?)?,
        })
    }
}

impl Estimator for RandomForestParams {
    type Model = RandomForest;

    fn fit(&self, dataset: &Dataset, seed: u64) -> Result<RandomForest, MlError> {
        RandomForest::fit(dataset, self, seed)
    }

    fn fit_resampled(
        &self,
        dataset: &Dataset,
        rows: &[usize],
        seed: u64,
    ) -> Result<RandomForest, MlError> {
        RandomForest::fit_rows(dataset, Some(rows), self, seed)
    }

    fn fit_reference(&self, dataset: &Dataset, seed: u64) -> Result<RandomForest, MlError> {
        RandomForest::fit_reference(dataset, self, seed)
    }

    fn name(&self) -> &'static str {
        "random-forest"
    }
}

/// A trained random forest.
///
/// Prediction is by majority vote of the trees; [`Classifier::predict_proba_one`]
/// reports the fraction of trees voting malware (soft vote). At construction
/// (and again after deserialisation) the trees are compiled into a
/// [`FlatForest`] — struct-of-arrays node storage with one single-tree voting
/// group per tree — and every inference path serves from that flat form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    /// Compiled inference engine; never persisted, rebuilt on load.
    flat: FlatForest,
}

impl RandomForest {
    /// Fits a forest on the dataset.
    ///
    /// Every tree trains on the presorted columnar engine through a
    /// **zero-copy bootstrap view**: the bootstrap draw is kept as a row
    /// index array into `dataset` and all replicates share the dataset's
    /// lazily built column-major feature cache — nothing is materialised.
    /// The grown forest is bit-identical to the retained copy-based
    /// reference path ([`RandomForest::fit_reference`]).
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] when `num_trees == 0` or the
    /// tree parameters are invalid, and propagates tree-training failures.
    pub fn fit(
        dataset: &Dataset,
        params: &RandomForestParams,
        seed: u64,
    ) -> Result<RandomForest, MlError> {
        RandomForest::fit_rows(dataset, None, params, seed)
    }

    /// Fits a forest on a zero-copy view of `dataset` (training row `i` is
    /// dataset row `rows[i]`, repeats allowed). Per-tree bootstrap draws are
    /// composed with `rows`, so even bagged forests never materialise a
    /// replicate. Produces exactly the forest
    /// `fit(&dataset.select(rows), ..)` would.
    pub(crate) fn fit_rows(
        dataset: &Dataset,
        rows: Option<&[usize]>,
        params: &RandomForestParams,
        seed: u64,
    ) -> Result<RandomForest, MlError> {
        if params.num_trees == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "num_trees",
                message: "a forest needs at least one tree".into(),
            });
        }
        let mut seeder = StdRng::seed_from_u64(seed);
        let tree_seeds: Vec<u64> = (0..params.num_trees).map(|_| seeder.gen()).collect();
        let len = rows.map_or(dataset.len(), <[usize]>::len);
        let trees: Result<Vec<DecisionTree>, MlError> = tree_seeds
            .par_iter()
            .map(|&tree_seed| {
                let mut rng = StdRng::seed_from_u64(tree_seed);
                if params.bootstrap {
                    // The draw composes symbolically with the outer view, so
                    // the tree's samples index the shared parent dataset
                    // without materialising either level.
                    let draw = bootstrap_draw(len, &mut rng);
                    let view = match rows {
                        Some(outer) => View::Composed { outer, draw: &draw },
                        None => View::Rows(&draw),
                    };
                    DecisionTree::fit_view(dataset, view, &params.tree, tree_seed)
                } else {
                    let view = match rows {
                        Some(outer) => View::Rows(outer),
                        None => View::Full,
                    };
                    DecisionTree::fit_view(dataset, view, &params.tree, tree_seed)
                }
            })
            .collect();
        Ok(RandomForest::from_trees(trees?))
    }

    /// The pre-optimisation training path: materialises every bootstrap
    /// replicate with [`Dataset::select`] and grows trees with the
    /// per-node-sorting reference fitter. Retained for the equivalence suite
    /// and the `fit_throughput` bench; everything else should call
    /// [`RandomForest::fit`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`RandomForest::fit`].
    pub fn fit_reference(
        dataset: &Dataset,
        params: &RandomForestParams,
        seed: u64,
    ) -> Result<RandomForest, MlError> {
        if params.num_trees == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "num_trees",
                message: "a forest needs at least one tree".into(),
            });
        }
        let mut seeder = StdRng::seed_from_u64(seed);
        let tree_seeds: Vec<u64> = (0..params.num_trees).map(|_| seeder.gen()).collect();
        let trees: Result<Vec<DecisionTree>, MlError> = tree_seeds
            .par_iter()
            .map(|&tree_seed| {
                let mut rng = StdRng::seed_from_u64(tree_seed);
                let training = if params.bootstrap {
                    let (indices, _) = bootstrap_indices(dataset.len(), &mut rng);
                    dataset.select(&indices)
                } else {
                    dataset.clone()
                };
                DecisionTree::fit_reference(&training, &params.tree, tree_seed)
            })
            .collect();
        Ok(RandomForest::from_trees(trees?))
    }

    fn from_trees(trees: Vec<DecisionTree>) -> RandomForest {
        // hmd-lint: allow(no-panic-in-lib) construction-guaranteed: compile_groups only rejects malformed trees, and every tree reaching here was just fitted or decoded through validation
        let flat = compile_groups(&trees).expect("decision trees always compile");
        RandomForest { trees, flat }
    }

    /// The individual trees of the forest (the nested training-time form; the
    /// reference implementation the flat engine is tested against).
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// The compiled flat-node inference engine serving this forest.
    pub fn flat(&self) -> &FlatForest {
        &self.flat
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }
}

impl From<&RandomForest> for FlatForest {
    fn from(forest: &RandomForest) -> FlatForest {
        forest.flat.clone()
    }
}

impl ModelTag for RandomForest {
    const TAG: &'static str = "random-forest";
}

impl JsonCodec for RandomForest {
    fn to_json(&self) -> Json {
        Json::object(vec![("trees", self.trees.to_json())])
    }

    fn from_json(json: &Json) -> Result<RandomForest, CodecError> {
        let trees = Vec::<DecisionTree>::from_json(json.get("trees")?)?;
        if trees.is_empty() {
            return Err(CodecError::new("random forest has no trees"));
        }
        // Every tree must expect the same input width, or a document whose
        // later trees were tampered with would pass the pipeline-level width
        // check (which consults the first tree) and panic at detect time.
        let width = trees[0].num_features();
        for tree in &trees[1..] {
            if tree.num_features() != width {
                return Err(CodecError::new(format!(
                    "random forest trees disagree on feature count ({} vs {})",
                    width,
                    tree.num_features()
                )));
            }
        }
        Ok(RandomForest::from_trees(trees))
    }
}

impl Classifier for RandomForest {
    fn predict_one(&self, features: &[f64]) -> Label {
        Label::from(self.predict_proba_one(features) >= 0.5)
    }

    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        // Flat single-tree groups vote exactly like the nested
        // `trees().iter().filter(is_malware).count()` walk.
        self.flat.predict_proba_one(features)
    }

    fn predict_with_proba_one(&self, features: &[f64]) -> (Label, f64) {
        let p = self.predict_proba_one(features);
        (Label::from(p >= 0.5), p)
    }

    fn predict_proba_batch(&self, batch: hmd_data::RowsView<'_>, out: &mut Vec<f64>) {
        self.flat.predict_proba_batch(batch, out);
    }

    fn predict_with_proba_batch(&self, batch: hmd_data::RowsView<'_>, out: &mut Vec<(Label, f64)>) {
        self.flat.predict_with_proba_batch(batch, out);
    }

    fn append_flat_group(&self, builder: &mut FlatForestBuilder) -> bool {
        // As an ensemble member the whole forest casts one vote: all of its
        // trees join a single voting group.
        for tree in &self.trees {
            tree.append_flat_group(builder);
        }
        true
    }

    fn input_width(&self) -> Option<usize> {
        self.trees.first().and_then(|t| t.input_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Matrix;
    use rand::Rng;

    fn blob_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let malware = rng.gen_bool(0.5);
            let centre = if malware { 1.0 } else { -1.0 };
            rows.push(vec![
                centre + rng.gen_range(-0.4..0.4),
                centre + rng.gen_range(-0.4..0.4),
            ]);
            labels.push(Label::from(malware));
        }
        Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn forest_outperforms_chance_on_blobs() {
        let train = blob_dataset(200, 1);
        let test = blob_dataset(100, 2);
        let forest = RandomForestParams::new()
            .with_num_trees(15)
            .fit(&train, 7)
            .unwrap();
        let acc = forest
            .predict(test.features())
            .iter()
            .zip(test.labels())
            .filter(|(p, l)| p == l)
            .count() as f64
            / test.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn zero_trees_is_rejected() {
        let ds = blob_dataset(20, 3);
        let err = RandomForestParams::new()
            .with_num_trees(0)
            .fit(&ds, 0)
            .unwrap_err();
        assert!(matches!(err, MlError::InvalidHyperparameter { .. }));
    }

    #[test]
    fn proba_is_vote_fraction() {
        let ds = blob_dataset(100, 4);
        let forest = RandomForestParams::new()
            .with_num_trees(10)
            .fit(&ds, 5)
            .unwrap();
        let p = forest.predict_proba_one(&[1.0, 1.0]);
        assert!((0.0..=1.0).contains(&p));
        // vote fraction is a multiple of 1/num_trees
        let scaled = p * 10.0;
        assert!((scaled - scaled.round()).abs() < 1e-9);
    }

    #[test]
    fn training_is_deterministic_in_seed() {
        let ds = blob_dataset(80, 6);
        let a = RandomForestParams::new()
            .with_num_trees(5)
            .fit(&ds, 11)
            .unwrap();
        let b = RandomForestParams::new()
            .with_num_trees(5)
            .fit(&ds, 11)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn without_bootstrap_trees_differ_only_by_feature_sampling() {
        let ds = blob_dataset(60, 8);
        let forest = RandomForestParams::new()
            .with_num_trees(5)
            .with_bootstrap(false)
            .fit(&ds, 3)
            .unwrap();
        assert_eq!(forest.num_trees(), 5);
    }
}
