//! Classification metrics: confusion matrix, accuracy, precision, recall, F1
//! and ROC-AUC.
//!
//! Malware is the positive class throughout, matching the paper's F1
//! reporting.

use hmd_data::Label;
use serde::{Deserialize, Serialize};
use std::fmt;

/// 2×2 confusion matrix for the benign/malware task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Malware predicted as malware.
    pub true_positives: usize,
    /// Benign predicted as benign.
    pub true_negatives: usize,
    /// Benign predicted as malware.
    pub false_positives: usize,
    /// Malware predicted as benign.
    pub false_negatives: usize,
}

impl ConfusionMatrix {
    /// Builds the confusion matrix from parallel slices of ground truth and
    /// predictions.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(truth: &[Label], predicted: &[Label]) -> ConfusionMatrix {
        assert_eq!(
            truth.len(),
            predicted.len(),
            "truth and prediction lengths differ"
        );
        let mut cm = ConfusionMatrix::default();
        for (&t, &p) in truth.iter().zip(predicted) {
            match (t, p) {
                (Label::Malware, Label::Malware) => cm.true_positives += 1,
                (Label::Benign, Label::Benign) => cm.true_negatives += 1,
                (Label::Benign, Label::Malware) => cm.false_positives += 1,
                (Label::Malware, Label::Benign) => cm.false_negatives += 1,
            }
        }
        cm
    }

    /// Total number of samples.
    pub fn total(&self) -> usize {
        self.true_positives + self.true_negatives + self.false_positives + self.false_negatives
    }

    /// Fraction of correct predictions. Returns 0 for an empty matrix.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.true_positives + self.true_negatives) as f64 / self.total() as f64
    }

    /// Precision of the malware class. Returns 0 when nothing was predicted
    /// malware.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// Recall of the malware class. Returns 0 when there are no malware
    /// samples.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.true_positives as f64 / denom as f64
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1_score(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// False-positive rate (benign flagged as malware).
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.false_positives + self.true_negatives;
        if denom == 0 {
            return 0.0;
        }
        self.false_positives as f64 / denom as f64
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "              pred benign  pred malware")?;
        writeln!(
            f,
            "true benign   {:>11}  {:>12}",
            self.true_negatives, self.false_positives
        )?;
        write!(
            f,
            "true malware  {:>11}  {:>12}",
            self.false_negatives, self.true_positives
        )
    }
}

/// Convenience wrapper: accuracy of predictions against ground truth.
pub fn accuracy(truth: &[Label], predicted: &[Label]) -> f64 {
    ConfusionMatrix::from_predictions(truth, predicted).accuracy()
}

/// Convenience wrapper: malware-class F1 of predictions against ground truth.
pub fn f1_score(truth: &[Label], predicted: &[Label]) -> f64 {
    ConfusionMatrix::from_predictions(truth, predicted).f1_score()
}

/// Convenience wrapper: malware-class precision.
pub fn precision(truth: &[Label], predicted: &[Label]) -> f64 {
    ConfusionMatrix::from_predictions(truth, predicted).precision()
}

/// Convenience wrapper: malware-class recall.
pub fn recall(truth: &[Label], predicted: &[Label]) -> f64 {
    ConfusionMatrix::from_predictions(truth, predicted).recall()
}

/// Area under the ROC curve computed with the rank statistic
/// (Mann–Whitney U). Ties receive half credit. Returns 0.5 when either class
/// is absent.
pub fn roc_auc(truth: &[Label], scores: &[f64]) -> f64 {
    assert_eq!(truth.len(), scores.len(), "truth and score lengths differ");
    let positives: Vec<f64> = truth
        .iter()
        .zip(scores)
        .filter(|(t, _)| t.is_malware())
        .map(|(_, &s)| s)
        .collect();
    let negatives: Vec<f64> = truth
        .iter()
        .zip(scores)
        .filter(|(t, _)| !t.is_malware())
        .map(|(_, &s)| s)
        .collect();
    if positives.is_empty() || negatives.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &p in &positives {
        for &n in &negatives {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (positives.len() * negatives.len()) as f64
}

/// Full classification report for a model evaluated on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassificationReport {
    /// The confusion matrix.
    pub confusion: ConfusionMatrix,
    /// Accuracy.
    pub accuracy: f64,
    /// Malware-class precision.
    pub precision: f64,
    /// Malware-class recall.
    pub recall: f64,
    /// Malware-class F1.
    pub f1: f64,
}

impl ClassificationReport {
    /// Builds a report from ground truth and predictions.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(truth: &[Label], predicted: &[Label]) -> ClassificationReport {
        let confusion = ConfusionMatrix::from_predictions(truth, predicted);
        ClassificationReport {
            accuracy: confusion.accuracy(),
            precision: confusion.precision(),
            recall: confusion.recall(),
            f1: confusion.f1_score(),
            confusion,
        }
    }
}

impl fmt::Display for ClassificationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "accuracy {:.4}  precision {:.4}  recall {:.4}  f1 {:.4}",
            self.accuracy, self.precision, self.recall, self.f1
        )?;
        write!(f, "{}", self.confusion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: Label = Label::Benign;
    const M: Label = Label::Malware;

    #[test]
    fn confusion_matrix_counts() {
        let truth = [M, M, B, B, M];
        let pred = [M, B, B, M, M];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred);
        assert_eq!(cm.true_positives, 2);
        assert_eq!(cm.false_negatives, 1);
        assert_eq!(cm.false_positives, 1);
        assert_eq!(cm.true_negatives, 1);
        assert_eq!(cm.total(), 5);
    }

    #[test]
    fn perfect_predictions_score_one() {
        let truth = [M, B, M, B];
        assert_eq!(accuracy(&truth, &truth), 1.0);
        assert_eq!(f1_score(&truth, &truth), 1.0);
        assert_eq!(precision(&truth, &truth), 1.0);
        assert_eq!(recall(&truth, &truth), 1.0);
    }

    #[test]
    fn degenerate_cases_return_zero_not_nan() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), 0.0);
        assert_eq!(cm.recall(), 0.0);
        assert_eq!(cm.f1_score(), 0.0);
        assert_eq!(cm.false_positive_rate(), 0.0);
    }

    #[test]
    fn f1_matches_hand_computation() {
        let truth = [M, M, M, B, B];
        let pred = [M, M, B, M, B];
        // precision 2/3, recall 2/3 => f1 = 2/3
        assert!((f1_score(&truth, &pred) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn roc_auc_perfect_and_random() {
        let truth = [M, M, B, B];
        assert_eq!(roc_auc(&truth, &[0.9, 0.8, 0.2, 0.1]), 1.0);
        assert_eq!(roc_auc(&truth, &[0.1, 0.2, 0.8, 0.9]), 0.0);
        assert_eq!(roc_auc(&truth, &[0.5, 0.5, 0.5, 0.5]), 0.5);
        // single-class degenerate case
        assert_eq!(roc_auc(&[M, M], &[0.1, 0.9]), 0.5);
    }

    #[test]
    fn report_aggregates_all_metrics() {
        let truth = [M, M, B, B];
        let pred = [M, B, B, B];
        let report = ClassificationReport::from_predictions(&truth, &pred);
        assert_eq!(report.accuracy, 0.75);
        assert_eq!(report.precision, 1.0);
        assert_eq!(report.recall, 0.5);
        let text = report.to_string();
        assert!(text.contains("f1"));
        assert!(text.contains("true malware"));
    }

    #[test]
    #[should_panic(expected = "lengths differ")]
    fn mismatched_lengths_panic() {
        let _ = ConfusionMatrix::from_predictions(&[M], &[M, B]);
    }
}
