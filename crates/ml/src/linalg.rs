//! Small linear-algebra helpers: covariance matrices and a Jacobi
//! eigensolver for symmetric matrices (used by [`crate::pca::Pca`]).

use crate::MlError;
use hmd_data::Matrix;

/// Sample covariance matrix of the rows of `data` (columns are variables).
///
/// Uses the `1/(n-1)` normalisation; a single-row matrix yields all zeros.
pub fn covariance_matrix(data: &Matrix) -> Matrix {
    let n = data.rows();
    let d = data.cols();
    let means = data.column_means();
    let mut cov = Matrix::zeros(d, d);
    if n < 2 {
        return cov;
    }
    for row in data.iter_rows() {
        for i in 0..d {
            let di = row[i] - means[i];
            for j in i..d {
                let dj = row[j] - means[j];
                cov[(i, j)] += di * dj;
            }
        }
    }
    let norm = 1.0 / (n as f64 - 1.0);
    for i in 0..d {
        for j in i..d {
            let v = cov[(i, j)] * norm;
            cov[(i, j)] = v;
            cov[(j, i)] = v;
        }
    }
    cov
}

/// Eigen-decomposition of a symmetric matrix, sorted by descending eigenvalue.
#[derive(Debug, Clone, PartialEq)]
pub struct SymmetricEigen {
    /// Eigenvalues in descending order.
    pub eigenvalues: Vec<f64>,
    /// Eigenvectors stored as matrix columns, aligned with `eigenvalues`.
    pub eigenvectors: Matrix,
}

/// Cyclic Jacobi eigen-decomposition of a symmetric matrix.
///
/// # Errors
///
/// Returns [`MlError::InvalidHyperparameter`] when the matrix is not square
/// and [`MlError::DidNotConverge`] when off-diagonal mass remains after the
/// sweep budget (does not happen for well-conditioned covariance matrices).
pub fn jacobi_eigen(matrix: &Matrix, max_sweeps: usize) -> Result<SymmetricEigen, MlError> {
    let n = matrix.rows();
    if matrix.cols() != n {
        return Err(MlError::InvalidHyperparameter {
            name: "matrix",
            message: format!(
                "eigendecomposition requires a square matrix, got {}x{}",
                matrix.rows(),
                matrix.cols()
            ),
        });
    }
    let mut a = matrix.clone();
    let mut v = Matrix::zeros(n, n);
    for i in 0..n {
        v[(i, i)] = 1.0;
    }

    let off_diagonal_norm = |a: &Matrix| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    s += a[(i, j)] * a[(i, j)];
                }
            }
        }
        s.sqrt()
    };

    let tolerance = 1e-12 * (1.0 + off_diagonal_norm(&a));
    let mut converged = false;
    for _ in 0..max_sweeps {
        if off_diagonal_norm(&a) < tolerance {
            converged = true;
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    if !converged && off_diagonal_norm(&a) >= tolerance {
        return Err(MlError::DidNotConverge {
            learner: "jacobi-eigen",
            iterations: max_sweeps,
        });
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[(j, j)].total_cmp(&a[(i, i)]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for r in 0..n {
            eigenvectors[(r, new_col)] = v[(r, old_col)];
        }
    }
    Ok(SymmetricEigen {
        eigenvalues,
        eigenvectors,
    })
}

/// Squared Euclidean distance between two equally sized vectors.
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Pairwise squared Euclidean distances between the rows of `data`.
pub fn pairwise_squared_distances(data: &Matrix) -> Matrix {
    let n = data.rows();
    let mut out = Matrix::zeros(n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = squared_distance(data.row(i), data.row(j));
            out[(i, j)] = d;
            out[(j, i)] = d;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covariance_of_independent_columns_is_diagonal() {
        let data = Matrix::from_rows(&[
            vec![1.0, 10.0],
            vec![2.0, 10.0],
            vec![3.0, 10.0],
            vec![4.0, 10.0],
        ])
        .unwrap();
        let cov = covariance_matrix(&data);
        assert!((cov[(0, 0)] - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(cov[(1, 1)], 0.0);
        assert_eq!(cov[(0, 1)], 0.0);
    }

    #[test]
    fn jacobi_recovers_known_eigenvalues() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = jacobi_eigen(&m, 50).unwrap();
        assert!((eig.eigenvalues[0] - 3.0).abs() < 1e-9);
        assert!((eig.eigenvalues[1] - 1.0).abs() < 1e-9);
        // eigenvector for lambda=3 is (1,1)/sqrt(2)
        let v0 = eig.eigenvectors.column(0);
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!((v0[0] - v0[1]).abs() < 1e-6);
    }

    #[test]
    fn jacobi_eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 1.0],
        ])
        .unwrap();
        let eig = jacobi_eigen(&m, 100).unwrap();
        let vt_v = eig
            .eigenvectors
            .transpose()
            .matmul(&eig.eigenvectors)
            .unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((vt_v[(i, j)] - expected).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn jacobi_rejects_non_square_input() {
        let m = Matrix::zeros(2, 3);
        assert!(jacobi_eigen(&m, 10).is_err());
    }

    #[test]
    fn trace_is_preserved() {
        let m = Matrix::from_rows(&[
            vec![5.0, 2.0, 1.0],
            vec![2.0, 4.0, 0.0],
            vec![1.0, 0.0, 3.0],
        ])
        .unwrap();
        let eig = jacobi_eigen(&m, 100).unwrap();
        let trace = 5.0 + 4.0 + 3.0;
        let sum: f64 = eig.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn pairwise_distances_are_symmetric_with_zero_diagonal() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0], vec![1.0, 1.0]]).unwrap();
        let d = pairwise_squared_distances(&data);
        assert_eq!(d[(0, 1)], 25.0);
        assert_eq!(d[(1, 0)], 25.0);
        assert_eq!(d[(2, 2)], 0.0);
    }
}
