//! Cross-validation utilities.
//!
//! Folds are independent, so [`cross_val_f1`] evaluates them in parallel on
//! the persistent worker pool, training each fold through
//! [`Estimator::fit_resampled`] so tree-based learners see a zero-copy view
//! of the parent dataset (one shared columnar cache, no per-fold training
//! copies). Scores are bit-identical to the sequential fold-by-fold loop:
//! every fold derives its seed from its position, not from execution order.

use crate::metrics::f1_score;
use crate::{Classifier, Estimator, MlError};
use hmd_data::{DataError, Dataset};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

/// One fold's `(train_indices, validation_indices)` pair.
pub type FoldIndices = (Vec<usize>, Vec<usize>);

/// K-fold cross-validation splitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KFold {
    /// Number of folds.
    pub folds: usize,
    /// Whether indices are shuffled before folding.
    pub shuffle: bool,
}

impl KFold {
    /// Creates a splitter with the given number of folds (shuffled).
    pub fn new(folds: usize) -> KFold {
        KFold {
            folds,
            shuffle: true,
        }
    }

    /// Returns `(train_indices, validation_indices)` pairs for every fold.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] when there are fewer samples
    /// than folds or fewer than two folds.
    pub fn split(&self, len: usize, seed: u64) -> Result<Vec<FoldIndices>, DataError> {
        if self.folds < 2 {
            return Err(DataError::InvalidParameter {
                name: "folds",
                message: format!("need at least 2 folds, got {}", self.folds),
            });
        }
        if len < self.folds {
            return Err(DataError::InvalidParameter {
                name: "folds",
                message: format!("cannot split {len} samples into {} folds", self.folds),
            });
        }
        let mut indices: Vec<usize> = (0..len).collect();
        if self.shuffle {
            let mut rng = StdRng::seed_from_u64(seed);
            indices.shuffle(&mut rng);
        }
        let mut folds = Vec::with_capacity(self.folds);
        let base = len / self.folds;
        let remainder = len % self.folds;
        let mut start = 0;
        for f in 0..self.folds {
            let size = base + usize::from(f < remainder);
            let validation: Vec<usize> = indices[start..start + size].to_vec();
            let train: Vec<usize> = indices[..start]
                .iter()
                .chain(&indices[start + size..])
                .copied()
                .collect();
            folds.push((train, validation));
            start += size;
        }
        Ok(folds)
    }
}

/// Cross-validated F1 scores of an estimator (one score per fold).
///
/// Folds run in parallel across the worker pool; each fold's model trains on
/// a zero-copy view of the dataset via [`Estimator::fit_resampled`] with a
/// seed derived from the fold's position, so the scores are exactly the ones
/// the sequential loop produces, in fold order.
///
/// # Errors
///
/// Propagates splitting errors and the first (by fold order) training error.
pub fn cross_val_f1<E: Estimator>(
    estimator: &E,
    dataset: &Dataset,
    folds: usize,
    seed: u64,
) -> Result<Vec<f64>, MlError> {
    let splitter = KFold::new(folds);
    let indexed: Vec<(usize, FoldIndices)> = splitter
        .split(dataset.len(), seed)?
        .into_iter()
        .enumerate()
        .collect();
    indexed
        .par_iter()
        .map(|(fold_index, (train_idx, val_idx))| {
            let validation = dataset.select(val_idx);
            let model = estimator.fit_resampled(
                dataset,
                train_idx,
                seed.wrapping_add(*fold_index as u64),
            )?;
            let predictions = model.predict(validation.features());
            Ok(f1_score(validation.labels(), &predictions))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::DecisionTreeParams;
    use hmd_data::{Label, Matrix};
    use rand::Rng;

    #[test]
    fn kfold_partitions_every_index_exactly_once() {
        let folds = KFold::new(4).split(22, 3).unwrap();
        assert_eq!(folds.len(), 4);
        let mut seen = [0usize; 22];
        for (train, validation) in &folds {
            assert_eq!(train.len() + validation.len(), 22);
            for &i in validation {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn kfold_rejects_bad_configurations() {
        assert!(KFold::new(1).split(10, 0).is_err());
        assert!(KFold::new(11).split(10, 0).is_err());
    }

    #[test]
    fn parallel_scores_match_the_sequential_loop_exactly() {
        let mut rng = StdRng::seed_from_u64(41);
        let rows: Vec<Vec<f64>> = (0..90)
            .map(|_| {
                vec![
                    rng.gen_range(-1.0..1.0f64),
                    rng.gen_range(-1.0..1.0f64),
                    rng.gen_range(-1.0..1.0f64),
                ]
            })
            .collect();
        let labels: Vec<Label> = rows
            .iter()
            .map(|r| Label::from(r[0] + 0.3 * r[1] > 0.0))
            .collect();
        let ds = Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap();

        for seed in [0u64, 7, 1234] {
            let estimator = DecisionTreeParams::new().with_max_depth(6);
            let parallel = cross_val_f1(&estimator, &ds, 5, seed).unwrap();

            // Sequential reference: the pre-parallelisation fold-by-fold
            // loop (materialised fold training sets, same per-fold seeds).
            let mut sequential = Vec::new();
            for (fold_index, (train_idx, val_idx)) in KFold::new(5)
                .split(ds.len(), seed)
                .unwrap()
                .into_iter()
                .enumerate()
            {
                let train = ds.select(&train_idx);
                let validation = ds.select(&val_idx);
                let model = estimator
                    .fit(&train, seed.wrapping_add(fold_index as u64))
                    .unwrap();
                let predictions = model.predict(validation.features());
                sequential.push(f1_score(validation.labels(), &predictions));
            }

            assert_eq!(parallel.len(), sequential.len());
            for (p, s) in parallel.iter().zip(&sequential) {
                assert_eq!(p.to_bits(), s.to_bits(), "fold scores must be bit-equal");
            }
        }
    }

    #[test]
    fn cross_val_f1_is_high_on_separable_data() {
        let mut rng = StdRng::seed_from_u64(5);
        let rows: Vec<Vec<f64>> = (0..120)
            .map(|_| vec![rng.gen_range(-1.0..1.0f64), rng.gen_range(-1.0..1.0f64)])
            .collect();
        let labels: Vec<Label> = rows.iter().map(|r| Label::from(r[0] > 0.0)).collect();
        let ds = Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap();
        let scores = cross_val_f1(&DecisionTreeParams::new(), &ds, 5, 1).unwrap();
        assert_eq!(scores.len(), 5);
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!(mean > 0.85, "mean f1 {mean}");
    }
}
