//! Exact t-SNE (t-distributed Stochastic Neighbour Embedding).
//!
//! Used to reproduce Fig. 8 of the paper: the 2-D visualisation of the DVFS
//! and HPC training data that shows disjoint classes for DVFS and heavily
//! overlapping classes for HPC. The implementation follows van der Maaten &
//! Hinton (2008): Gaussian input affinities with per-point perplexity
//! calibration, Student-t output affinities, gradient descent with momentum
//! and early exaggeration. Complexity is O(n²), which is ample for the
//! (sub)sampled corpora the figure uses.

use crate::linalg::pairwise_squared_distances;
use crate::MlError;
use hmd_data::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TsneParams {
    /// Output dimensionality (2 for the paper's plots).
    pub output_dims: usize,
    /// Target perplexity of the Gaussian input neighbourhoods.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the
    /// iterations.
    pub early_exaggeration: f64,
    /// Momentum after the early-exaggeration phase.
    pub momentum: f64,
}

impl TsneParams {
    /// Defaults matching common practice: 2-D output, perplexity 30,
    /// 500 iterations, learning rate 100.
    pub fn new() -> TsneParams {
        TsneParams {
            output_dims: 2,
            perplexity: 30.0,
            iterations: 500,
            learning_rate: 100.0,
            early_exaggeration: 4.0,
            momentum: 0.8,
        }
    }

    /// Sets the perplexity.
    pub fn with_perplexity(mut self, perplexity: f64) -> Self {
        self.perplexity = perplexity;
        self
    }

    /// Sets the number of iterations.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    fn validate(&self, n: usize) -> Result<(), MlError> {
        if self.output_dims == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "output_dims",
                message: "must be at least 1".into(),
            });
        }
        // partial_cmp keeps the NaN-rejecting behaviour of `!(x > 1.0)`.
        let perplexity_valid = self
            .perplexity
            // hmd-lint: allow(float-total-cmp) intentional NaN-rejecting validation: a NaN perplexity must compare as invalid, which total_cmp would wrongly accept
            .partial_cmp(&1.0)
            .is_some_and(|ord| ord == std::cmp::Ordering::Greater);
        if !perplexity_valid {
            return Err(MlError::InvalidHyperparameter {
                name: "perplexity",
                message: format!("must exceed 1, got {}", self.perplexity),
            });
        }
        if n < 4 {
            return Err(MlError::TrainingFailed {
                message: format!("t-SNE needs at least 4 points, got {n}"),
            });
        }
        Ok(())
    }
}

impl Default for TsneParams {
    fn default() -> Self {
        TsneParams::new()
    }
}

/// Exact t-SNE embedder.
#[derive(Debug, Clone, PartialEq)]
pub struct Tsne {
    params: TsneParams,
}

impl Tsne {
    /// Creates an embedder with the given parameters.
    pub fn new(params: TsneParams) -> Tsne {
        Tsne { params }
    }

    /// Embeds the rows of `data` into `output_dims` dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] / [`MlError::TrainingFailed`]
    /// for invalid parameters or too few points.
    pub fn embed(&self, data: &Matrix, seed: u64) -> Result<Matrix, MlError> {
        let n = data.rows();
        self.params.validate(n)?;
        let p = self.joint_probabilities(data);
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = self.params.output_dims;

        let mut y = Matrix::zeros(n, dims);
        for r in 0..n {
            for c in 0..dims {
                y[(r, c)] = rng.gen_range(-1e-4..1e-4);
            }
        }
        let mut velocity = Matrix::zeros(n, dims);
        let exaggeration_cutoff = self.params.iterations / 4;

        for iter in 0..self.params.iterations {
            let exaggeration = if iter < exaggeration_cutoff {
                self.params.early_exaggeration
            } else {
                1.0
            };
            let momentum = if iter < exaggeration_cutoff {
                0.5
            } else {
                self.params.momentum
            };

            // Student-t output affinities q_ij (unnormalised in `num`).
            let dist = pairwise_squared_distances(&y);
            let mut num = Matrix::zeros(n, n);
            let mut q_sum = 0.0;
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let v = 1.0 / (1.0 + dist[(i, j)]);
                    num[(i, j)] = v;
                    q_sum += v;
                }
            }
            let q_sum = q_sum.max(1e-12);

            // Gradient: 4 * sum_j (exagg*p_ij - q_ij) * num_ij * (y_i - y_j)
            let mut grad = Matrix::zeros(n, dims);
            for i in 0..n {
                for j in 0..n {
                    if i == j {
                        continue;
                    }
                    let q = num[(i, j)] / q_sum;
                    let coeff = 4.0 * (exaggeration * p[(i, j)] - q) * num[(i, j)];
                    for c in 0..dims {
                        grad[(i, c)] += coeff * (y[(i, c)] - y[(j, c)]);
                    }
                }
            }

            for r in 0..n {
                for c in 0..dims {
                    velocity[(r, c)] =
                        momentum * velocity[(r, c)] - self.params.learning_rate * grad[(r, c)];
                    y[(r, c)] += velocity[(r, c)];
                }
            }

            // Re-centre to keep the embedding from drifting.
            let means = y.column_means();
            for r in 0..n {
                for c in 0..dims {
                    y[(r, c)] -= means[c];
                }
            }
        }
        Ok(y)
    }

    /// Symmetrised joint probabilities `p_ij` with per-point perplexity
    /// calibration.
    fn joint_probabilities(&self, data: &Matrix) -> Matrix {
        let n = data.rows();
        let dist = pairwise_squared_distances(data);
        let target_entropy = self.params.perplexity.ln();
        let mut p_conditional = Matrix::zeros(n, n);

        for i in 0..n {
            // Binary search the Gaussian precision beta so that the row's
            // perplexity matches the target.
            let mut beta = 1.0;
            let mut beta_min = f64::NEG_INFINITY;
            let mut beta_max = f64::INFINITY;
            let mut row = vec![0.0; n];
            for _ in 0..50 {
                let mut sum = 0.0;
                for j in 0..n {
                    if i == j {
                        row[j] = 0.0;
                        continue;
                    }
                    let v = (-dist[(i, j)] * beta).exp();
                    row[j] = v;
                    sum += v;
                }
                let sum = sum.max(1e-300);
                let mut entropy = 0.0;
                for (j, value) in row.iter().enumerate() {
                    if i == j || *value <= 0.0 {
                        continue;
                    }
                    let p = value / sum;
                    entropy -= p * p.ln();
                }
                let diff = entropy - target_entropy;
                if diff.abs() < 1e-5 {
                    break;
                }
                if diff > 0.0 {
                    beta_min = beta;
                    beta = if beta_max.is_infinite() {
                        beta * 2.0
                    } else {
                        (beta + beta_max) / 2.0
                    };
                } else {
                    beta_max = beta;
                    beta = if beta_min.is_infinite() {
                        beta / 2.0
                    } else {
                        (beta + beta_min) / 2.0
                    };
                }
            }
            let sum: f64 = row.iter().sum::<f64>().max(1e-300);
            for j in 0..n {
                if i != j {
                    p_conditional[(i, j)] = row[j] / sum;
                }
            }
        }

        // Symmetrise and normalise.
        let mut p = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                p[(i, j)] =
                    ((p_conditional[(i, j)] + p_conditional[(j, i)]) / (2.0 * n as f64)).max(1e-12);
            }
        }
        p
    }
}

impl Default for Tsne {
    fn default() -> Self {
        Tsne::new(TsneParams::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::squared_distance;

    /// Two well separated Gaussian blobs in 5-D.
    fn two_blobs(per_cluster: usize) -> (Matrix, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(3);
        let mut rows = Vec::new();
        let mut cluster = Vec::new();
        for c in 0..2 {
            let centre = if c == 0 { -5.0 } else { 5.0 };
            for _ in 0..per_cluster {
                rows.push((0..5).map(|_| centre + rng.gen_range(-0.5..0.5)).collect());
                cluster.push(c);
            }
        }
        (Matrix::from_rows(&rows).unwrap(), cluster)
    }

    #[test]
    fn embedding_has_requested_shape() {
        let (data, _) = two_blobs(15);
        let tsne = Tsne::new(TsneParams::new().with_perplexity(5.0).with_iterations(100));
        let y = tsne.embed(&data, 0).unwrap();
        assert_eq!(y.shape(), (30, 2));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn separated_blobs_stay_separated() {
        let (data, cluster) = two_blobs(15);
        let tsne = Tsne::new(TsneParams::new().with_perplexity(5.0).with_iterations(250));
        let y = tsne.embed(&data, 1).unwrap();
        // Mean intra-cluster distance should be well below inter-cluster distance.
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for i in 0..y.rows() {
            for j in (i + 1)..y.rows() {
                let d = squared_distance(y.row(i), y.row(j)).sqrt();
                if cluster[i] == cluster[j] {
                    intra.push(d);
                } else {
                    inter.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&inter) > 1.5 * mean(&intra),
            "inter {} vs intra {}",
            mean(&inter),
            mean(&intra)
        );
    }

    #[test]
    fn too_few_points_is_an_error() {
        let data = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        assert!(Tsne::default().embed(&data, 0).is_err());
    }

    #[test]
    fn invalid_perplexity_is_rejected() {
        let (data, _) = two_blobs(5);
        let tsne = Tsne::new(TsneParams::new().with_perplexity(0.5));
        assert!(tsne.embed(&data, 0).is_err());
    }

    #[test]
    fn joint_probabilities_are_symmetric_and_normalised() {
        let (data, _) = two_blobs(8);
        let tsne = Tsne::new(TsneParams::new().with_perplexity(4.0));
        let p = tsne.joint_probabilities(&data);
        let n = p.rows();
        let mut total = 0.0;
        for i in 0..n {
            for j in 0..n {
                assert!((p[(i, j)] - p[(j, i)]).abs() < 1e-9);
                total += p[(i, j)];
            }
        }
        assert!((total - 1.0).abs() < 0.05, "total probability {total}");
    }
}
