//! Hand-rolled classical machine learning substrate for the HMD uncertainty
//! workspace.
//!
//! The paper's evaluation pipeline is built on scikit-learn; the Rust ML
//! ecosystem offers no equivalent, so this crate re-implements every learner
//! and tool the paper needs from scratch:
//!
//! * [`tree::DecisionTree`] / [`forest::RandomForest`] — CART trees and
//!   bootstrap-aggregated forests.
//! * [`logistic::LogisticRegression`] — L2-regularised logistic regression.
//! * [`svm::LinearSvm`] — linear SVM trained with the Pegasos sub-gradient
//!   solver, with optional [`platt::PlattScaler`] probability calibration.
//! * [`bagging::BaggingEnsemble`] — Breiman bagging over any [`Estimator`],
//!   exposing the individual base classifiers exactly like scikit-learn's
//!   `estimators_` attribute (which the paper's uncertainty estimator reads).
//! * [`flat`] — the compiled inference engine: fitted tree models flatten
//!   into cache-packed struct-of-arrays node storage ([`flat::FlatTree`],
//!   [`flat::FlatForest`]) that every batch hot path serves from, with
//!   bit-identical predictions to the nested training-time structures.
//! * [`fastfit`] — the presorted columnar training engine behind
//!   [`tree::DecisionTree::fit`]: each feature is sorted once per tree, the
//!   sorted index arrays are partitioned down the tree, features are read
//!   through the dataset's lazy column-major cache, and bootstrap replicates
//!   train as zero-copy row views — with trees bit-identical to the retained
//!   per-node-sorting reference fitter.
//! * [`metrics`] — accuracy, precision, recall, F1, ROC-AUC, confusion matrix.
//! * [`pca::Pca`] — principal component analysis via a Jacobi eigensolver.
//! * [`tsne::Tsne`] — exact t-SNE for the latent-space visualisations (Fig. 8).
//! * [`model_selection`] — k-fold cross validation.
//!
//! # Example
//!
//! ```
//! use hmd_data::{Dataset, Label, Matrix};
//! use hmd_ml::forest::RandomForestParams;
//! use hmd_ml::{Classifier, Estimator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let features = Matrix::from_rows(&[
//!     vec![0.1, 0.2], vec![0.2, 0.1], vec![0.9, 0.8], vec![0.8, 0.9],
//! ])?;
//! let labels = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
//! let train = Dataset::new(features, labels)?;
//! let forest = RandomForestParams::new().with_num_trees(11).fit(&train, 7)?;
//! assert_eq!(forest.predict_one(&[0.85, 0.95]), Label::Malware);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bagging;
mod error;
pub mod fastfit;
pub mod flat;
pub mod forest;
pub mod linalg;
pub mod logistic;
pub mod metrics;
pub mod model_selection;
pub mod pca;
pub mod platt;
pub mod svm;
mod traits;
pub mod tree;
pub mod tsne;

pub use error::MlError;
pub use traits::{Classifier, Estimator, ModelTag};
