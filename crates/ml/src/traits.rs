use crate::flat::FlatForestBuilder;
use crate::MlError;
use hmd_data::{Dataset, Label, Matrix, RowsView};
use rayon::prelude::*;

/// Row count from which the default batch implementations fan rows out
/// across the persistent worker pool instead of scoring serially.
const PAR_BATCH_MIN_ROWS: usize = 512;

/// A trained binary classifier.
///
/// Every learner in this crate predicts the benign/malware [`Label`] of a
/// feature vector and can also report a score interpretable as the
/// probability of the malware class (used by the Platt-scaling baseline and
/// by soft-voting ensembles).
pub trait Classifier: Send + Sync {
    /// Predicts the label of a single feature vector.
    fn predict_one(&self, features: &[f64]) -> Label;

    /// Score in `[0, 1]` interpretable as `P(malware | features)`.
    ///
    /// Learners without a native probabilistic output return a calibrated or
    /// squashed decision value; the default implementation returns `1.0` or
    /// `0.0` from the hard prediction.
    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        if self.predict_one(features).is_malware() {
            1.0
        } else {
            0.0
        }
    }

    /// Predicts the labels of every row of a feature matrix.
    fn predict(&self, features: &Matrix) -> Vec<Label> {
        features
            .iter_rows()
            .map(|row| self.predict_one(row))
            .collect()
    }

    /// Malware probabilities for every row of a feature matrix.
    fn predict_proba(&self, features: &Matrix) -> Vec<f64> {
        features
            .iter_rows()
            .map(|row| self.predict_proba_one(row))
            .collect()
    }

    /// Label and probability of one feature vector in a single evaluation.
    ///
    /// The default calls both prediction methods; learners whose label and
    /// probability come from the same internal evaluation override this so
    /// batch hot paths do not walk the model twice per row.
    fn predict_with_proba_one(&self, features: &[f64]) -> (Label, f64) {
        (self.predict_one(features), self.predict_proba_one(features))
    }

    /// Malware probabilities for every row of a borrowed batch view, written
    /// into a caller-owned buffer — the batch-first hot path. Taking a
    /// [`RowsView`] keeps the trait object-safe while letting callers score
    /// any row range of an existing matrix with zero copies.
    ///
    /// The default scores rows through [`Classifier::predict_proba_one`] —
    /// serially for small batches, across the worker pool for large ones.
    /// Models backed by the [`crate::flat`] engine override this with a
    /// tiled traversal over cache-packed node arrays.
    fn predict_proba_batch(&self, batch: RowsView<'_>, out: &mut Vec<f64>) {
        out.clear();
        if batch.rows() >= PAR_BATCH_MIN_ROWS {
            let rows: Vec<&[f64]> = batch.iter_rows().collect();
            let scored: Vec<f64> = rows
                .par_iter()
                .map(|row| self.predict_proba_one(row))
                .collect();
            out.extend(scored);
            return;
        }
        out.extend(batch.iter_rows().map(|row| self.predict_proba_one(row)));
    }

    /// Labels and probabilities for every row of a borrowed batch view in one
    /// pass, written into a caller-owned buffer.
    ///
    /// The default calls [`Classifier::predict_with_proba_one`] per row
    /// (parallel for large batches); flat-engine models override it so the
    /// batch walks the model once.
    fn predict_with_proba_batch(&self, batch: RowsView<'_>, out: &mut Vec<(Label, f64)>) {
        out.clear();
        if batch.rows() >= PAR_BATCH_MIN_ROWS {
            let rows: Vec<&[f64]> = batch.iter_rows().collect();
            let scored: Vec<(Label, f64)> = rows
                .par_iter()
                .map(|row| self.predict_with_proba_one(row))
                .collect();
            out.extend(scored);
            return;
        }
        out.extend(
            batch
                .iter_rows()
                .map(|row| self.predict_with_proba_one(row)),
        );
    }

    /// Appends this model's decision trees to a flat-forest builder as one
    /// voting group, returning `true` on success.
    ///
    /// Tree-based models (decision trees, random forests) override this so
    /// ensembles containing them can compile into a single
    /// [`crate::flat::FlatForest`]. The default returns `false`: the model is
    /// not tree-based and the caller must keep the generic path.
    fn append_flat_group(&self, _builder: &mut FlatForestBuilder) -> bool {
        false
    }

    /// Number of input features the trained model expects, when the model
    /// knows it. Used by the persistence layer to reject saved documents
    /// whose front end and model disagree on dimensionality.
    fn input_width(&self) -> Option<usize> {
        None
    }
}

/// A learner configuration that can be fitted on a dataset to produce a
/// trained [`Classifier`].
///
/// Estimators are cheap, cloneable parameter bundles; the trained model is a
/// separate type. The `seed` argument makes training deterministic, which the
/// bagging ensemble exploits to fit base classifiers in parallel with
/// decorrelated randomness.
pub trait Estimator: Send + Sync + Clone {
    /// The trained model type this estimator produces.
    type Model: Classifier;

    /// Fits the estimator on the dataset.
    ///
    /// # Errors
    ///
    /// Returns an [`MlError`] when the hyper-parameters are invalid or the
    /// training data cannot be learned from (e.g. empty dataset).
    fn fit(&self, dataset: &Dataset, seed: u64) -> Result<Self::Model, MlError>;

    /// Fits on a resampled view of `dataset`: training row `i` is dataset
    /// row `rows[i]`, repeats allowed — the shape bootstrap resampling
    /// draws. Produces exactly the model `fit(&dataset.select(rows), seed)`
    /// would (the default does just that); tree-based learners override it
    /// with a zero-copy row view that shares the parent's columnar feature
    /// cache, so replicates cost index arrays instead of dataset copies.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::fit`].
    fn fit_resampled(
        &self,
        dataset: &Dataset,
        rows: &[usize],
        seed: u64,
    ) -> Result<Self::Model, MlError> {
        self.fit(&dataset.select(rows), seed)
    }

    /// The pre-optimisation training path, retained so the equivalence suite
    /// and the `fit_throughput` bench can compare against it. Tree-based
    /// learners override this with the per-node-sorting fitter and
    /// materialised bootstrap copies; learners with a single training path
    /// default to [`Estimator::fit`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Estimator::fit`].
    fn fit_reference(&self, dataset: &Dataset, seed: u64) -> Result<Self::Model, MlError> {
        self.fit(dataset, seed)
    }

    /// Short human-readable name of the learner (used in reports and figures).
    fn name(&self) -> &'static str;
}

/// Stable persistence tag of a trained model type.
///
/// The unified detector persistence format (`hmd_core::detector`) stores a
/// `backend` tag next to the serialised model so that a saved pipeline can be
/// restored to the right concrete type. The tag doubles as the model's
/// display name and must never change once released — saved models reference
/// it forever.
pub trait ModelTag {
    /// The persistence tag, e.g. `"random-forest"`.
    const TAG: &'static str;
}

/// Blanket implementation so boxed classifiers can be used wherever a
/// classifier is expected (the bagging ensemble stores base models directly,
/// but downstream code occasionally needs trait objects).
impl Classifier for Box<dyn Classifier> {
    fn predict_one(&self, features: &[f64]) -> Label {
        self.as_ref().predict_one(features)
    }

    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        self.as_ref().predict_proba_one(features)
    }

    fn predict_with_proba_one(&self, features: &[f64]) -> (Label, f64) {
        self.as_ref().predict_with_proba_one(features)
    }

    fn predict_proba_batch(&self, batch: RowsView<'_>, out: &mut Vec<f64>) {
        self.as_ref().predict_proba_batch(batch, out);
    }

    fn predict_with_proba_batch(&self, batch: RowsView<'_>, out: &mut Vec<(Label, f64)>) {
        self.as_ref().predict_with_proba_batch(batch, out);
    }

    fn append_flat_group(&self, builder: &mut FlatForestBuilder) -> bool {
        self.as_ref().append_flat_group(builder)
    }

    fn input_width(&self) -> Option<usize> {
        self.as_ref().input_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Matrix;

    struct Constant(Label);

    impl Classifier for Constant {
        fn predict_one(&self, _: &[f64]) -> Label {
            self.0
        }
    }

    #[test]
    fn default_proba_follows_hard_label() {
        assert_eq!(Constant(Label::Malware).predict_proba_one(&[0.0]), 1.0);
        assert_eq!(Constant(Label::Benign).predict_proba_one(&[0.0]), 0.0);
    }

    #[test]
    fn predict_maps_over_rows() {
        let m = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let preds = Constant(Label::Benign).predict(&m);
        assert_eq!(preds, vec![Label::Benign; 3]);
    }

    #[test]
    fn boxed_classifier_delegates() {
        let boxed: Box<dyn Classifier> = Box::new(Constant(Label::Malware));
        assert_eq!(boxed.predict_one(&[1.0]), Label::Malware);
        assert_eq!(boxed.predict_proba_one(&[1.0]), 1.0);
    }
}
