//! Breiman bagging over any [`Estimator`].
//!
//! This is the workspace's equivalent of scikit-learn's `BaggingClassifier`:
//! each base classifier is trained on a bootstrap replicate of the training
//! set, predictions are combined by majority vote, and — crucially for the
//! paper — the trained base classifiers are accessible via
//! [`BaggingEnsemble::estimators`], mirroring sklearn's `estimators_`
//! attribute that the uncertainty estimator reads.

use crate::flat::{compile_groups, FlatForest};
use crate::{Classifier, Estimator, MlError};
use hmd_codec::{CodecError, Json, JsonCodec};
use hmd_data::split::{bootstrap_draw, bootstrap_indices};
use hmd_data::{Dataset, Label, RowsView};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Configuration of a bagging ensemble built on base estimator `E`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaggingParams<E> {
    /// The base estimator cloned and fitted on every bootstrap replicate.
    pub base: E,
    /// Number of base classifiers.
    pub num_estimators: usize,
    /// Fraction of the training set drawn (with replacement) for each
    /// replicate. `1.0` reproduces classic bagging.
    pub sample_fraction: f64,
    /// When false, every base classifier sees the full training set and
    /// diversity comes only from the base learner's own randomness. Used by
    /// the diversity ablation.
    pub bootstrap: bool,
}

impl<E: Estimator> BaggingParams<E> {
    /// Creates a bagging configuration with the paper's default of 25 base
    /// classifiers and full-size bootstrap replicates.
    pub fn new(base: E) -> BaggingParams<E> {
        BaggingParams {
            base,
            num_estimators: 25,
            sample_fraction: 1.0,
            bootstrap: true,
        }
    }

    /// Sets the number of base classifiers.
    #[must_use]
    pub fn with_num_estimators(mut self, n: usize) -> Self {
        self.num_estimators = n;
        self
    }

    /// Sets the bootstrap sample fraction.
    #[must_use]
    pub fn with_sample_fraction(mut self, fraction: f64) -> Self {
        self.sample_fraction = fraction;
        self
    }

    /// Enables or disables bootstrap resampling.
    #[must_use]
    pub fn with_bootstrap(mut self, bootstrap: bool) -> Self {
        self.bootstrap = bootstrap;
        self
    }

    fn validate(&self) -> Result<(), MlError> {
        if self.num_estimators == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "num_estimators",
                message: "an ensemble needs at least one base classifier".into(),
            });
        }
        if !(self.sample_fraction > 0.0 && self.sample_fraction <= 1.0) {
            return Err(MlError::InvalidHyperparameter {
                name: "sample_fraction",
                message: format!("must lie in (0, 1], got {}", self.sample_fraction),
            });
        }
        Ok(())
    }

    /// Fits the ensemble on the training dataset.
    ///
    /// Base classifiers are trained in parallel with decorrelated seeds
    /// derived from `seed`. Bootstrap replicates are **zero-copy views**:
    /// each draw stays an index array handed to
    /// [`Estimator::fit_resampled`], so tree-based bases share the parent
    /// dataset's columnar feature cache instead of copying the data per
    /// replicate. The trained ensemble is bit-identical to the retained
    /// copy-based path ([`BaggingParams::fit_reference`]).
    ///
    /// # Errors
    ///
    /// Returns configuration errors from the parameter validation and
    /// propagates the first base-training failure.
    pub fn fit(&self, dataset: &Dataset, seed: u64) -> Result<BaggingEnsemble<E::Model>, MlError> {
        self.validate()?;
        let mut seeder = StdRng::seed_from_u64(seed);
        let seeds: Vec<u64> = (0..self.num_estimators).map(|_| seeder.gen()).collect();
        let replicate_len = ((dataset.len() as f64) * self.sample_fraction)
            .round()
            .max(1.0) as usize;
        let models: Result<Vec<E::Model>, MlError> = seeds
            .par_iter()
            .map(|&estimator_seed| {
                let mut rng = StdRng::seed_from_u64(estimator_seed);
                if self.bootstrap {
                    let mut indices = bootstrap_draw(dataset.len(), &mut rng);
                    indices.truncate(replicate_len);
                    self.base.fit_resampled(dataset, &indices, estimator_seed)
                } else {
                    self.base.fit(dataset, estimator_seed)
                }
            })
            .collect();
        Ok(BaggingEnsemble::from_estimators(models?, self.base.name()))
    }

    /// The pre-optimisation training path: materialises every bootstrap
    /// replicate with [`Dataset::select`] and trains the bases through
    /// [`Estimator::fit_reference`]. Retained for the equivalence suite and
    /// the `fit_throughput` bench; everything else should call
    /// [`BaggingParams::fit`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`BaggingParams::fit`].
    pub fn fit_reference(
        &self,
        dataset: &Dataset,
        seed: u64,
    ) -> Result<BaggingEnsemble<E::Model>, MlError> {
        self.validate()?;
        let mut seeder = StdRng::seed_from_u64(seed);
        let seeds: Vec<u64> = (0..self.num_estimators).map(|_| seeder.gen()).collect();
        let replicate_len = ((dataset.len() as f64) * self.sample_fraction)
            .round()
            .max(1.0) as usize;
        let models: Result<Vec<E::Model>, MlError> = seeds
            .par_iter()
            .map(|&estimator_seed| {
                let mut rng = StdRng::seed_from_u64(estimator_seed);
                let training = if self.bootstrap {
                    let (mut indices, _) = bootstrap_indices(dataset.len(), &mut rng);
                    indices.truncate(replicate_len);
                    dataset.select(&indices)
                } else {
                    dataset.clone()
                };
                self.base.fit_reference(&training, estimator_seed)
            })
            .collect();
        Ok(BaggingEnsemble::from_estimators(models?, self.base.name()))
    }

    /// Name of the base learner (e.g. `"random-forest"`).
    pub fn base_name(&self) -> &'static str {
        self.base.name()
    }
}

/// A trained bagging ensemble of base classifiers.
///
/// # Example
///
/// ```
/// use hmd_data::{Dataset, Label, Matrix};
/// use hmd_ml::bagging::BaggingParams;
/// use hmd_ml::logistic::LogisticRegressionParams;
/// use hmd_ml::Classifier;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[vec![-1.0], vec![-0.9], vec![0.9], vec![1.0]])?;
/// let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
/// let train = Dataset::new(x, y)?;
/// let ensemble = BaggingParams::new(LogisticRegressionParams::new())
///     .with_num_estimators(7)
///     .fit(&train, 42)?;
/// assert_eq!(ensemble.num_estimators(), 7);
/// assert_eq!(ensemble.predict_one(&[1.2]), Label::Malware);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaggingEnsemble<M> {
    estimators: Vec<M>,
    base_name: &'static str,
    /// Compiled flat-engine form when every base classifier is tree-based:
    /// one voting group per estimator. Never persisted, rebuilt on load.
    flat: Option<FlatForest>,
}

impl<M: Classifier> BaggingEnsemble<M> {
    fn from_estimators(estimators: Vec<M>, base_name: &'static str) -> BaggingEnsemble<M> {
        let flat = compile_groups(&estimators);
        BaggingEnsemble {
            estimators,
            base_name,
            flat,
        }
    }

    /// The trained base classifiers (sklearn's `estimators_`).
    pub fn estimators(&self) -> &[M] {
        &self.estimators
    }

    /// The compiled flat-engine form, when every base classifier is
    /// tree-based (decision trees or random forests).
    pub fn flat(&self) -> Option<&FlatForest> {
        self.flat.as_ref()
    }

    /// Number of base classifiers.
    pub fn num_estimators(&self) -> usize {
        self.estimators.len()
    }

    /// Name of the base learner.
    pub fn base_name(&self) -> &'static str {
        self.base_name
    }

    /// Individual hard votes of every base classifier on one input.
    ///
    /// This is the raw material of the paper's uncertainty estimator: the
    /// frequency distribution of these votes approximates the predictive
    /// posterior of Eq. 3. Always walks the nested base classifiers — it is
    /// the reference path the flat engine is tested against.
    pub fn votes(&self, features: &[f64]) -> Vec<Label> {
        self.estimators
            .iter()
            .map(|m| m.predict_one(features))
            .collect()
    }

    /// Counts of votes per class, indexed by [`Label::index`].
    ///
    /// Serves from the compiled flat forest when the base classifiers are
    /// tree-based, with bit-identical counts to the nested walk.
    pub fn vote_counts(&self, features: &[f64]) -> [usize; Label::NUM_CLASSES] {
        if let Some(flat) = &self.flat {
            let malware = flat.group_votes_one(features);
            return [self.estimators.len() - malware, malware];
        }
        let mut counts = [0usize; Label::NUM_CLASSES];
        for vote in self.votes(features) {
            counts[vote.index()] += 1;
        }
        counts
    }

    /// Malware vote counts — one integer per row — for a borrowed batch view
    /// (a whole matrix, or any row range of one): the ensemble's leanest
    /// batch shape (every estimator votes, so the benign count is always
    /// `num_estimators - malware`).
    ///
    /// Tree-based ensembles serve from the flat engine (tiled traversal,
    /// parallel across row blocks); other base learners fall back to scoring
    /// rows in parallel through the nested path. Counts are bit-identical to
    /// calling [`BaggingEnsemble::vote_counts`] per row.
    pub fn malware_votes_batch<'a>(&self, batch: impl Into<RowsView<'a>>) -> Vec<u32> {
        let batch = batch.into();
        if let Some(flat) = &self.flat {
            return flat.group_votes_batch(batch);
        }
        let rows: Vec<&[f64]> = batch.iter_rows().collect();
        rows.par_iter()
            .map(|row| self.vote_counts(row)[1] as u32)
            .collect()
    }

    /// Per-class vote counts for every row of a borrowed batch view, indexed
    /// by [`Label::index`] — [`BaggingEnsemble::malware_votes_batch`] in the
    /// same shape [`BaggingEnsemble::vote_counts`] reports.
    pub fn vote_counts_batch<'a>(
        &self,
        batch: impl Into<RowsView<'a>>,
    ) -> Vec<[usize; Label::NUM_CLASSES]> {
        let total = self.estimators.len();
        self.malware_votes_batch(batch)
            .into_iter()
            .map(|malware| {
                let malware = malware as usize;
                [total - malware, malware]
            })
            .collect()
    }

    /// Restricts the ensemble to its first `n` base classifiers (used by the
    /// ensemble-size sweep of Fig. 9a). Returns `None` when `n` is zero or
    /// exceeds the number of estimators.
    pub fn truncated(&self, n: usize) -> Option<BaggingEnsemble<M>>
    where
        M: Clone,
    {
        if n == 0 || n > self.estimators.len() {
            return None;
        }
        Some(BaggingEnsemble::from_estimators(
            self.estimators[..n].to_vec(),
            self.base_name,
        ))
    }
}

/// Interns a persisted base-learner name back to the `&'static str` the
/// ensemble stores. Known learners map to their canonical tag; anything else
/// falls back to `"custom"` (the name is display-only).
fn intern_base_name(name: &str) -> &'static str {
    use crate::ModelTag;
    for known in [
        crate::tree::DecisionTree::TAG,
        crate::forest::RandomForest::TAG,
        crate::logistic::LogisticRegression::TAG,
        crate::svm::LinearSvm::TAG,
    ] {
        if name == known {
            return known;
        }
    }
    "custom"
}

impl<M: Classifier + JsonCodec> JsonCodec for BaggingEnsemble<M> {
    fn to_json(&self) -> Json {
        // The flat form is derived state: omitted here, recompiled on load so
        // saved documents stay minimal and restored ensembles serve from the
        // flat engine with bit-identical votes.
        Json::object(vec![
            ("base_name", self.base_name.to_string().to_json()),
            ("estimators", self.estimators.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<BaggingEnsemble<M>, CodecError> {
        let estimators = Vec::<M>::from_json(json.get("estimators")?)?;
        if estimators.is_empty() {
            return Err(CodecError::new("bagging ensemble has no estimators"));
        }
        Ok(BaggingEnsemble::from_estimators(
            estimators,
            intern_base_name(json.get("base_name")?.as_str()?),
        ))
    }
}

impl<M: Classifier> Classifier for BaggingEnsemble<M> {
    fn predict_one(&self, features: &[f64]) -> Label {
        let counts = self.vote_counts(features);
        Label::from(counts[1] >= counts[0])
    }

    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        let counts = self.vote_counts(features);
        counts[1] as f64 / self.estimators.len() as f64
    }

    fn predict_with_proba_one(&self, features: &[f64]) -> (Label, f64) {
        let counts = self.vote_counts(features);
        (
            Label::from(counts[1] >= counts[0]),
            counts[1] as f64 / self.estimators.len() as f64,
        )
    }

    fn predict_proba_batch(&self, batch: RowsView<'_>, out: &mut Vec<f64>) {
        let total = self.estimators.len() as f64;
        out.clear();
        out.extend(
            self.vote_counts_batch(batch)
                .into_iter()
                .map(|counts| counts[1] as f64 / total),
        );
    }

    fn predict_with_proba_batch(&self, batch: RowsView<'_>, out: &mut Vec<(Label, f64)>) {
        let total = self.estimators.len() as f64;
        out.clear();
        out.extend(self.vote_counts_batch(batch).into_iter().map(|counts| {
            (
                Label::from(counts[1] >= counts[0]),
                counts[1] as f64 / total,
            )
        }));
    }

    fn input_width(&self) -> Option<usize> {
        self.estimators.first().and_then(|m| m.input_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logistic::LogisticRegressionParams;
    use crate::tree::DecisionTreeParams;
    use hmd_data::Matrix;

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let malware = rng.gen_bool(0.5);
            let c = if malware { 1.0 } else { -1.0 };
            rows.push(vec![
                c + rng.gen_range(-0.5..0.5),
                c + rng.gen_range(-0.5..0.5),
            ]);
            labels.push(Label::from(malware));
        }
        Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn bagged_trees_classify_blobs() {
        let train = blobs(150, 1);
        let test = blobs(60, 2);
        let ensemble = BaggingParams::new(DecisionTreeParams::new())
            .with_num_estimators(9)
            .fit(&train, 3)
            .unwrap();
        let acc = ensemble
            .predict(test.features())
            .iter()
            .zip(test.labels())
            .filter(|(p, l)| p == l)
            .count() as f64
            / test.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn votes_sum_to_ensemble_size() {
        let train = blobs(80, 4);
        let ensemble = BaggingParams::new(LogisticRegressionParams::new().with_epochs(50))
            .with_num_estimators(11)
            .fit(&train, 5)
            .unwrap();
        let counts = ensemble.vote_counts(&[0.2, -0.1]);
        assert_eq!(counts[0] + counts[1], 11);
    }

    #[test]
    fn truncation_respects_bounds() {
        let train = blobs(60, 6);
        let ensemble = BaggingParams::new(DecisionTreeParams::new())
            .with_num_estimators(8)
            .fit(&train, 1)
            .unwrap();
        assert!(ensemble.truncated(0).is_none());
        assert!(ensemble.truncated(9).is_none());
        assert_eq!(ensemble.truncated(3).unwrap().num_estimators(), 3);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let train = blobs(30, 7);
        assert!(BaggingParams::new(DecisionTreeParams::new())
            .with_num_estimators(0)
            .fit(&train, 0)
            .is_err());
        assert!(BaggingParams::new(DecisionTreeParams::new())
            .with_sample_fraction(0.0)
            .fit(&train, 0)
            .is_err());
        assert!(BaggingParams::new(DecisionTreeParams::new())
            .with_sample_fraction(1.5)
            .fit(&train, 0)
            .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let train = blobs(60, 8);
        let a = BaggingParams::new(DecisionTreeParams::new())
            .with_num_estimators(5)
            .fit(&train, 77)
            .unwrap();
        let b = BaggingParams::new(DecisionTreeParams::new())
            .with_num_estimators(5)
            .fit(&train, 77)
            .unwrap();
        let x = [0.3, 0.4];
        assert_eq!(a.votes(&x), b.votes(&x));
    }

    #[test]
    fn sample_fraction_shrinks_replicates_without_breaking_fit() {
        let train = blobs(100, 9);
        let ensemble = BaggingParams::new(DecisionTreeParams::new())
            .with_num_estimators(5)
            .with_sample_fraction(0.5)
            .fit(&train, 2)
            .unwrap();
        assert_eq!(ensemble.num_estimators(), 5);
    }
}
