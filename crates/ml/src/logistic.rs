//! L2-regularised logistic regression trained by full-batch gradient descent.

use crate::{Classifier, Estimator, MlError, ModelTag};
use hmd_codec::{CodecError, Json, JsonCodec};
use hmd_data::{Dataset, Label};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`LogisticRegression`] model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegressionParams {
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 regularisation strength (0 disables regularisation).
    pub l2: f64,
    /// Stop early when the gradient norm falls below this value.
    pub tolerance: f64,
}

impl LogisticRegressionParams {
    /// Defaults: learning rate 0.1, 300 epochs, L2 = 1e-3.
    pub fn new() -> LogisticRegressionParams {
        LogisticRegressionParams {
            learning_rate: 0.1,
            epochs: 300,
            l2: 1e-3,
            tolerance: 1e-6,
        }
    }

    /// Sets the learning rate.
    pub fn with_learning_rate(mut self, lr: f64) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Sets the number of epochs.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the L2 regularisation strength.
    pub fn with_l2(mut self, l2: f64) -> Self {
        self.l2 = l2;
        self
    }

    fn validate(&self) -> Result<(), MlError> {
        if self.learning_rate <= 0.0 || !self.learning_rate.is_finite() {
            return Err(MlError::InvalidHyperparameter {
                name: "learning_rate",
                message: format!("must be positive and finite, got {}", self.learning_rate),
            });
        }
        if self.epochs == 0 {
            return Err(MlError::InvalidHyperparameter {
                name: "epochs",
                message: "must be at least 1".into(),
            });
        }
        if self.l2 < 0.0 {
            return Err(MlError::InvalidHyperparameter {
                name: "l2",
                message: format!("must be non-negative, got {}", self.l2),
            });
        }
        Ok(())
    }
}

impl Default for LogisticRegressionParams {
    fn default() -> Self {
        LogisticRegressionParams::new()
    }
}

impl JsonCodec for LogisticRegressionParams {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("learning_rate", self.learning_rate.to_json()),
            ("epochs", self.epochs.to_json()),
            ("l2", self.l2.to_json()),
            ("tolerance", self.tolerance.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<LogisticRegressionParams, CodecError> {
        Ok(LogisticRegressionParams {
            learning_rate: f64::from_json(json.get("learning_rate")?)?,
            epochs: usize::from_json(json.get("epochs")?)?,
            l2: f64::from_json(json.get("l2")?)?,
            tolerance: f64::from_json(json.get("tolerance")?)?,
        })
    }
}

impl Estimator for LogisticRegressionParams {
    type Model = LogisticRegression;

    fn fit(&self, dataset: &Dataset, seed: u64) -> Result<LogisticRegression, MlError> {
        LogisticRegression::fit(dataset, self, seed)
    }

    fn name(&self) -> &'static str {
        "logistic-regression"
    }
}

/// A trained logistic regression classifier.
///
/// # Example
///
/// ```
/// use hmd_data::{Dataset, Label, Matrix};
/// use hmd_ml::logistic::LogisticRegressionParams;
/// use hmd_ml::{Classifier, Estimator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[vec![-1.0], vec![-0.8], vec![0.8], vec![1.0]])?;
/// let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
/// let model = LogisticRegressionParams::new().fit(&Dataset::new(x, y)?, 0)?;
/// assert!(model.predict_proba_one(&[1.5]) > 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

impl LogisticRegression {
    /// Fits the model by full-batch gradient descent.
    ///
    /// The `seed` controls the small random initialisation of the weights,
    /// which is what lets bagging produce diverse logistic base classifiers.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidHyperparameter`] for invalid parameters.
    pub fn fit(
        dataset: &Dataset,
        params: &LogisticRegressionParams,
        seed: u64,
    ) -> Result<LogisticRegression, MlError> {
        params.validate()?;
        let n = dataset.len();
        let d = dataset.num_features();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights: Vec<f64> = (0..d).map(|_| rng.gen_range(-0.01..0.01)).collect();
        let mut bias = 0.0;

        let targets: Vec<f64> = dataset
            .labels()
            .iter()
            .map(|l| if l.is_malware() { 1.0 } else { 0.0 })
            .collect();

        for _ in 0..params.epochs {
            let mut grad_w = vec![0.0; d];
            let mut grad_b = 0.0;
            for (row, &target) in dataset.features().iter_rows().zip(&targets) {
                let z = dot(&weights, row) + bias;
                let p = sigmoid(z);
                let err = p - target;
                for (g, &x) in grad_w.iter_mut().zip(row) {
                    *g += err * x;
                }
                grad_b += err;
            }
            let scale = 1.0 / n as f64;
            let mut grad_norm = 0.0;
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                let g_total = g * scale + params.l2 * *w;
                *w -= params.learning_rate * g_total;
                grad_norm += g_total * g_total;
            }
            bias -= params.learning_rate * grad_b * scale;
            grad_norm += (grad_b * scale).powi(2);
            if grad_norm.sqrt() < params.tolerance {
                break;
            }
        }
        Ok(LogisticRegression { weights, bias })
    }

    /// Fitted weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Raw decision value `w·x + b`.
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        dot(&self.weights, features) + self.bias
    }
}

impl ModelTag for LogisticRegression {
    const TAG: &'static str = "logistic-regression";
}

impl JsonCodec for LogisticRegression {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("weights", self.weights.to_json()),
            ("bias", self.bias.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<LogisticRegression, CodecError> {
        Ok(LogisticRegression {
            weights: Vec::<f64>::from_json(json.get("weights")?)?,
            bias: f64::from_json(json.get("bias")?)?,
        })
    }
}

impl Classifier for LogisticRegression {
    fn predict_one(&self, features: &[f64]) -> Label {
        Label::from(self.predict_proba_one(features) >= 0.5)
    }

    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        sigmoid(self.decision_value(features))
    }

    fn predict_with_proba_one(&self, features: &[f64]) -> (Label, f64) {
        let p = self.predict_proba_one(features);
        (Label::from(p >= 0.5), p)
    }

    fn input_width(&self) -> Option<usize> {
        Some(self.weights.len())
    }
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Matrix;

    fn linear_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.gen_range(-2.0..2.0);
            let y: f64 = rng.gen_range(-2.0..2.0);
            rows.push(vec![x, y]);
            labels.push(Label::from(x + y > 0.0));
        }
        Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn sigmoid_is_bounded_and_monotone() {
        assert!(sigmoid(-100.0) < 1e-6);
        assert!(sigmoid(100.0) > 1.0 - 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(1.0) > sigmoid(-1.0));
    }

    #[test]
    fn learns_linearly_separable_data() {
        let train = linear_dataset(300, 1);
        let test = linear_dataset(100, 2);
        let model = LogisticRegressionParams::new()
            .with_epochs(500)
            .fit(&train, 0)
            .unwrap();
        let acc = model
            .predict(test.features())
            .iter()
            .zip(test.labels())
            .filter(|(p, l)| p == l)
            .count() as f64
            / test.len() as f64;
        assert!(acc > 0.93, "accuracy {acc}");
    }

    #[test]
    fn gradient_check_on_tiny_problem() {
        // Numerical gradient of the loss should roughly match the analytic
        // update direction: train one epoch and confirm loss decreases.
        let ds = linear_dataset(50, 3);
        let before = LogisticRegressionParams::new()
            .with_epochs(1)
            .fit(&ds, 0)
            .unwrap();
        let after = LogisticRegressionParams::new()
            .with_epochs(200)
            .fit(&ds, 0)
            .unwrap();
        let loss = |m: &LogisticRegression| -> f64 {
            ds.features()
                .iter_rows()
                .zip(ds.labels())
                .map(|(row, l)| {
                    let p = m.predict_proba_one(row).clamp(1e-12, 1.0 - 1e-12);
                    let t = if l.is_malware() { 1.0 } else { 0.0 };
                    -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
                })
                .sum::<f64>()
                / ds.len() as f64
        };
        assert!(loss(&after) < loss(&before));
    }

    #[test]
    fn invalid_hyperparameters_are_rejected() {
        let ds = linear_dataset(10, 4);
        assert!(LogisticRegressionParams::new()
            .with_learning_rate(0.0)
            .fit(&ds, 0)
            .is_err());
        assert!(LogisticRegressionParams::new()
            .with_epochs(0)
            .fit(&ds, 0)
            .is_err());
        assert!(LogisticRegressionParams::new()
            .with_l2(-1.0)
            .fit(&ds, 0)
            .is_err());
    }

    #[test]
    fn l2_shrinks_weights() {
        let ds = linear_dataset(200, 5);
        let free = LogisticRegressionParams::new()
            .with_l2(0.0)
            .fit(&ds, 0)
            .unwrap();
        let ridge = LogisticRegressionParams::new()
            .with_l2(1.0)
            .fit(&ds, 0)
            .unwrap();
        let norm = |w: &[f64]| w.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm(ridge.weights()) < norm(free.weights()));
    }
}
