//! The presorted columnar training engine.
//!
//! This is the training-side analogue of the compiled [`crate::flat`]
//! inference engine. The reference CART grower
//! ([`crate::tree::DecisionTree::fit_reference`]) re-sorts the node's samples
//! for **every candidate feature at every node**, reading feature values
//! through cache-hostile row-major accesses and allocating a fresh index
//! vector per candidate; bagging and forests additionally materialise a full
//! copy of the dataset for every bootstrap replicate. This module replaces
//! all of that while growing **identical trees**:
//!
//! * **One sort per feature per dataset** — the parent matrix caches each
//!   feature's `f64::total_cmp`-sorted row order
//!   ([`hmd_data::Matrix::presorted_rows`]); every tree grown on the dataset
//!   — every bootstrap replicate of every estimator — derives its own
//!   per-feature row order from that shared sort with a **linear filter
//!   gather**. No per-tree sorting, no per-node sorting.
//! * **Weighted zero-copy bootstrap views** — a bootstrap replicate is a
//!   row **multiset**, and duplicate draws of a row are inseparable (equal
//!   values land on the same side of every split), so a replicate is stored
//!   as the unique parent rows it contains plus a weight per row. Replicates
//!   share the parent's caches, nothing is materialised, and every segment
//!   shrinks to the unique-row count (≈63% of the draw for a full
//!   bootstrap). The grown tree equals what fitting on
//!   `dataset.select(rows)` produces (`tests/fit_equivalence.rs`).
//! * **Partition, don't re-sort** — at each split, every feature's row
//!   array is stably partitioned in place, so both children are already
//!   sorted for every feature when the recursion descends. Partitions are
//!   skipped for windows no descendant will read: not at all when both
//!   children are certain leaves, one-sided when only one child can split.
//! * **Columnar reads** — split sweeps read feature values through the
//!   lazily built column-major cache ([`hmd_data::Matrix::columnar`]), one
//!   contiguous column per feature instead of striding across rows.
//!
//! # Why the trees are identical
//!
//! The reference grower stable-sorts each candidate feature per node, so a
//! node sweeps samples in `(value, sample position)` order; this engine
//! sweeps unique rows in `(value, row)` order with multiplicities folded
//! into the class counts. The two sweeps differ only **inside runs of equal
//! values** — duplicates of a row are equal by definition — and a sweep is
//! invariant to any regrouping within an equal-value run: candidates are
//! only emitted where the value strictly increases, and the left/right
//! class counts at those boundaries are sums over completed runs. Split
//! predicates (`value <= threshold`), midpoint thresholds, candidate
//! ordering (the per-node feature-subsampling RNG is consumed identically)
//! and leaf statistics are all preserved, so [`crate::tree::DecisionTree`]
//! equality holds node for node. (Feature values are assumed NaN-free, as
//! everywhere else in the workspace; both growers stay deterministic on NaN
//! but may then differ in degenerate splits.)

use crate::tree::{gini, DecisionTreeParams, Node};
use hmd_data::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A zero-copy training-view specification: which sample multiset of the
/// parent dataset a tree trains on.
#[derive(Clone, Copy)]
pub(crate) enum View<'r> {
    /// The full dataset, weight 1 per row.
    Full,
    /// A row multiset drawn from the dataset (bootstrap shape).
    Rows(&'r [usize]),
    /// A row multiset drawn from another multiset: training sample `i` is
    /// parent row `outer[draw[i]]`. This is the bagged-forest shape — the
    /// per-tree bootstrap composed with the estimator replicate — kept
    /// symbolic so neither level is ever materialised.
    Composed {
        /// The estimator-level replicate (parent rows).
        outer: &'r [usize],
        /// The tree-level draw (indices into `outer`).
        draw: &'r [usize],
    },
}

impl View<'_> {
    /// Weighted sample count of the view over a dataset of `dataset_len`.
    pub(crate) fn len(&self, dataset_len: usize) -> usize {
        match self {
            View::Full => dataset_len,
            View::Rows(r) => r.len(),
            View::Composed { draw, .. } => draw.len(),
        }
    }
}

/// Grows the node vector of a decision tree over a training view.
///
/// The caller validates parameters and non-emptiness.
pub(crate) fn grow_tree(
    dataset: &Dataset,
    view: View<'_>,
    params: &DecisionTreeParams,
    seed: u64,
) -> Vec<Node> {
    BUFFERS.with(|cell| {
        let mut bufs = cell.borrow_mut();
        Presorted::new(dataset, view, params, seed, &mut bufs).run()
    })
}

thread_local! {
    /// Per-worker training buffers, reused across every tree a thread grows
    /// so ensemble fits pay no per-tree allocation or first-touch cost.
    static BUFFERS: std::cell::RefCell<FitBuffers> = std::cell::RefCell::new(FitBuffers::default());
}

/// The reusable buffers of one grower thread (see [`BUFFERS`]).
#[derive(Default)]
struct FitBuffers {
    /// Parent row → multiplicity in the current training view.
    weight: Vec<u32>,
    /// Parent row → packed class-weight word (see [`pack_wm`]).
    row_wm: Vec<u64>,
    /// `d` presorted row segments of length `unique`, partitioned in place.
    orders: Vec<u32>,
    /// Parent row → side of the current split (rewritten per split).
    goes_left: Vec<bool>,
    /// Partition buffer for the right-bound rows.
    scratch: Vec<u32>,
    /// Per-node feature-subsampling pool.
    feature_pool: Vec<usize>,
}

/// Winning split of one node, mirroring the reference `SplitCandidate`.
struct Split {
    feature: usize,
    threshold: f64,
    decrease: f64,
}

/// Per-tree state of the presorted grower.
///
/// `orders` holds one segment of `unique` parent-row indices per feature;
/// segment `f` stores the rows present in this training view sorted by
/// feature `f`. The recursion works on `[lo, hi)` windows that are valid for
/// every segment at once: a stable in-place partition at each split keeps
/// all segments aligned. Sample multiplicities live in `weight`, so all
/// class arithmetic matches the reference's per-sample sweep exactly.
struct Presorted<'a> {
    cols: hmd_data::ColumnarView<'a>,
    params: &'a DecisionTreeParams,
    rng: StdRng,
    nodes: Vec<Node>,
    /// Unique parent rows in the training view (segment length).
    unique: usize,
    /// Number of features.
    d: usize,
    /// The thread's reusable working buffers. `row_wm` packs each parent
    /// row's view multiplicity (low half) with the same multiplicity when
    /// the row is malware (high half), so one load yields both sweep
    /// accumulators.
    bufs: &'a mut FitBuffers,
    /// Weighted sample count of the whole view.
    total_samples: usize,
    /// Weighted malware count of the whole view.
    total_malware: usize,
}

/// Packs a row's view multiplicity and class into one word: weight in the
/// low 32 bits, weight-if-malware in the high 32 bits.
#[inline]
fn pack_wm(weight: u32, malware: bool) -> u64 {
    u64::from(weight) | ((u64::from(weight) << 32) * u64::from(malware))
}

impl<'a> Presorted<'a> {
    fn new(
        dataset: &'a Dataset,
        view: View<'_>,
        params: &'a DecisionTreeParams,
        seed: u64,
        bufs: &'a mut FitBuffers,
    ) -> Presorted<'a> {
        let parent_len = dataset.len();
        let d = dataset.num_features();
        let labels = dataset.labels();
        let cols = dataset.columnar();
        let presort = dataset.presorted_rows();

        bufs.weight.clear();
        let (unique, total_samples) = match view {
            View::Full => {
                bufs.weight.resize(parent_len, 1);
                (parent_len, parent_len)
            }
            View::Rows(r) => {
                bufs.weight.resize(parent_len, 0);
                for &row in r {
                    bufs.weight[row] += 1;
                }
                let unique = bufs.weight.iter().filter(|&&w| w > 0).count();
                (unique, r.len())
            }
            View::Composed { outer, draw } => {
                bufs.weight.resize(parent_len, 0);
                for &j in draw {
                    bufs.weight[outer[j]] += 1;
                }
                let unique = bufs.weight.iter().filter(|&&w| w > 0).count();
                (unique, draw.len())
            }
        };
        bufs.row_wm.clear();
        bufs.row_wm.extend(
            bufs.weight
                .iter()
                .zip(labels)
                .map(|(&w, l)| pack_wm(w, l.is_malware())),
        );
        let total_malware = bufs.row_wm.iter().map(|&wm| (wm >> 32) as usize).sum();

        // Derive this view's per-feature row orders from the dataset's
        // shared presort with a linear filter — O(parent rows) per feature
        // instead of a sort. The filter is branchless (write always, advance
        // the cursor by the presence flag): bootstrap presence is close to a
        // coin flip per row, which branchy filtering would mispredict.
        bufs.orders.clear();
        if unique == parent_len {
            bufs.orders.reserve(d * unique);
            for f in 0..d {
                bufs.orders.extend_from_slice(presort.order(f));
            }
        } else {
            // One pad slot: the cursor's final unconditional write of each
            // feature pass lands on the next segment's start (overwritten by
            // that pass), and the last pass's lands on the pad.
            bufs.orders.resize(d * unique + 1, 0);
            let weight = &bufs.weight;
            let orders = &mut bufs.orders;
            for f in 0..d {
                let mut cursor = f * unique;
                for &row in presort.order(f) {
                    orders[cursor] = row;
                    cursor += usize::from(weight[row as usize] > 0);
                }
                debug_assert_eq!(cursor, (f + 1) * unique);
            }
        }
        if bufs.goes_left.len() < parent_len {
            bufs.goes_left.resize(parent_len, false);
        }

        Presorted {
            cols,
            params,
            rng: StdRng::seed_from_u64(seed),
            nodes: Vec::new(),
            unique,
            d,
            bufs,
            total_samples,
            total_malware,
        }
    }

    fn run(mut self) -> Vec<Node> {
        let (samples, malware) = (self.total_samples, self.total_malware);
        self.grow(0, self.unique, 0, samples, malware);
        self.nodes
    }

    /// Grows the subtree over segment window `[lo, hi)` holding `samples`
    /// weighted samples of which `malware` are positive, returning its node
    /// index. Mirrors the reference grower decision for decision; the class
    /// counts flow down the recursion from the marking pass instead of being
    /// recounted per node.
    fn grow(
        &mut self,
        lo: usize,
        hi: usize,
        depth: usize,
        samples: usize,
        malware: usize,
    ) -> usize {
        let malware_fraction = malware as f64 / samples as f64;
        let node_impurity = gini(malware_fraction);

        let should_stop = depth >= self.params.max_depth
            || samples < self.params.min_samples_split
            || node_impurity == 0.0;

        if !should_stop {
            if let Some(split) = self.best_split(lo, hi, samples, malware, node_impurity) {
                let (unique_left, left_samples, left_malware) =
                    self.mark(lo, hi, split.feature, split.threshold);
                let mid = lo + unique_left;
                let right_samples = samples - left_samples;
                let right_malware = malware - left_malware;
                // The children's windows only need their row arrays when a
                // child will itself look for a split; when both children are
                // certain leaves (the common case at the tree fringe), the
                // class counts from the marking pass are all they need.
                let splittable = |child_samples: usize, child_malware: usize| {
                    depth + 1 < self.params.max_depth
                        && child_samples >= self.params.min_samples_split
                        && child_malware != 0
                        && child_malware != child_samples
                };
                let left_splits = splittable(left_samples, left_malware);
                let right_splits = splittable(right_samples, right_malware);
                if left_splits || right_splits {
                    self.partition(lo, hi, mid, left_splits, right_splits);
                }
                let placeholder = self.nodes.len();
                self.nodes.push(Node::Leaf {
                    malware_fraction,
                    samples,
                });
                let left = self.grow(lo, mid, depth + 1, left_samples, left_malware);
                let right = self.grow(mid, hi, depth + 1, right_samples, right_malware);
                self.nodes[placeholder] = Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    left,
                    right,
                };
                return placeholder;
            }
        }

        let index = self.nodes.len();
        self.nodes.push(Node::Leaf {
            malware_fraction,
            samples,
        });
        index
    }

    /// Sweeps the presorted segments of the subsampled candidate features.
    ///
    /// Consumes the feature-subsampling RNG exactly like the reference
    /// (`shuffle` + `truncate` per examined node) and applies the same
    /// candidate acceptance and tie-breaking rules, so the winning split is
    /// identical — without sorting anything.
    fn best_split(
        &mut self,
        lo: usize,
        hi: usize,
        total: usize,
        total_malware: usize,
        node_impurity: f64,
    ) -> Option<Split> {
        let k = self.params.max_features.resolve(self.d);
        self.bufs.feature_pool.clear();
        self.bufs.feature_pool.extend(0..self.d);
        let mut feature_pool = std::mem::take(&mut self.bufs.feature_pool);
        feature_pool.shuffle(&mut self.rng);
        feature_pool.truncate(k);

        let cols = self.cols;
        let unique = self.unique;
        let orders = &self.bufs.orders;
        let row_wm = &self.bufs.row_wm;
        let min_samples_leaf = self.params.min_samples_leaf;
        let min_impurity_decrease = self.params.min_impurity_decrease;
        let mut best: Option<Split> = None;
        for &feature in &feature_pool {
            let seg = &orders[feature * unique + lo..feature * unique + hi];
            let col = cols.col(feature);

            // A window whose last value does not exceed its first is all
            // ties (the segment ascends in total order): no boundary can
            // emit a candidate, so the sweep is skipped outright.
            let first = col[seg[0] as usize];
            if col[seg[seg.len() - 1] as usize] <= first {
                continue;
            }

            let mut left_count = 0usize;
            let mut left_malware = 0usize;
            // The segment is presorted, so the sweep reads each row id and
            // each value once, carrying both to the next step as the run
            // predecessor.
            let mut current = first;
            let mut prev_row = seg[0] as usize;
            for &next_ix in &seg[1..] {
                let wm = row_wm[prev_row];
                left_count += (wm & 0xffff_ffff) as usize;
                left_malware += (wm >> 32) as usize;
                let next_row = next_ix as usize;
                let value = current;
                let next = col[next_row];
                current = next;
                prev_row = next_row;
                if next <= value {
                    continue; // identical values cannot be separated here
                }
                let right_count = total - left_count;
                if left_count < min_samples_leaf || right_count < min_samples_leaf {
                    continue;
                }
                let right_malware = total_malware - left_malware;
                let left_impurity = gini(left_malware as f64 / left_count as f64);
                let right_impurity = gini(right_malware as f64 / right_count as f64);
                let weighted = (left_count as f64 * left_impurity
                    + right_count as f64 * right_impurity)
                    / total as f64;
                let decrease = node_impurity - weighted;
                if decrease < min_impurity_decrease {
                    continue;
                }
                let threshold = (value + next) / 2.0;
                if best.as_ref().map(|b| decrease > b.decrease).unwrap_or(true) {
                    best = Some(Split {
                        feature,
                        threshold,
                        decrease,
                    });
                }
            }
        }
        self.bufs.feature_pool = feature_pool;
        best
    }

    /// Marks every row of `[lo, hi)` with its side of the split — the exact
    /// reference predicate `value <= threshold` — returning the left child's
    /// unique-row, weighted-sample and weighted-malware counts.
    fn mark(
        &mut self,
        lo: usize,
        hi: usize,
        feature: usize,
        threshold: f64,
    ) -> (usize, usize, usize) {
        let mut unique_left = 0usize;
        let mut left_samples = 0usize;
        let mut left_malware = 0usize;
        let seg = &self.bufs.orders[feature * self.unique + lo..feature * self.unique + hi];
        let col = self.cols.col(feature);
        for &row in seg {
            let r = row as usize;
            let left = col[r] <= threshold;
            self.bufs.goes_left[r] = left;
            if left {
                unique_left += 1;
                let wm = self.bufs.row_wm[r];
                left_samples += (wm & 0xffff_ffff) as usize;
                left_malware += (wm >> 32) as usize;
            }
        }
        (unique_left, left_samples, left_malware)
    }

    /// Stably partitions every feature segment of `[lo, hi)` around the
    /// sides marked by [`Presorted::mark`], writing the left block to
    /// `[lo, mid)` and the right block to `[mid, hi)`. Stability preserves
    /// each segment's sorted order, so the children are presorted without
    /// further work. A side whose child is a certain leaf is never read
    /// again, so it is skipped: only the splittable side's block is built.
    fn partition(&mut self, lo: usize, hi: usize, mid: usize, keep_left: bool, keep_right: bool) {
        for f in 0..self.d {
            let base = f * self.unique;
            match (keep_left, keep_right) {
                (true, true) => {
                    // Branchless in-place compaction: every row is written
                    // to both the left cursor (the cursor never passes the
                    // read position) and the right scratch buffer, exactly
                    // one cursor advances, and the scratch fills the tail.
                    self.bufs.scratch.resize(hi - lo, 0);
                    let mut write = base + lo;
                    let mut right = 0usize;
                    #[allow(clippy::needless_range_loop)]
                    for i in base + lo..base + hi {
                        let row = self.bufs.orders[i];
                        let left = self.bufs.goes_left[row as usize];
                        self.bufs.orders[write] = row;
                        write += usize::from(left);
                        self.bufs.scratch[right] = row;
                        right += usize::from(!left);
                    }
                    self.bufs.orders[write..base + hi].copy_from_slice(&self.bufs.scratch[..right]);
                }
                (true, false) => {
                    // Only the left child keeps splitting: compact its rows
                    // to the front and leave the tail unordered.
                    let mut write = base + lo;
                    #[allow(clippy::needless_range_loop)]
                    for i in base + lo..base + hi {
                        let row = self.bufs.orders[i];
                        self.bufs.orders[write] = row;
                        write += usize::from(self.bufs.goes_left[row as usize]);
                    }
                }
                (false, true) => {
                    // Only the right child keeps splitting: collect its rows
                    // and write them as the tail block.
                    self.bufs.scratch.clear();
                    let seg = &self.bufs.orders[base + lo..base + hi];
                    let goes_left = &self.bufs.goes_left;
                    self.bufs
                        .scratch
                        .extend(seg.iter().copied().filter(|&row| !goes_left[row as usize]));
                    self.bufs.orders[base + mid..base + hi].copy_from_slice(&self.bufs.scratch);
                }
                // hmd-lint: allow(no-panic-in-lib) caller-enforced: partition_node is only invoked when at least one child keeps splitting, and returning Result here would thread dead error paths through the hot partition loop
                (false, false) => unreachable!("partition is skipped when no child splits"),
            }
        }
    }
}
