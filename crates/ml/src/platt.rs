//! Platt scaling: logistic calibration of classifier decision values.
//!
//! The paper contrasts its entropy-based uncertainty with the prior approach
//! of Chawla et al., who interpret a Platt-scaled output probability as the
//! model's confidence. [`PlattScaler`] provides that baseline.

use crate::logistic::sigmoid;
use crate::MlError;
use hmd_codec::{CodecError, Json, JsonCodec};
use hmd_data::Label;
use serde::{Deserialize, Serialize};

/// The sigmoid `P(y = malware | d) = 1 / (1 + exp(A·d + B))` fitted to a set
/// of decision values, following Platt (1999) with the Lin et al. target
/// smoothing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlattScaler {
    a: f64,
    b: f64,
}

impl PlattScaler {
    /// Fits the scaler on decision values with their true labels.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::TrainingFailed`] when the slices are empty or of
    /// different lengths.
    pub fn fit(decision_values: &[f64], labels: &[Label]) -> Result<PlattScaler, MlError> {
        if decision_values.is_empty() || decision_values.len() != labels.len() {
            return Err(MlError::TrainingFailed {
                message: format!(
                    "Platt scaling needs matching non-empty inputs, got {} decisions and {} labels",
                    decision_values.len(),
                    labels.len()
                ),
            });
        }
        let n_pos = labels.iter().filter(|l| l.is_malware()).count() as f64;
        let n_neg = labels.len() as f64 - n_pos;
        // Smoothed targets recommended by Platt to avoid overfitting.
        let t_pos = (n_pos + 1.0) / (n_pos + 2.0);
        let t_neg = 1.0 / (n_neg + 2.0);
        let targets: Vec<f64> = labels
            .iter()
            .map(|l| if l.is_malware() { t_pos } else { t_neg })
            .collect();

        // Gradient descent on the negative log-likelihood of the calibrated
        // sigmoid; the 2-parameter problem is convex, so plain GD converges.
        let mut a = -1.0;
        let mut b = 0.0;
        let lr = 0.01;
        for _ in 0..2000 {
            let mut grad_a = 0.0;
            let mut grad_b = 0.0;
            for (&d, &t) in decision_values.iter().zip(&targets) {
                let p = sigmoid(-(a * d + b));
                let err = p - t;
                grad_a += err * -d;
                grad_b += -err;
            }
            let scale = 1.0 / decision_values.len() as f64;
            a -= lr * grad_a * scale;
            b -= lr * grad_b * scale;
        }
        Ok(PlattScaler { a, b })
    }

    /// The fitted slope `A`.
    pub fn slope(&self) -> f64 {
        self.a
    }

    /// The fitted intercept `B`.
    pub fn intercept(&self) -> f64 {
        self.b
    }

    /// Calibrated probability of the malware class for a raw decision value.
    pub fn probability(&self, decision_value: f64) -> f64 {
        sigmoid(-(self.a * decision_value + self.b))
    }
}

impl JsonCodec for PlattScaler {
    fn to_json(&self) -> Json {
        Json::object(vec![("a", self.a.to_json()), ("b", self.b.to_json())])
    }

    fn from_json(json: &Json) -> Result<PlattScaler, CodecError> {
        Ok(PlattScaler {
            a: f64::from_json(json.get("a")?)?,
            b: f64::from_json(json.get("b")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_rejects_mismatched_inputs() {
        assert!(PlattScaler::fit(&[], &[]).is_err());
        assert!(PlattScaler::fit(&[1.0], &[]).is_err());
    }

    #[test]
    fn calibration_is_monotone_in_decision_value() {
        let decisions: Vec<f64> = (-20..=20).map(|i| i as f64 / 5.0).collect();
        let labels: Vec<Label> = decisions.iter().map(|&d| Label::from(d > 0.0)).collect();
        let platt = PlattScaler::fit(&decisions, &labels).unwrap();
        assert!(platt.probability(3.0) > platt.probability(0.0));
        assert!(platt.probability(0.0) > platt.probability(-3.0));
    }

    #[test]
    fn separable_decisions_give_confident_probabilities() {
        let mut decisions = vec![];
        let mut labels = vec![];
        for i in 0..50 {
            decisions.push(2.0 + (i % 5) as f64 * 0.1);
            labels.push(Label::Malware);
            decisions.push(-2.0 - (i % 5) as f64 * 0.1);
            labels.push(Label::Benign);
        }
        let platt = PlattScaler::fit(&decisions, &labels).unwrap();
        assert!(platt.probability(2.5) > 0.75);
        assert!(platt.probability(-2.5) < 0.25);
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let decisions = vec![-5.0, -1.0, 0.0, 1.0, 5.0];
        let labels = vec![
            Label::Benign,
            Label::Benign,
            Label::Malware,
            Label::Malware,
            Label::Malware,
        ];
        let platt = PlattScaler::fit(&decisions, &labels).unwrap();
        for d in [-100.0, -1.0, 0.0, 1.0, 100.0] {
            let p = platt.probability(d);
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
