//! Integration tests of the unified `Detector` API: trait-object usage,
//! batch/serial equivalence, and persistence round trips.

use hmd_codec::JsonCodec;
use hmd_core::detector::{
    load, save, save_to_file, Detector, DetectorBackend, DetectorConfig, DetectorExt, DetectorKind,
    MonitorSession,
};
use hmd_data::{Dataset, Label, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Two well-separated Gaussian-ish blobs, the workhorse training set.
fn blobs(n: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..n {
        let malware = rng.gen_bool(0.5);
        let c = if malware { 2.0 } else { -2.0 };
        rows.push(
            (0..features)
                .map(|f| {
                    if f < 2 {
                        c + rng.gen_range(-0.8..0.8)
                    } else {
                        rng.gen_range(-1.0..1.0)
                    }
                })
                .collect(),
        );
        labels.push(Label::from(malware));
    }
    Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
}

fn all_kind_configs(backend: DetectorBackend) -> [DetectorConfig; 3] {
    [
        DetectorConfig::trusted(backend.clone()).with_num_estimators(9),
        DetectorConfig::untrusted(backend.clone()),
        DetectorConfig::platt(backend).with_entropy_threshold(0.8),
    ]
}

#[test]
fn all_three_pipeline_kinds_serve_through_a_trait_object() {
    let train = blobs(150, 3, 1);
    let test = blobs(40, 3, 2);

    let detectors: Vec<Box<dyn Detector>> = all_kind_configs(DetectorBackend::decision_tree())
        .into_iter()
        .map(|config| config.fit(&train, 7).expect("training succeeds"))
        .collect();
    assert_eq!(detectors.len(), 3);

    for detector in &detectors {
        // The trait surface works uniformly for every kind.
        assert!(!detector.name().is_empty());
        assert!(detector.entropy_threshold() > 0.0);
        let reports = detector.detect_batch(test.features()).expect("batch path");
        assert_eq!(reports.len(), test.len());
        let labels: Vec<Label> = reports.iter().map(|r| r.prediction.label).collect();
        let correct = labels
            .iter()
            .zip(test.labels())
            .filter(|(a, b)| a == b)
            .count();
        assert!(
            correct as f64 / test.len() as f64 > 0.85,
            "{}: accuracy {correct}/{}",
            detector.name(),
            test.len()
        );
        // Wrong feature width errors instead of panicking.
        assert!(detector.detect(&[1.0]).is_err());
    }

    // The three kinds are distinguishable through their names.
    let names: Vec<String> = detectors.iter().map(|d| d.name()).collect();
    assert!(names[0].starts_with("trusted["), "{names:?}");
    assert!(names[1].starts_with("untrusted["), "{names:?}");
    assert!(names[2].starts_with("platt["), "{names:?}");
}

#[test]
fn detect_batch_equals_mapping_detect_over_rows() {
    // Property test over random batches: for every backend × pipeline kind
    // and several random matrices, the flat-engine batch path must return
    // exactly what the serial per-row path returns — labels, probabilities
    // and entropies bit-identical.
    let train = blobs(120, 4, 3);
    for (b, backend) in [
        DetectorBackend::decision_tree(),
        DetectorBackend::random_forest(),
        DetectorBackend::logistic_regression(),
        DetectorBackend::linear_svm(),
    ]
    .into_iter()
    .enumerate()
    {
        for (i, config) in all_kind_configs(backend).into_iter().enumerate() {
            let detector = config.fit(&train, 11).expect("training succeeds");
            for case in 0..6u64 {
                let mut rng = StdRng::seed_from_u64(case * 31 + (b * 3 + i) as u64);
                // Cross the flat engine's 64-row tile boundary sometimes.
                let rows = rng.gen_range(1..100usize);
                let data: Vec<f64> = (0..rows * 4).map(|_| rng.gen_range(-4.0..4.0)).collect();
                let batch = Matrix::from_vec(rows, 4, data).unwrap();

                let batched = detector.detect_batch(&batch).expect("batch path");
                let mapped: Vec<_> = batch
                    .iter_rows()
                    .map(|row| detector.detect(row).expect("serial path"))
                    .collect();
                assert_eq!(batched.len(), mapped.len());
                for (a, m) in batched.iter().zip(&mapped) {
                    assert_eq!(
                        a.prediction.entropy.to_bits(),
                        m.prediction.entropy.to_bits(),
                        "{} case {case}",
                        detector.name()
                    );
                    assert_eq!(
                        a.prediction.malware_vote_fraction.to_bits(),
                        m.prediction.malware_vote_fraction.to_bits(),
                        "{} case {case}",
                        detector.name()
                    );
                    assert_eq!(a, m, "{} case {case}", detector.name());
                }
            }
        }
    }
}

#[test]
fn save_load_round_trip_reproduces_bit_identical_reports() {
    let train = blobs(150, 3, 5);
    let test = blobs(64, 3, 6);

    for backend in [
        DetectorBackend::decision_tree(),
        DetectorBackend::random_forest(),
        DetectorBackend::logistic_regression(),
        DetectorBackend::linear_svm(),
    ] {
        for config in all_kind_configs(backend) {
            let detector = config.fit(&train, 17).expect("training succeeds");
            let document = save(detector.as_ref()).expect("persistable");
            let restored = load(&document).expect("document loads");

            assert_eq!(restored.name(), detector.name());
            let original = detector.detect_batch(test.features()).expect("batch");
            let roundtrip = restored.detect_batch(test.features()).expect("batch");
            for (a, b) in original.iter().zip(&roundtrip) {
                // Bit-level equality, stricter than PartialEq (e.g. -0.0/0.0).
                assert_eq!(
                    a.prediction.entropy.to_bits(),
                    b.prediction.entropy.to_bits(),
                    "{}",
                    detector.name()
                );
                assert_eq!(
                    a.prediction.malware_vote_fraction.to_bits(),
                    b.prediction.malware_vote_fraction.to_bits(),
                    "{}",
                    detector.name()
                );
                assert_eq!(a, b, "{}", detector.name());
            }

            // Saving the restored detector reproduces the document exactly.
            assert_eq!(save(restored.as_ref()).expect("persistable"), document);
        }
    }
}

#[test]
fn trusted_forest_with_pca_survives_file_round_trip() {
    let train = blobs(150, 5, 7);
    let test = blobs(32, 5, 8);
    let detector = DetectorConfig::trusted(DetectorBackend::random_forest())
        .with_num_estimators(9)
        .with_pca(3)
        .with_entropy_threshold(0.35)
        .fit(&train, 23)
        .expect("training succeeds");

    let path = std::env::temp_dir().join(format!("hmd-detector-{}.json", std::process::id()));
    save_to_file(detector.as_ref(), &path).expect("file written");
    let restored = load_from_file_and_cleanup(&path);

    assert_eq!(restored.entropy_threshold(), 0.35);
    assert_eq!(
        restored.detect_batch(test.features()).expect("batch"),
        detector.detect_batch(test.features()).expect("batch"),
    );
}

fn load_from_file_and_cleanup(path: &std::path::Path) -> Box<dyn Detector> {
    let restored = hmd_core::detector::load_from_file(path).expect("file loads");
    let _ = std::fs::remove_file(path);
    restored
}

#[test]
fn malformed_documents_are_rejected_with_errors() {
    assert!(load("not json").is_err());
    assert!(load("{}").is_err());
    assert!(load(r#"{"format":"something-else","version":1}"#).is_err());
    assert!(
        load(r#"{"format":"hmd-detector","version":99,"kind":"trusted","backend":"decision-tree","model":{}}"#)
            .is_err()
    );
    assert!(load(
        r#"{"format":"hmd-detector","version":1,"kind":"trusted","backend":"quantum","model":{}}"#
    )
    .is_err());
    assert!(
        load(r#"{"format":"hmd-detector","version":1,"kind":"trusted","backend":"decision-tree","model":{}}"#)
            .is_err()
    );
}

#[test]
fn detector_config_round_trips_through_json() {
    let config = DetectorConfig::trusted(DetectorBackend::random_forest())
        .with_num_estimators(40)
        .with_pca(6)
        .with_entropy_threshold(0.25);
    let text = config.to_json().to_string();
    let back = DetectorConfig::from_json(&hmd_codec::Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, config);
    assert_eq!(back.kind, DetectorKind::Trusted);
    assert_eq!(back.pca_components, Some(6));
}

#[test]
fn monitor_session_statistics_match_batch_reports() {
    let train = blobs(120, 3, 9);
    let known = blobs(30, 3, 10);
    let detector = DetectorConfig::trusted(DetectorBackend::decision_tree())
        .with_num_estimators(15)
        .fit(&train, 3)
        .expect("training succeeds");

    let mut session = MonitorSession::new(detector.as_ref());
    let reports = session.observe_batch(known.features()).expect("batch");
    let stats = session.stats();
    assert_eq!(stats.windows, known.len());
    let escalated = reports
        .iter()
        .filter(|r| r.decision.is_escalation())
        .count();
    assert_eq!(stats.escalated, escalated);
    assert_eq!(stats.accepted, known.len() - escalated);
    let mean: f64 =
        reports.iter().map(|r| r.prediction.entropy).sum::<f64>() / reports.len() as f64;
    assert!((stats.mean_entropy() - mean).abs() < 1e-12);
}

#[test]
fn refit_on_window_is_bit_identical_to_from_scratch_fit() {
    // The closed loop retrains on a borrowed window of recent rows; the
    // result must be the same detector — bit for bit through the codec —
    // as fitting the config from scratch on an owned dataset of the same
    // rows, labels and seed.
    let train = blobs(160, 4, 21);
    for config in [
        DetectorConfig::trusted(DetectorBackend::random_forest()).with_num_estimators(11),
        DetectorConfig::trusted(DetectorBackend::decision_tree())
            .with_num_estimators(9)
            .with_pca(3),
        DetectorConfig::platt(DetectorBackend::logistic_regression()),
    ] {
        let scratch = config.fit(&train, 5).expect("from-scratch fit");
        let refit = config
            .refit_on_window(&train.features().view(), train.labels(), 5)
            .expect("window refit");
        assert_eq!(
            save(refit.as_ref()).expect("persistable"),
            save(scratch.as_ref()).expect("persistable"),
            "{}: window refit must be bit-identical",
            scratch.name()
        );
    }

    // A strided sub-window (no copy on the way in) trains the same model as
    // an owned dataset of exactly those rows.
    let sub = train.select(&(40..120).collect::<Vec<_>>());
    let config = DetectorConfig::trusted(DetectorBackend::random_forest()).with_num_estimators(7);
    let windowed = config
        .refit_on_window(
            &train.features().rows_view(40..120),
            &train.labels()[40..120],
            9,
        )
        .expect("sub-window refit");
    let scratch = config.fit(&sub, 9).expect("sub fit");
    assert_eq!(
        save(windowed.as_ref()).expect("persistable"),
        save(scratch.as_ref()).expect("persistable")
    );

    // Mismatched label length is a typed error, not a panic.
    assert!(config
        .refit_on_window(&train.features().view(), &train.labels()[..10], 9)
        .is_err());
}
