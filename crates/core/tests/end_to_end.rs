//! End-to-end tests of the paper's two headline findings, at reduced scale:
//!
//! * DVFS: unknown (zero-day proxy) workloads have clearly higher predictive
//!   entropy than known workloads and can be rejected without rejecting the
//!   known test set (epistemic uncertainty → detectable).
//! * HPC: benign and malware classes overlap, so known and unknown samples
//!   have similar entropy and rejection cannot separate them (aleatoric
//!   uncertainty → the dataset cannot yield a trustworthy HMD).

use hmd_core::analysis::KnownUnknownEntropy;
use hmd_core::rejection::{threshold_grid, F1Curve, RejectionCurve};
use hmd_core::trusted::TrustedHmdBuilder;
use hmd_dvfs::dataset::DvfsCorpusBuilder;
use hmd_hpc::dataset::HpcCorpusBuilder;
use hmd_ml::tree::{DecisionTreeParams, MaxFeatures};

fn tree_params() -> DecisionTreeParams {
    DecisionTreeParams::new()
        .with_max_depth(10)
        .with_max_features(MaxFeatures::Sqrt)
}

#[test]
fn dvfs_unknown_workloads_have_higher_entropy_and_are_rejectable() {
    let split = DvfsCorpusBuilder::new()
        .with_samples_per_app(25)
        .with_trace_len(512)
        .build_split(11)
        .expect("corpus generation");
    let hmd = TrustedHmdBuilder::new(tree_params())
        .with_num_estimators(25)
        .fit(&split.train, 3)
        .expect("training");

    let known = hmd
        .predict_dataset(&split.test_known)
        .expect("known predictions");
    let unknown = hmd
        .predict_dataset(&split.unknown)
        .expect("unknown predictions");

    let known_entropy: Vec<f64> = known.iter().map(|p| p.entropy).collect();
    let unknown_entropy: Vec<f64> = unknown.iter().map(|p| p.entropy).collect();
    let pair = KnownUnknownEntropy::new(&known_entropy, &unknown_entropy);
    assert!(
        pair.median_gap() > 0.3,
        "unknown median entropy {:.3} should clearly exceed known median {:.3}",
        pair.unknown.median,
        pair.known.median
    );

    let curve = RejectionCurve::sweep("RF", &known, &unknown, &threshold_grid(0.0, 1.0, 0.05));
    let op = curve
        .operating_point(10.0)
        .expect("an operating point rejecting <=10% of known data exists");
    assert!(
        op.unknown_rejected_pct >= 60.0,
        "at threshold {:.2} only {:.1}% of unknown workloads are rejected",
        op.threshold,
        op.unknown_rejected_pct
    );
}

#[test]
fn dvfs_rejection_improves_accepted_f1() {
    let split = DvfsCorpusBuilder::new()
        .with_samples_per_app(25)
        .with_trace_len(512)
        .build_split(11)
        .expect("corpus generation");
    let hmd = TrustedHmdBuilder::new(tree_params())
        .with_num_estimators(25)
        .fit(&split.train, 3)
        .expect("training");

    // Score over known test plus unknown data, as in Fig. 7b: rejecting the
    // uncertain unknowns should not hurt (and typically helps) the F1 of what
    // remains.
    let combined = split
        .test_known
        .concat(&split.unknown)
        .expect("same feature space");
    let predictions = hmd.predict_dataset(&combined).expect("predictions");
    let curve = F1Curve::sweep(
        "RF-DVFS",
        &predictions,
        combined.labels(),
        &threshold_grid(0.45, 1.0, 0.05),
    );
    let paper_threshold = &curve.points[0];
    let loosest = &curve.points[curve.points.len() - 1];
    assert!(
        paper_threshold.accepted_fraction > 0.3,
        "threshold 0.40 accepts too little ({:.2})",
        paper_threshold.accepted_fraction
    );
    assert!(
        paper_threshold.f1 + 1e-9 >= loosest.f1,
        "accepted-F1 at the paper's threshold ({:.3}) should not be worse than accept-everything ({:.3})",
        paper_threshold.f1,
        loosest.f1
    );
}

#[test]
fn hpc_known_and_unknown_entropies_overlap() {
    let split = HpcCorpusBuilder::new()
        .with_samples_per_app(25)
        .build_split(13)
        .expect("corpus generation");
    let hmd = TrustedHmdBuilder::new(tree_params())
        .with_num_estimators(25)
        .fit(&split.train, 7)
        .expect("training");

    let known = hmd
        .predict_dataset(&split.test_known)
        .expect("known predictions");
    let unknown = hmd
        .predict_dataset(&split.unknown)
        .expect("unknown predictions");

    let known_entropy: Vec<f64> = known.iter().map(|p| p.entropy).collect();
    let unknown_entropy: Vec<f64> = unknown.iter().map(|p| p.entropy).collect();
    let pair = KnownUnknownEntropy::new(&known_entropy, &unknown_entropy);

    // The paper's negative result: the gap between unknown and known entropy
    // on HPC data is small (both are uncertain), unlike the DVFS case.
    assert!(
        pair.median_gap().abs() < 0.35,
        "HPC known/unknown entropy medians should be close, gap {:.3}",
        pair.median_gap()
    );
    // And the known data itself is substantially uncertain (class overlap):
    assert!(
        pair.known.median > 0.05,
        "known HPC data should show non-trivial data uncertainty, median {:.3}",
        pair.known.median
    );

    let curve = RejectionCurve::sweep("RF", &known, &unknown, &threshold_grid(0.0, 1.0, 0.05));
    // Separation between unknown and known rejection curves stays small
    // compared to the DVFS case (where it exceeds ~40 percentage points).
    assert!(
        curve.separation() < 40.0,
        "HPC rejection curves should track each other, separation {:.1}",
        curve.separation()
    );
}

#[test]
fn dvfs_separation_exceeds_hpc_separation() {
    // The comparative claim at the heart of the paper: the DVFS HMD can tell
    // unknowns apart via uncertainty, the HPC HMD cannot.
    let dvfs_split = DvfsCorpusBuilder::new()
        .with_samples_per_app(10)
        .with_trace_len(192)
        .build_split(31)
        .expect("dvfs corpus");
    let hpc_split = HpcCorpusBuilder::new()
        .with_samples_per_app(18)
        .build_split(32)
        .expect("hpc corpus");

    let thresholds = threshold_grid(0.0, 1.0, 0.05);
    let mut separations = Vec::new();
    for (split, seed) in [(&dvfs_split, 41u64), (&hpc_split, 42u64)] {
        let hmd = TrustedHmdBuilder::new(tree_params())
            .with_num_estimators(21)
            .fit(&split.train, seed)
            .expect("training");
        let known = hmd.predict_dataset(&split.test_known).expect("known");
        let unknown = hmd.predict_dataset(&split.unknown).expect("unknown");
        separations.push(RejectionCurve::sweep("RF", &known, &unknown, &thresholds).separation());
    }
    assert!(
        separations[0] > separations[1],
        "DVFS separation {:.1} should exceed HPC separation {:.1}",
        separations[0],
        separations[1]
    );
}
