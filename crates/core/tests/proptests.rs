//! Randomised property tests for the uncertainty framework.
//!
//! The offline toolchain has no `proptest`, so these run the same properties
//! over a fixed number of seeded random cases.

use hmd_core::analysis::EntropySummary;
use hmd_core::entropy::{binary_entropy, max_entropy, normalized_vote_entropy, vote_entropy};
use hmd_core::estimator::UncertainPrediction;
use hmd_core::rejection::{threshold_grid, F1Curve, RejectionCurve};
use hmd_data::Label;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: u64 = 64;

fn random_predictions(rng: &mut StdRng, max_len: usize) -> Vec<UncertainPrediction> {
    let len = rng.gen_range(1..max_len);
    (0..len)
        .map(|_| {
            let malware = rng.gen_bool(0.5);
            UncertainPrediction {
                label: Label::from(malware),
                malware_vote_fraction: if malware { 0.8 } else { 0.2 },
                entropy: rng.gen_range(0.0..=1.0),
                num_estimators: 25,
            }
        })
        .collect()
}

#[test]
fn vote_entropy_is_bounded_by_max_entropy() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(case);
        let (a, b) = (rng.gen_range(0..200usize), rng.gen_range(0..200usize));
        let h = vote_entropy(&[a, b]);
        assert!(h >= 0.0, "case {case}");
        assert!(h <= max_entropy(2) + 1e-12, "case {case}");
        // zero iff votes are unanimous (or empty)
        if a == 0 || b == 0 {
            assert_eq!(h, 0.0, "case {case}: a {a} b {b}");
        } else {
            assert!(h > 0.0, "case {case}: a {a} b {b}");
        }
    }
}

#[test]
fn normalized_entropy_matches_binary_entropy() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let (a, b) = (rng.gen_range(0..100usize), rng.gen_range(1..100usize));
        let total = (a + b) as f64;
        let normalized = normalized_vote_entropy(&[a, b]);
        let direct = binary_entropy(a as f64 / total);
        assert!((normalized - direct).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn entropy_summary_is_ordered() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + case);
        let len = rng.gen_range(1..100usize);
        let values: Vec<f64> = (0..len).map(|_| rng.gen_range(0.0..=1.0)).collect();
        let s = EntropySummary::from_values(&values);
        assert!(s.min <= s.q1 + 1e-12, "case {case}");
        assert!(s.q1 <= s.median + 1e-12, "case {case}");
        assert!(s.median <= s.q3 + 1e-12, "case {case}");
        assert!(s.q3 <= s.max + 1e-12, "case {case}");
        assert!(s.min <= s.mean && s.mean <= s.max, "case {case}");
        assert_eq!(s.count, values.len(), "case {case}");
    }
}

#[test]
fn rejection_curves_are_monotone_in_threshold() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + case);
        let known = random_predictions(&mut rng, 60);
        let unknown = random_predictions(&mut rng, 60);
        let curve = RejectionCurve::sweep("m", &known, &unknown, &threshold_grid(0.0, 1.0, 0.1));
        for pair in curve.points.windows(2) {
            assert!(
                pair[1].known_rejected_pct <= pair[0].known_rejected_pct + 1e-9,
                "case {case}"
            );
            assert!(
                pair[1].unknown_rejected_pct <= pair[0].unknown_rejected_pct + 1e-9,
                "case {case}"
            );
        }
        for p in &curve.points {
            assert!((0.0..=100.0).contains(&p.known_rejected_pct), "case {case}");
            assert!(
                (0.0..=100.0).contains(&p.unknown_rejected_pct),
                "case {case}"
            );
        }
    }
}

#[test]
fn f1_curve_accepted_fraction_grows_with_threshold() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + case);
        let preds = random_predictions(&mut rng, 80);
        let truth: Vec<Label> = preds.iter().map(|p| p.label).collect();
        let curve = F1Curve::sweep("m", &preds, &truth, &threshold_grid(0.0, 1.0, 0.1));
        for pair in curve.points.windows(2) {
            assert!(
                pair[1].accepted_fraction + 1e-9 >= pair[0].accepted_fraction,
                "case {case}"
            );
        }
        // With perfect agreement between truth and prediction, any non-empty
        // accepted set has F1 of 1 when malware is present, 0 otherwise.
        for p in &curve.points {
            assert!((0.0..=1.0).contains(&p.f1), "case {case}: f1 {}", p.f1);
        }
    }
}

#[test]
fn threshold_grid_is_sorted_and_within_range() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5000 + case);
        let end = rng.gen_range(0.1..2.0);
        let step = rng.gen_range(0.01..0.5);
        let grid = threshold_grid(0.0, end, step);
        assert!(!grid.is_empty(), "case {case}");
        assert!(grid.windows(2).all(|w| w[1] > w[0]), "case {case}");
        assert!(*grid.last().unwrap() <= end + 1e-9, "case {case}");
    }
}
