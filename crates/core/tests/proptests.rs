//! Property-based tests for the uncertainty framework.

use hmd_core::analysis::EntropySummary;
use hmd_core::entropy::{binary_entropy, max_entropy, normalized_vote_entropy, vote_entropy};
use hmd_core::estimator::UncertainPrediction;
use hmd_core::rejection::{threshold_grid, F1Curve, RejectionCurve};
use hmd_data::Label;
use proptest::prelude::*;

fn predictions_strategy(max_len: usize) -> impl Strategy<Value = Vec<UncertainPrediction>> {
    proptest::collection::vec((proptest::bool::ANY, 0.0f64..=1.0), 1..max_len).prop_map(|items| {
        items
            .into_iter()
            .map(|(malware, entropy)| UncertainPrediction {
                label: Label::from(malware),
                malware_vote_fraction: if malware { 0.8 } else { 0.2 },
                entropy,
                ensemble_size: 25,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vote_entropy_is_bounded_by_max_entropy(a in 0usize..200, b in 0usize..200) {
        let h = vote_entropy(&[a, b]);
        prop_assert!(h >= 0.0);
        prop_assert!(h <= max_entropy(2) + 1e-12);
        // zero iff votes are unanimous (or empty)
        if a == 0 || b == 0 {
            prop_assert_eq!(h, 0.0);
        } else {
            prop_assert!(h > 0.0);
        }
    }

    #[test]
    fn normalized_entropy_matches_binary_entropy(a in 0usize..100, b in 1usize..100) {
        let total = (a + b) as f64;
        let normalized = normalized_vote_entropy(&[a, b]);
        let direct = binary_entropy(a as f64 / total);
        prop_assert!((normalized - direct).abs() < 1e-9);
    }

    #[test]
    fn entropy_summary_is_ordered(values in proptest::collection::vec(0.0f64..=1.0, 1..100)) {
        let s = EntropySummary::from_values(&values);
        prop_assert!(s.min <= s.q1 + 1e-12);
        prop_assert!(s.q1 <= s.median + 1e-12);
        prop_assert!(s.median <= s.q3 + 1e-12);
        prop_assert!(s.q3 <= s.max + 1e-12);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert_eq!(s.count, values.len());
    }

    #[test]
    fn rejection_curves_are_monotone_in_threshold(
        known in predictions_strategy(60),
        unknown in predictions_strategy(60),
    ) {
        let curve = RejectionCurve::sweep("m", &known, &unknown, &threshold_grid(0.0, 1.0, 0.1));
        for pair in curve.points.windows(2) {
            prop_assert!(pair[1].known_rejected_pct <= pair[0].known_rejected_pct + 1e-9);
            prop_assert!(pair[1].unknown_rejected_pct <= pair[0].unknown_rejected_pct + 1e-9);
        }
        for p in &curve.points {
            prop_assert!((0.0..=100.0).contains(&p.known_rejected_pct));
            prop_assert!((0.0..=100.0).contains(&p.unknown_rejected_pct));
        }
    }

    #[test]
    fn f1_curve_accepted_fraction_grows_with_threshold(preds in predictions_strategy(80)) {
        let truth: Vec<Label> = preds.iter().map(|p| p.label).collect();
        let curve = F1Curve::sweep("m", &preds, &truth, &threshold_grid(0.0, 1.0, 0.1));
        for pair in curve.points.windows(2) {
            prop_assert!(pair[1].accepted_fraction + 1e-9 >= pair[0].accepted_fraction);
        }
        // With perfect agreement between truth and prediction, any non-empty
        // accepted set has F1 of 1 when malware is present, 0 otherwise.
        for p in &curve.points {
            prop_assert!((0.0..=1.0).contains(&p.f1));
        }
    }

    #[test]
    fn threshold_grid_is_sorted_and_within_range(end in 0.1f64..2.0, step in 0.01f64..0.5) {
        let grid = threshold_grid(0.0, end, step);
        prop_assert!(!grid.is_empty());
        prop_assert!(grid.windows(2).all(|w| w[1] > w[0]));
        prop_assert!(*grid.last().unwrap() <= end + 1e-9);
    }
}
