//! The ensemble-based uncertainty estimator (Section III of the paper).

use crate::entropy::vote_entropy;
use hmd_data::{Dataset, Label};
use hmd_ml::bagging::BaggingEnsemble;
use hmd_ml::Classifier;
use serde::{Deserialize, Serialize};

/// A prediction augmented with its predictive uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UncertainPrediction {
    /// Majority-vote label of the ensemble.
    pub label: Label,
    /// Fraction of base classifiers voting malware (the approximate
    /// predictive posterior of Eq. 3).
    pub malware_vote_fraction: f64,
    /// Shannon entropy (bits) of the vote distribution (Eq. 4) — the paper's
    /// predictive-uncertainty estimate.
    pub entropy: f64,
    /// Number of base classifiers that produced the votes.
    pub num_estimators: usize,
}

impl UncertainPrediction {
    /// `true` when the prediction's entropy is at or below `threshold`
    /// (i.e. the prediction would be *accepted* at that threshold).
    pub fn is_confident(&self, threshold: f64) -> bool {
        self.entropy <= threshold
    }
}

/// The paper's uncertainty estimator: a bagging ensemble whose base-classifier
/// votes are turned into a frequency distribution, with the dispersion of
/// that distribution (entropy) reported as the predictive uncertainty.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleUncertaintyEstimator<M> {
    ensemble: BaggingEnsemble<M>,
}

impl<M: Classifier> EnsembleUncertaintyEstimator<M> {
    /// Wraps a trained bagging ensemble.
    pub fn new(ensemble: BaggingEnsemble<M>) -> EnsembleUncertaintyEstimator<M> {
        EnsembleUncertaintyEstimator { ensemble }
    }

    /// The wrapped ensemble.
    pub fn ensemble(&self) -> &BaggingEnsemble<M> {
        &self.ensemble
    }

    /// Consumes the estimator and returns the wrapped ensemble.
    pub fn into_ensemble(self) -> BaggingEnsemble<M> {
        self.ensemble
    }

    /// Number of base classifiers.
    pub fn num_estimators(&self) -> usize {
        self.ensemble.num_estimators()
    }

    /// Builds an uncertain prediction from a per-class vote-count pair.
    fn prediction_from_counts(counts: [usize; Label::NUM_CLASSES]) -> UncertainPrediction {
        let total = counts[0] + counts[1];
        UncertainPrediction {
            label: Label::from(counts[1] >= counts[0]),
            malware_vote_fraction: if total == 0 {
                0.0
            } else {
                counts[1] as f64 / total as f64
            },
            entropy: vote_entropy(&counts),
            num_estimators: total,
        }
    }

    /// The prediction produced when `malware` of the estimators vote malware.
    fn prediction_for_votes(&self, malware: usize) -> UncertainPrediction {
        Self::prediction_from_counts([self.num_estimators() - malware, malware])
    }

    /// All `E + 1` possible predictions of this ensemble, indexed by malware
    /// vote count.
    fn prediction_table(&self) -> Vec<UncertainPrediction> {
        (0..=self.num_estimators())
            .map(|malware| self.prediction_for_votes(malware))
            .collect()
    }

    /// Predicts one input and quantifies the prediction's uncertainty.
    pub fn predict_with_uncertainty(&self, features: &[f64]) -> UncertainPrediction {
        Self::prediction_from_counts(self.ensemble.vote_counts(features))
    }

    /// Maps a batch of malware vote counts to per-row values derived from
    /// the corresponding predictions. A row's value is a pure function of
    /// its integer vote count, so once the batch outgrows the `E + 1`
    /// possible outcomes the mapping is tabulated and rows become copies —
    /// no per-sample entropy logarithms or allocation. Shared by
    /// [`EnsembleUncertaintyEstimator::predict_batch`] and the trusted
    /// pipeline's report path.
    pub(crate) fn map_vote_batch<T: Copy>(
        &self,
        votes: Vec<u32>,
        derive: impl Fn(UncertainPrediction) -> T,
    ) -> Vec<T> {
        if votes.len() <= self.num_estimators() {
            return votes
                .into_iter()
                .map(|malware| derive(self.prediction_for_votes(malware as usize)))
                .collect();
        }
        let table: Vec<T> = self.prediction_table().into_iter().map(derive).collect();
        votes
            .into_iter()
            .map(|malware| table[malware as usize])
            .collect()
    }

    /// Predicts every row of a borrowed batch view with uncertainty — the
    /// batch hot path, served by the ensemble's compiled flat engine (with a
    /// parallel nested fallback for non-tree base learners).
    pub fn predict_batch<'a>(
        &self,
        features: impl Into<hmd_data::RowsView<'a>>,
    ) -> Vec<UncertainPrediction> {
        let votes = self.ensemble.malware_votes_batch(features.into());
        self.map_vote_batch(votes, |prediction| prediction)
    }

    /// Predicts every sample of a dataset with uncertainty.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Vec<UncertainPrediction> {
        self.predict_batch(dataset.features())
    }

    /// Entropies of every sample of a dataset (convenience for the boxplot
    /// figures).
    pub fn entropies(&self, dataset: &Dataset) -> Vec<f64> {
        self.predict_dataset(dataset)
            .into_iter()
            .map(|p| p.entropy)
            .collect()
    }

    /// Average entropy over a dataset as a function of the number of base
    /// classifiers used (Fig. 9a: the estimate stabilises beyond ~20 base
    /// classifiers). Returns `(ensemble_size, average_entropy)` pairs for
    /// every size in `sizes` that does not exceed the ensemble.
    pub fn ensemble_size_sweep(&self, dataset: &Dataset, sizes: &[usize]) -> Vec<(usize, f64)>
    where
        M: Clone,
    {
        let mut curve = Vec::new();
        for &size in sizes {
            let Some(truncated) = self.ensemble.truncated(size) else {
                continue;
            };
            let sub = EnsembleUncertaintyEstimator::new(truncated);
            let entropies = sub.entropies(dataset);
            let mean = if entropies.is_empty() {
                0.0
            } else {
                entropies.iter().sum::<f64>() / entropies.len() as f64
            };
            curve.push((size, mean));
        }
        curve
    }
}

impl<M: Classifier> Classifier for EnsembleUncertaintyEstimator<M> {
    fn predict_one(&self, features: &[f64]) -> Label {
        self.predict_with_uncertainty(features).label
    }

    fn predict_proba_one(&self, features: &[f64]) -> f64 {
        self.predict_with_uncertainty(features)
            .malware_vote_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Matrix;
    use hmd_ml::bagging::BaggingParams;
    use hmd_ml::tree::DecisionTreeParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blob_train(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let malware = rng.gen_bool(0.5);
            let c = if malware { 2.0 } else { -2.0 };
            rows.push(vec![
                c + rng.gen_range(-0.5..0.5),
                c + rng.gen_range(-0.5..0.5),
            ]);
            labels.push(Label::from(malware));
        }
        Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    fn estimator(seed: u64) -> EnsembleUncertaintyEstimator<hmd_ml::tree::DecisionTree> {
        let train = blob_train(200, seed);
        let ensemble = BaggingParams::new(DecisionTreeParams::new().with_max_depth(6))
            .with_num_estimators(25)
            .fit(&train, seed)
            .unwrap();
        EnsembleUncertaintyEstimator::new(ensemble)
    }

    #[test]
    fn in_distribution_predictions_have_low_entropy() {
        let est = estimator(1);
        let prediction = est.predict_with_uncertainty(&[2.0, 2.0]);
        assert_eq!(prediction.label, Label::Malware);
        assert!(prediction.entropy < 0.3, "entropy {}", prediction.entropy);
        assert!(prediction.is_confident(0.4));
        assert_eq!(prediction.num_estimators, 25);
    }

    #[test]
    fn out_of_distribution_predictions_have_higher_entropy() {
        let est = estimator(2);
        let known: f64 = est.predict_with_uncertainty(&[-2.0, -2.0]).entropy;
        // A point straddling the decision boundary far from both blobs.
        let unknown = est.predict_with_uncertainty(&[0.1, -0.1]).entropy;
        assert!(
            unknown > known,
            "boundary point entropy {unknown} should exceed blob-centre entropy {known}"
        );
    }

    #[test]
    fn entropy_matches_vote_fraction() {
        let est = estimator(3);
        let p = est.predict_with_uncertainty(&[0.0, 0.0]);
        let expected = crate::entropy::binary_entropy(p.malware_vote_fraction);
        assert!((p.entropy - expected).abs() < 1e-9);
    }

    #[test]
    fn predict_dataset_covers_every_sample() {
        let est = estimator(4);
        let test = blob_train(50, 99);
        let predictions = est.predict_dataset(&test);
        assert_eq!(predictions.len(), 50);
        let entropies = est.entropies(&test);
        assert_eq!(entropies.len(), 50);
        assert!(entropies.iter().all(|h| (0.0..=1.0 + 1e-9).contains(h)));
    }

    #[test]
    fn ensemble_size_sweep_skips_oversized_requests() {
        let est = estimator(5);
        let test = blob_train(30, 7);
        let curve = est.ensemble_size_sweep(&test, &[1, 5, 10, 25, 40]);
        let sizes: Vec<usize> = curve.iter().map(|(s, _)| *s).collect();
        assert_eq!(sizes, vec![1, 5, 10, 25]);
        // single-model "ensembles" have zero vote entropy by construction
        assert_eq!(curve[0].1, 0.0);
    }

    #[test]
    fn classifier_impl_delegates_to_majority_vote() {
        let est = estimator(6);
        assert_eq!(est.predict_one(&[2.0, 2.0]), Label::Malware);
        assert_eq!(est.predict_one(&[-2.0, -2.0]), Label::Benign);
        let p = est.predict_proba_one(&[2.0, 2.0]);
        assert!(p > 0.8);
    }
}
