//! Rejection policies and threshold sweeps.
//!
//! The paper's operating principle: if the entropy of a prediction exceeds a
//! threshold, the HMD rejects the decision and escalates the input (forensic
//! collection, human analyst) instead of trusting the label. This module
//! provides the threshold sweeps behind Fig. 7a / Fig. 9b (fraction of
//! known/unknown inputs rejected vs. threshold) and Fig. 7b (F1 of the
//! accepted predictions vs. threshold).

use crate::estimator::UncertainPrediction;
use crate::trusted::{Decision, DetectionReport};
use hmd_data::Label;
use hmd_ml::metrics::ClassificationReport;
use serde::{Deserialize, Serialize};

/// A fixed entropy threshold above which predictions are rejected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RejectionPolicy {
    /// Maximum entropy (bits) of an accepted prediction.
    pub entropy_threshold: f64,
}

impl RejectionPolicy {
    /// Creates a policy with the given threshold.
    pub fn new(entropy_threshold: f64) -> RejectionPolicy {
        RejectionPolicy { entropy_threshold }
    }

    /// `true` when the prediction should be rejected under this policy.
    pub fn rejects(&self, prediction: &UncertainPrediction) -> bool {
        prediction.entropy > self.entropy_threshold
    }

    /// Fraction of predictions rejected under this policy.
    pub fn rejection_rate(&self, predictions: &[UncertainPrediction]) -> f64 {
        if predictions.is_empty() {
            return 0.0;
        }
        predictions.iter().filter(|p| self.rejects(p)).count() as f64 / predictions.len() as f64
    }
}

/// One point of a rejection curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RejectionPoint {
    /// Entropy threshold.
    pub threshold: f64,
    /// Percentage (0–100) of known (in-distribution) inputs rejected.
    pub known_rejected_pct: f64,
    /// Percentage (0–100) of unknown (out-of-distribution) inputs rejected.
    pub unknown_rejected_pct: f64,
}

/// Rejected-inputs-vs-threshold curve (Fig. 7a for DVFS, Fig. 9b for HPC).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RejectionCurve {
    /// Name of the classifier/ensemble the curve belongs to (e.g. "RF").
    pub model_name: String,
    /// Curve points in ascending threshold order.
    pub points: Vec<RejectionPoint>,
}

impl RejectionCurve {
    /// Sweeps thresholds over predictions made on the known test set and the
    /// unknown set.
    pub fn sweep(
        model_name: impl Into<String>,
        known: &[UncertainPrediction],
        unknown: &[UncertainPrediction],
        thresholds: &[f64],
    ) -> RejectionCurve {
        let points = thresholds
            .iter()
            .map(|&threshold| {
                let policy = RejectionPolicy::new(threshold);
                RejectionPoint {
                    threshold,
                    known_rejected_pct: 100.0 * policy.rejection_rate(known),
                    unknown_rejected_pct: 100.0 * policy.rejection_rate(unknown),
                }
            })
            .collect();
        RejectionCurve {
            model_name: model_name.into(),
            points,
        }
    }

    /// The paper's headline operating point: the smallest threshold that
    /// rejects at most `max_known_rejection_pct` of the known inputs, together
    /// with the unknown-rejection percentage achieved there.
    pub fn operating_point(&self, max_known_rejection_pct: f64) -> Option<RejectionPoint> {
        self.points
            .iter()
            .filter(|p| p.known_rejected_pct <= max_known_rejection_pct)
            .min_by(|a, b| a.threshold.total_cmp(&b.threshold))
            .copied()
    }

    /// Area between the unknown- and known-rejection curves (in percentage
    /// points, averaged over thresholds). Positive values mean the estimator
    /// separates unknown from known inputs; values near zero reproduce the
    /// paper's HPC finding that the two populations cannot be told apart.
    pub fn separation(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points
            .iter()
            .map(|p| p.unknown_rejected_pct - p.known_rejected_pct)
            .sum::<f64>()
            / self.points.len() as f64
    }
}

/// One point of an accepted-F1 curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct F1Point {
    /// Entropy threshold.
    pub threshold: f64,
    /// F1 score computed over the accepted predictions only.
    pub f1: f64,
    /// Precision over the accepted predictions.
    pub precision: f64,
    /// Recall over the accepted predictions.
    pub recall: f64,
    /// Fraction of predictions accepted at this threshold.
    pub accepted_fraction: f64,
}

/// F1-of-accepted-predictions vs. threshold curve (Fig. 7b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct F1Curve {
    /// Name of the dataset/model combination (e.g. "RF-DVFS").
    pub name: String,
    /// Curve points in ascending threshold order.
    pub points: Vec<F1Point>,
}

impl F1Curve {
    /// Sweeps thresholds over predictions with ground-truth labels; at every
    /// threshold the classification metrics are computed over the accepted
    /// predictions only (rejected ones are escalated, not scored).
    ///
    /// Thresholds that accept nothing produce an [`F1Point`] with zero scores.
    pub fn sweep(
        name: impl Into<String>,
        predictions: &[UncertainPrediction],
        truth: &[Label],
        thresholds: &[f64],
    ) -> F1Curve {
        assert_eq!(
            predictions.len(),
            truth.len(),
            "predictions and ground truth must align"
        );
        let points = thresholds
            .iter()
            .map(|&threshold| {
                let policy = RejectionPolicy::new(threshold);
                let mut accepted_truth = Vec::new();
                let mut accepted_pred = Vec::new();
                for (p, &t) in predictions.iter().zip(truth) {
                    if !policy.rejects(p) {
                        accepted_truth.push(t);
                        accepted_pred.push(p.label);
                    }
                }
                if accepted_truth.is_empty() {
                    F1Point {
                        threshold,
                        f1: 0.0,
                        precision: 0.0,
                        recall: 0.0,
                        accepted_fraction: 0.0,
                    }
                } else {
                    let report =
                        ClassificationReport::from_predictions(&accepted_truth, &accepted_pred);
                    F1Point {
                        threshold,
                        f1: report.f1,
                        precision: report.precision,
                        recall: report.recall,
                        accepted_fraction: accepted_truth.len() as f64 / predictions.len() as f64,
                    }
                }
            })
            .collect();
        F1Curve {
            name: name.into(),
            points,
        }
    }

    /// The best F1 achieved anywhere on the curve.
    pub fn best_f1(&self) -> f64 {
        self.points.iter().map(|p| p.f1).fold(0.0, f64::max)
    }
}

/// How a batch of decisions divides between acceptance and escalation, and
/// whether escalation caught the rows the raw prediction got wrong.
///
/// This is the paper's trustworthiness claim in one table: a detector can
/// have mediocre *raw* accuracy under attack yet remain trustworthy if the
/// rows it would misclassify are the rows it escalates. The breakdown
/// cross-tabulates every report's decision (accept/escalate) against the
/// correctness of its underlying prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EscalationBreakdown {
    /// Total rows evaluated.
    pub rows: usize,
    /// Accepted rows whose accepted label matched the ground truth.
    pub accepted_correct: usize,
    /// Accepted rows whose accepted label was wrong — the silent failures.
    pub accepted_wrong: usize,
    /// Escalated rows whose prediction was actually correct — the price paid
    /// for the rejection option (analyst time spent on good predictions).
    pub escalated_correct: usize,
    /// Escalated rows whose prediction was wrong — the catches: every one of
    /// these would have been a silent failure without the rejection option.
    pub escalated_wrong: usize,
}

impl EscalationBreakdown {
    /// Cross-tabulates reports against ground truth.
    ///
    /// Accepted rows are scored by their accepted label, escalated rows by
    /// the prediction the policy refused to trust.
    pub fn from_reports(reports: &[DetectionReport], truth: &[Label]) -> EscalationBreakdown {
        assert_eq!(
            reports.len(),
            truth.len(),
            "reports and ground truth must align"
        );
        let mut breakdown = EscalationBreakdown {
            rows: reports.len(),
            ..EscalationBreakdown::default()
        };
        for (report, &actual) in reports.iter().zip(truth) {
            match report.decision {
                Decision::Accept(label) => {
                    if label == actual {
                        breakdown.accepted_correct += 1;
                    } else {
                        breakdown.accepted_wrong += 1;
                    }
                }
                Decision::Escalate => {
                    if report.prediction.label == actual {
                        breakdown.escalated_correct += 1;
                    } else {
                        breakdown.escalated_wrong += 1;
                    }
                }
            }
        }
        breakdown
    }

    /// Rows escalated.
    pub fn escalated(&self) -> usize {
        self.escalated_correct + self.escalated_wrong
    }

    /// Fraction of rows escalated.
    pub fn escalation_rate(&self) -> f64 {
        fraction(self.escalated(), self.rows)
    }

    /// Accuracy of the underlying predictions, ignoring the rejection option
    /// (what a conventional pipeline would silently act on).
    pub fn raw_accuracy(&self) -> f64 {
        fraction(self.accepted_correct + self.escalated_correct, self.rows)
    }

    /// Accuracy over the accepted rows only — what the system actually acts
    /// on once uncertain rows are escalated.
    pub fn accepted_accuracy(&self) -> f64 {
        fraction(
            self.accepted_correct,
            self.accepted_correct + self.accepted_wrong,
        )
    }

    /// Of all rows the prediction got wrong, the fraction the policy
    /// escalated instead of silently accepting — the headline
    /// "does uncertainty catch what accuracy misses?" number.
    pub fn caught_fraction(&self) -> f64 {
        fraction(
            self.escalated_wrong,
            self.escalated_wrong + self.accepted_wrong,
        )
    }
}

fn fraction(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

/// Evenly spaced thresholds from `start` to `end` inclusive, with `step`
/// spacing (the tick spacing used by the paper's figures is 0.05).
pub fn threshold_grid(start: f64, end: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0, "threshold step must be positive");
    let mut thresholds = Vec::new();
    let mut t = start;
    while t <= end + 1e-9 {
        thresholds.push((t * 1e9).round() / 1e9);
        t += step;
    }
    thresholds
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prediction(label: Label, entropy: f64) -> UncertainPrediction {
        UncertainPrediction {
            label,
            malware_vote_fraction: if label.is_malware() { 0.9 } else { 0.1 },
            entropy,
            num_estimators: 25,
        }
    }

    #[test]
    fn policy_rejects_above_threshold_only() {
        let policy = RejectionPolicy::new(0.4);
        assert!(!policy.rejects(&prediction(Label::Benign, 0.4)));
        assert!(policy.rejects(&prediction(Label::Benign, 0.41)));
        assert_eq!(policy.rejection_rate(&[]), 0.0);
    }

    #[test]
    fn rejection_curve_is_monotone_non_increasing_in_threshold() {
        let known: Vec<UncertainPrediction> = (0..50)
            .map(|i| prediction(Label::Benign, i as f64 / 100.0))
            .collect();
        let unknown: Vec<UncertainPrediction> = (0..50)
            .map(|i| prediction(Label::Malware, 0.5 + i as f64 / 100.0))
            .collect();
        let curve = RejectionCurve::sweep("RF", &known, &unknown, &threshold_grid(0.0, 1.0, 0.05));
        for pair in curve.points.windows(2) {
            assert!(pair[1].known_rejected_pct <= pair[0].known_rejected_pct + 1e-9);
            assert!(pair[1].unknown_rejected_pct <= pair[0].unknown_rejected_pct + 1e-9);
        }
        assert!(curve.separation() > 0.0);
    }

    #[test]
    fn operating_point_respects_known_budget() {
        let known: Vec<UncertainPrediction> = (0..100)
            .map(|i| prediction(Label::Benign, i as f64 / 200.0))
            .collect();
        let unknown: Vec<UncertainPrediction> =
            (0..100).map(|_| prediction(Label::Malware, 0.9)).collect();
        let curve = RejectionCurve::sweep("RF", &known, &unknown, &threshold_grid(0.0, 1.0, 0.05));
        let op = curve.operating_point(5.0).expect("feasible point exists");
        assert!(op.known_rejected_pct <= 5.0);
        assert!(op.unknown_rejected_pct >= 99.0);
        // an infeasible budget yields None
        let strict = RejectionCurve::sweep("RF", &known, &unknown, &[0.0]);
        assert!(strict.operating_point(-1.0).is_none());
    }

    #[test]
    fn f1_curve_improves_when_uncertain_mistakes_are_rejected() {
        // Confident predictions are correct; uncertain ones are wrong.
        let mut predictions = Vec::new();
        let mut truth = Vec::new();
        for i in 0..40 {
            let malware = i % 2 == 0;
            predictions.push(prediction(Label::from(malware), 0.1));
            truth.push(Label::from(malware));
        }
        for i in 0..20 {
            let malware = i % 2 == 0;
            predictions.push(prediction(Label::from(!malware), 0.9));
            truth.push(Label::from(malware));
        }
        let curve = F1Curve::sweep("RF-DVFS", &predictions, &truth, &[0.2, 1.0]);
        assert!(curve.points[0].f1 > curve.points[1].f1);
        assert_eq!(curve.points[0].accepted_fraction, 40.0 / 60.0);
        assert!((curve.best_f1() - curve.points[0].f1).abs() < 1e-12);
    }

    #[test]
    fn empty_acceptance_yields_zero_scores() {
        let predictions = vec![prediction(Label::Malware, 0.9)];
        let truth = vec![Label::Malware];
        let curve = F1Curve::sweep("x", &predictions, &truth, &[0.1]);
        assert_eq!(curve.points[0].f1, 0.0);
        assert_eq!(curve.points[0].accepted_fraction, 0.0);
    }

    #[test]
    fn threshold_grid_includes_endpoints() {
        let grid = threshold_grid(0.0, 0.75, 0.05);
        assert_eq!(grid.len(), 16);
        assert_eq!(grid[0], 0.0);
        assert!((grid[15] - 0.75).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_truth_length_panics() {
        let _ = F1Curve::sweep("x", &[prediction(Label::Benign, 0.1)], &[], &[0.5]);
    }

    fn report(predicted: Label, truth_entropy: f64, escalate: bool) -> DetectionReport {
        DetectionReport {
            prediction: prediction(predicted, truth_entropy),
            decision: if escalate {
                Decision::Escalate
            } else {
                Decision::Accept(predicted)
            },
        }
    }

    #[test]
    fn escalation_breakdown_cross_tabulates_decisions_and_correctness() {
        let reports = vec![
            report(Label::Malware, 0.1, false), // accepted, correct
            report(Label::Malware, 0.1, false), // accepted, wrong
            report(Label::Benign, 0.9, true),   // escalated, correct
            report(Label::Benign, 0.9, true),   // escalated, wrong
            report(Label::Benign, 0.9, true),   // escalated, wrong
        ];
        let truth = vec![
            Label::Malware,
            Label::Benign,
            Label::Benign,
            Label::Malware,
            Label::Malware,
        ];
        let breakdown = EscalationBreakdown::from_reports(&reports, &truth);
        assert_eq!(breakdown.rows, 5);
        assert_eq!(breakdown.accepted_correct, 1);
        assert_eq!(breakdown.accepted_wrong, 1);
        assert_eq!(breakdown.escalated_correct, 1);
        assert_eq!(breakdown.escalated_wrong, 2);
        assert_eq!(breakdown.escalated(), 3);
        assert!((breakdown.escalation_rate() - 0.6).abs() < 1e-12);
        assert!((breakdown.raw_accuracy() - 0.4).abs() < 1e-12);
        assert!((breakdown.accepted_accuracy() - 0.5).abs() < 1e-12);
        // 2 of the 3 wrong predictions were escalated rather than accepted.
        assert!((breakdown.caught_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn escalation_breakdown_handles_empty_and_all_escalated_batches() {
        let empty = EscalationBreakdown::from_reports(&[], &[]);
        assert_eq!(empty.raw_accuracy(), 0.0);
        assert_eq!(empty.accepted_accuracy(), 0.0);
        assert_eq!(empty.caught_fraction(), 0.0);

        let reports = vec![report(Label::Malware, 0.9, true)];
        let truth = vec![Label::Malware];
        let all_escalated = EscalationBreakdown::from_reports(&reports, &truth);
        assert_eq!(all_escalated.escalation_rate(), 1.0);
        assert_eq!(all_escalated.accepted_accuracy(), 0.0);
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn escalation_breakdown_rejects_mismatched_lengths() {
        let _ = EscalationBreakdown::from_reports(&[report(Label::Benign, 0.1, false)], &[]);
    }
}
