//! Entropy of ensemble vote distributions (Eq. 4 of the paper).

/// Shannon entropy (in bits) of a discrete probability distribution.
///
/// Zero-probability entries contribute nothing. Negative entries and
/// distributions that do not sum to one are the caller's responsibility; use
/// [`vote_entropy`] for raw vote counts.
///
/// # Example
///
/// ```
/// use hmd_core::entropy::shannon_entropy;
/// assert_eq!(shannon_entropy(&[1.0, 0.0]), 0.0);
/// assert!((shannon_entropy(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
/// ```
pub fn shannon_entropy(probabilities: &[f64]) -> f64 {
    probabilities
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.log2())
        .sum()
}

/// Entropy (bits) of the frequency distribution of ensemble votes.
///
/// This is the paper's predictive-uncertainty estimate: `counts[c]` is the
/// number of base classifiers voting for class `c`. Returns 0 for an empty
/// ensemble.
///
/// # Example
///
/// ```
/// use hmd_core::entropy::vote_entropy;
/// // 25 base classifiers, unanimous vote: certain.
/// assert_eq!(vote_entropy(&[25, 0]), 0.0);
/// // evenly split vote: maximally uncertain (1 bit for 2 classes).
/// assert!((vote_entropy(&[13, 12]) - 1.0).abs() < 0.01);
/// ```
pub fn vote_entropy(counts: &[usize]) -> f64 {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let probabilities: Vec<f64> = counts.iter().map(|&c| c as f64 / total as f64).collect();
    shannon_entropy(&probabilities)
}

/// Maximum achievable entropy (bits) for `num_classes` classes.
pub fn max_entropy(num_classes: usize) -> f64 {
    if num_classes == 0 {
        0.0
    } else {
        (num_classes as f64).log2()
    }
}

/// Entropy normalised to `[0, 1]` by the maximum entropy of the class count.
pub fn normalized_vote_entropy(counts: &[usize]) -> f64 {
    let h_max = max_entropy(counts.len());
    if h_max == 0.0 {
        0.0
    } else {
        vote_entropy(counts) / h_max
    }
}

/// Entropy (bits) of a Bernoulli distribution with success probability `p`
/// (the predictive-posterior entropy when the ensemble's malware probability
/// is `p`). Inputs are clamped to `[0, 1]`.
pub fn binary_entropy(p: f64) -> f64 {
    let p = p.clamp(0.0, 1.0);
    shannon_entropy(&[p, 1.0 - p])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_degenerate_distributions_is_zero() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy(&[1.0]), 0.0);
        assert_eq!(shannon_entropy(&[0.0, 1.0, 0.0]), 0.0);
        assert_eq!(vote_entropy(&[0, 0]), 0.0);
        assert_eq!(vote_entropy(&[10, 0]), 0.0);
    }

    #[test]
    fn uniform_distribution_achieves_maximum() {
        assert!((shannon_entropy(&[0.25; 4]) - 2.0).abs() < 1e-12);
        assert!((vote_entropy(&[5, 5]) - 1.0).abs() < 1e-12);
        assert_eq!(max_entropy(4), 2.0);
        assert_eq!(max_entropy(0), 0.0);
    }

    #[test]
    fn vote_entropy_is_symmetric_in_counts() {
        assert_eq!(vote_entropy(&[7, 3]), vote_entropy(&[3, 7]));
    }

    #[test]
    fn normalized_entropy_is_bounded() {
        for a in 0..=20usize {
            let h = normalized_vote_entropy(&[a, 20 - a]);
            assert!((0.0..=1.0 + 1e-12).contains(&h));
        }
    }

    #[test]
    fn binary_entropy_peaks_at_half() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(binary_entropy(0.3) < binary_entropy(0.5));
        assert_eq!(binary_entropy(-0.5), 0.0);
        assert_eq!(binary_entropy(1.5), 0.0);
    }

    #[test]
    fn more_disagreement_means_more_entropy() {
        let mut previous = -1.0;
        for minority in 0..=10usize {
            let h = vote_entropy(&[20 - minority, minority]);
            assert!(h >= previous, "entropy should grow with disagreement");
            previous = h;
        }
    }
}
