//! End-to-end HMD pipelines.
//!
//! [`UntrustedHmd`] is the conventional black-box detector of Fig. 1 (top):
//! feature scaling, optional PCA, one classifier, always a binary verdict.
//! [`TrustedHmd`] is the paper's proposal (Fig. 1 bottom): the same front end
//! feeding a bagging ensemble whose vote dispersion yields a predictive
//! uncertainty, and a rejection policy that escalates uncertain inputs
//! instead of trusting them.

use crate::estimator::{EnsembleUncertaintyEstimator, UncertainPrediction};
use crate::platt_baseline::PlattHmd;
use crate::rejection::RejectionPolicy;
use hmd_codec::{CodecError, Json, JsonCodec};
use hmd_data::scaler::StandardScaler;
use hmd_data::{Dataset, Label, Matrix, RowsView};
use hmd_ml::bagging::BaggingParams;
use hmd_ml::pca::Pca;
use hmd_ml::{Classifier, Estimator, MlError};
use serde::{Deserialize, Serialize};

/// The decision a trusted HMD takes for one input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Decision {
    /// The prediction was confident enough to act on.
    Accept(Label),
    /// The prediction was too uncertain; escalate the input (collect
    /// forensics, alert an analyst) instead of trusting the label.
    Escalate,
}

impl Decision {
    /// The accepted label, if any.
    pub fn label(&self) -> Option<Label> {
        match self {
            Decision::Accept(label) => Some(*label),
            Decision::Escalate => None,
        }
    }

    /// `true` when the decision is an escalation.
    pub fn is_escalation(&self) -> bool {
        matches!(self, Decision::Escalate)
    }
}

/// Outcome of running one signature through a [`TrustedHmd`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectionReport {
    /// The ensemble prediction with its uncertainty.
    pub prediction: UncertainPrediction,
    /// The decision after applying the rejection policy.
    pub decision: Decision,
}

/// Builder for [`TrustedHmd`] and [`UntrustedHmd`] pipelines.
#[derive(Debug, Clone, PartialEq)]
pub struct TrustedHmdBuilder<E> {
    base: E,
    num_estimators: usize,
    pca_components: Option<usize>,
    entropy_threshold: f64,
}

impl<E: Estimator> TrustedHmdBuilder<E> {
    /// Starts a builder around the given base estimator with the paper's
    /// defaults: 25 base classifiers, no PCA, entropy threshold 0.4.
    pub fn new(base: E) -> TrustedHmdBuilder<E> {
        TrustedHmdBuilder {
            base,
            num_estimators: 25,
            pca_components: None,
            entropy_threshold: 0.4,
        }
    }

    /// Sets the number of base classifiers in the bagging ensemble.
    #[must_use]
    pub fn with_num_estimators(mut self, n: usize) -> Self {
        self.num_estimators = n;
        self
    }

    /// Enables PCA dimensionality reduction to `components` dimensions.
    #[must_use]
    pub fn with_pca(mut self, components: usize) -> Self {
        self.pca_components = Some(components);
        self
    }

    /// Sets the entropy threshold of the rejection policy.
    #[must_use]
    pub fn with_entropy_threshold(mut self, threshold: f64) -> Self {
        self.entropy_threshold = threshold;
        self
    }

    /// Fits the shared preprocessing front end (scaler, optional PCA) and
    /// returns it with the transformed training set. Every pipeline family
    /// trains through this one code path.
    fn fit_front_end(
        &self,
        train: &Dataset,
    ) -> Result<(StandardScaler, Option<Pca>, Dataset), MlError> {
        let scaler = StandardScaler::fit(train.features());
        let scaled = scaler.transform_dataset(train)?;
        let (pca, reduced) = match self.pca_components {
            Some(components) => {
                let pca = Pca::fit(scaled.features(), components)?;
                let projected = pca.transform(scaled.features())?;
                let reduced = rebuild_dataset(&scaled, projected)?;
                (Some(pca), reduced)
            }
            None => (None, scaled),
        };
        Ok((scaler, pca, reduced))
    }

    /// Fits the trusted pipeline on a training dataset.
    ///
    /// # Errors
    ///
    /// Propagates scaling, PCA and ensemble-training errors.
    pub fn fit(&self, train: &Dataset, seed: u64) -> Result<TrustedHmd<E::Model>, MlError> {
        let (scaler, pca, reduced) = self.fit_front_end(train)?;
        let ensemble = BaggingParams::new(self.base.clone())
            .with_num_estimators(self.num_estimators)
            .fit(&reduced, seed)?;
        Ok(TrustedHmd {
            scaler,
            pca,
            estimator: EnsembleUncertaintyEstimator::new(ensemble),
            policy: RejectionPolicy::new(self.entropy_threshold),
        })
    }

    /// Fits the conventional (untrusted) baseline: the same front end with a
    /// single base classifier and no uncertainty output.
    ///
    /// # Errors
    ///
    /// Propagates scaling, PCA and training errors.
    pub fn fit_untrusted(
        &self,
        train: &Dataset,
        seed: u64,
    ) -> Result<UntrustedHmd<E::Model>, MlError> {
        let (scaler, pca, reduced) = self.fit_front_end(train)?;
        let model = self.base.fit(&reduced, seed)?;
        Ok(UntrustedHmd { scaler, pca, model })
    }

    /// Fits the confidence baseline: the same front end with a single
    /// probabilistic classifier whose output probability drives the
    /// accept/escalate decision (see [`crate::platt_baseline`]).
    ///
    /// Platt scaling happens inside the base learner where the backend
    /// supports it — the linear SVM calibrates by default; logistic
    /// regression is already a probabilistic model. Tree backends emit
    /// near-binary leaf probabilities and make a degenerate confidence
    /// baseline (entropy ≈ 0 everywhere), which is itself the paper's point
    /// about trusting point-estimate confidences.
    ///
    /// # Errors
    ///
    /// Propagates scaling, PCA and training errors.
    pub fn fit_platt(&self, train: &Dataset, seed: u64) -> Result<PlattHmd<E::Model>, MlError> {
        let (scaler, pca, reduced) = self.fit_front_end(train)?;
        let model = self.base.fit(&reduced, seed)?;
        Ok(PlattHmd::from_parts(
            scaler,
            pca,
            model,
            self.entropy_threshold,
        ))
    }
}

/// Applies a fitted front end (scaling, optional PCA) to a borrowed view of
/// raw signature rows at once — the entry point of every batch inference
/// path. The input stays zero-copy: only the scaled output is materialised.
pub(crate) fn preprocess_rows(
    scaler: &StandardScaler,
    pca: &Option<Pca>,
    batch: RowsView<'_>,
) -> Result<Matrix, MlError> {
    let scaled = scaler.transform(batch)?;
    match pca {
        Some(pca) => pca.transform(&scaled),
        None => Ok(scaled),
    }
}

/// Applies a fitted front end to one raw signature — the single-row
/// counterpart of [`preprocess_matrix`], shared by every per-window path.
pub(crate) fn preprocess_row(
    scaler: &StandardScaler,
    pca: &Option<Pca>,
    features: &[f64],
) -> Result<Vec<f64>, MlError> {
    let mut row = features.to_vec();
    scaler.transform_row(&mut row)?;
    match pca {
        Some(pca) => pca.transform_one(&row),
        None => Ok(row),
    }
}

/// The expected raw-signature width of a fitted front end, and the width the
/// model behind it must accept. Used by the persistence layer to reject
/// saved documents whose parts disagree on dimensionality (a mismatch would
/// panic or silently misclassify at detect time).
pub(crate) fn validate_widths(
    scaler: &StandardScaler,
    pca: &Option<Pca>,
    model_width: Option<usize>,
    context: &str,
) -> Result<(), CodecError> {
    let raw_width = scaler.means().len();
    let model_input = match pca {
        Some(pca) => {
            let (pca_in, pca_out) = (pca.input_width(), pca.num_components());
            if pca_in != raw_width {
                return Err(CodecError::new(format!(
                    "{context}: scaler expects {raw_width} features but PCA expects {pca_in}"
                )));
            }
            pca_out
        }
        None => raw_width,
    };
    match model_width {
        Some(width) if width != model_input => Err(CodecError::new(format!(
            "{context}: front end produces {model_input} features but model expects {width}"
        ))),
        _ => Ok(()),
    }
}

/// Shared batch path for the single-model pipelines (untrusted, Platt): one
/// front-end pass over the matrix, one batch walk of the classifier (served
/// by the flat engine for tree-based models), then a cheap per-row decision
/// mapping.
pub(crate) fn single_model_reports<M, F>(
    scaler: &StandardScaler,
    pca: &Option<Pca>,
    model: &M,
    batch: RowsView<'_>,
    report: F,
) -> Result<Vec<DetectionReport>, MlError>
where
    M: Classifier,
    F: Fn((Label, f64)) -> DetectionReport,
{
    let processed = preprocess_rows(scaler, pca, batch)?;
    let mut scored = Vec::new();
    model.predict_with_proba_batch(processed.view(), &mut scored);
    Ok(scored.into_iter().map(report).collect())
}

fn rebuild_dataset(original: &Dataset, features: hmd_data::Matrix) -> Result<Dataset, MlError> {
    let dataset = if original.meta().len() == original.len() {
        Dataset::with_meta(
            features,
            original.labels().to_vec(),
            original.meta().to_vec(),
        )
    } else {
        Dataset::new(features, original.labels().to_vec())
    };
    Ok(dataset?)
}

/// The paper's trusted HMD: scaling → optional PCA → bagging ensemble →
/// uncertainty estimate → accept/escalate decision.
#[derive(Debug, Clone, PartialEq)]
pub struct TrustedHmd<M> {
    scaler: StandardScaler,
    pca: Option<Pca>,
    estimator: EnsembleUncertaintyEstimator<M>,
    policy: RejectionPolicy,
}

impl<M: Classifier> TrustedHmd<M> {
    /// The uncertainty estimator (gives access to the underlying ensemble).
    pub fn estimator(&self) -> &EnsembleUncertaintyEstimator<M> {
        &self.estimator
    }

    /// The rejection policy currently in force.
    pub fn policy(&self) -> RejectionPolicy {
        self.policy
    }

    /// Replaces the rejection policy (e.g. after tuning the threshold on the
    /// known test set).
    pub fn set_policy(&mut self, policy: RejectionPolicy) {
        self.policy = policy;
    }

    fn preprocess(&self, features: &[f64]) -> Result<Vec<f64>, MlError> {
        preprocess_row(&self.scaler, &self.pca, features)
    }

    fn report_for_processed(&self, processed: &[f64]) -> DetectionReport {
        self.report_for_prediction(self.estimator.predict_with_uncertainty(processed))
    }

    fn report_for_prediction(&self, prediction: UncertainPrediction) -> DetectionReport {
        let decision = if self.policy.rejects(&prediction) {
            Decision::Escalate
        } else {
            Decision::Accept(prediction.label)
        };
        DetectionReport {
            prediction,
            decision,
        }
    }

    /// Runs one raw (unscaled) signature through the full pipeline.
    ///
    /// # Errors
    ///
    /// Returns an error when the feature vector has the wrong length.
    pub fn detect(&self, features: &[f64]) -> Result<DetectionReport, MlError> {
        let processed = self.preprocess(features)?;
        Ok(self.report_for_processed(&processed))
    }

    /// Runs a borrowed view of raw signature rows — a whole matrix, any row
    /// range of one, or a single-signature view — through the pipeline: the
    /// batch-first hot path.
    ///
    /// The front end (scaling, optional PCA) is applied to the view in one
    /// pass, then the ensemble's compiled flat engine scores all rows (tiled
    /// traversal, parallel across row blocks). Per-sample
    /// [`TrustedHmd::detect`] is the degenerate single-row case of this
    /// method and produces bit-identical reports.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch's feature count does not match the
    /// training data.
    pub fn detect_batch<'a>(
        &self,
        batch: impl Into<RowsView<'a>>,
    ) -> Result<Vec<DetectionReport>, MlError> {
        let processed = preprocess_rows(&self.scaler, &self.pca, batch.into())?;
        let votes = self.estimator.ensemble().malware_votes_batch(&processed);
        Ok(self
            .estimator
            .map_vote_batch(votes, |prediction| self.report_for_prediction(prediction)))
    }

    /// Predictions with uncertainty for every sample of a raw dataset.
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset's feature count does not match the
    /// training data.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Result<Vec<UncertainPrediction>, MlError> {
        Ok(self
            .detect_batch(dataset.features())?
            .into_iter()
            .map(|report| report.prediction)
            .collect())
    }

    /// Entropy values for every sample of a raw dataset.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TrustedHmd::predict_dataset`].
    pub fn entropies(&self, dataset: &Dataset) -> Result<Vec<f64>, MlError> {
        Ok(self
            .predict_dataset(dataset)?
            .into_iter()
            .map(|p| p.entropy)
            .collect())
    }

    /// Applies the fitted preprocessing front end (scaling, optional PCA) to a
    /// raw dataset, returning features in the space the ensemble was trained
    /// on. Used by analyses that need direct access to the underlying
    /// [`EnsembleUncertaintyEstimator`], such as the ensemble-size sweep of
    /// Fig. 9a.
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset's feature count does not match the
    /// training data.
    pub fn preprocess_dataset(&self, dataset: &Dataset) -> Result<Dataset, MlError> {
        let scaled = self.scaler.transform_dataset(dataset)?;
        match &self.pca {
            Some(pca) => {
                let projected = pca.transform(scaled.features())?;
                rebuild_dataset(&scaled, projected)
            }
            None => Ok(scaled),
        }
    }
}

/// The conventional black-box HMD: same front end, single classifier, no
/// uncertainty, never escalates.
#[derive(Debug, Clone, PartialEq)]
pub struct UntrustedHmd<M> {
    scaler: StandardScaler,
    pca: Option<Pca>,
    model: M,
}

impl<M: Classifier> UntrustedHmd<M> {
    /// The trained classifier.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Classifies one raw signature.
    ///
    /// # Errors
    ///
    /// Returns an error when the feature vector has the wrong length.
    pub fn detect(&self, features: &[f64]) -> Result<Label, MlError> {
        let processed = preprocess_row(&self.scaler, &self.pca, features)?;
        Ok(self.model.predict_one(&processed))
    }

    /// Classifies a borrowed view of raw signature rows in one pass (batch
    /// front end + parallel scoring). Named differently from the trait's
    /// report-producing `detect_batch` so concrete and `dyn Detector` callers
    /// never resolve the same spelling to different return types.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch's feature count does not match the
    /// training data.
    pub fn predict_batch<'a>(&self, batch: impl Into<RowsView<'a>>) -> Result<Vec<Label>, MlError> {
        Ok(self
            .report_batch(batch)?
            .into_iter()
            .map(|report| report.prediction.label)
            .collect())
    }

    fn report_for_scored(&self, (label, malware_vote_fraction): (Label, f64)) -> DetectionReport {
        DetectionReport {
            prediction: UncertainPrediction {
                label,
                malware_vote_fraction,
                // A single black-box classifier reports no predictive
                // uncertainty — that is exactly the paper's criticism.
                entropy: 0.0,
                num_estimators: 1,
            },
            decision: Decision::Accept(label),
        }
    }

    fn report_for_processed(&self, processed: &[f64]) -> DetectionReport {
        self.report_for_scored(self.model.predict_with_proba_one(processed))
    }

    /// Runs one raw signature through the pipeline, shaped as a
    /// [`DetectionReport`] so the conventional detector can serve behind the
    /// unified [`crate::detector::Detector`] API. The report always accepts
    /// (this pipeline cannot escalate) and carries zero entropy.
    ///
    /// # Errors
    ///
    /// Returns an error when the feature vector has the wrong length.
    pub fn report(&self, features: &[f64]) -> Result<DetectionReport, MlError> {
        let processed = preprocess_row(&self.scaler, &self.pca, features)?;
        Ok(self.report_for_processed(&processed))
    }

    /// Batch variant of [`UntrustedHmd::report`]: one front-end pass, one
    /// batch walk of the classifier (flat engine for tree-based backends).
    ///
    /// # Errors
    ///
    /// Returns an error when the batch's feature count does not match the
    /// training data.
    pub fn report_batch<'a>(
        &self,
        batch: impl Into<RowsView<'a>>,
    ) -> Result<Vec<DetectionReport>, MlError> {
        single_model_reports(
            &self.scaler,
            &self.pca,
            &self.model,
            batch.into(),
            |scored| self.report_for_scored(scored),
        )
    }

    /// Classifies every sample of a raw dataset.
    ///
    /// # Errors
    ///
    /// Returns an error when the dataset's feature count does not match the
    /// training data.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Result<Vec<Label>, MlError> {
        self.predict_batch(dataset.features())
    }
}

impl<M: Classifier + JsonCodec> JsonCodec for TrustedHmd<M> {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("scaler", self.scaler.to_json()),
            ("pca", self.pca.to_json()),
            ("ensemble", self.estimator.ensemble().to_json()),
            ("entropy_threshold", self.policy.entropy_threshold.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<TrustedHmd<M>, CodecError> {
        let scaler = StandardScaler::from_json(json.get("scaler")?)?;
        let pca = Option::<Pca>::from_json(json.get("pca")?)?;
        let ensemble = hmd_ml::bagging::BaggingEnsemble::<M>::from_json(json.get("ensemble")?)?;
        for estimator in ensemble.estimators() {
            validate_widths(&scaler, &pca, estimator.input_width(), "trusted pipeline")?;
        }
        Ok(TrustedHmd {
            scaler,
            pca,
            estimator: EnsembleUncertaintyEstimator::new(ensemble),
            policy: RejectionPolicy::new(f64::from_json(json.get("entropy_threshold")?)?),
        })
    }
}

impl<M: Classifier + JsonCodec> JsonCodec for UntrustedHmd<M> {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("scaler", self.scaler.to_json()),
            ("pca", self.pca.to_json()),
            ("model", self.model.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<UntrustedHmd<M>, CodecError> {
        let scaler = StandardScaler::from_json(json.get("scaler")?)?;
        let pca = Option::<Pca>::from_json(json.get("pca")?)?;
        let model = M::from_json(json.get("model")?)?;
        validate_widths(&scaler, &pca, model.input_width(), "untrusted pipeline")?;
        Ok(UntrustedHmd { scaler, pca, model })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Matrix;
    use hmd_ml::metrics::f1_score;
    use hmd_ml::tree::DecisionTreeParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn blobs(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let malware = rng.gen_bool(0.5);
            let c = if malware { 3.0 } else { -3.0 };
            rows.push(vec![
                c + rng.gen_range(-1.0..1.0),
                c + rng.gen_range(-1.0..1.0),
                rng.gen_range(-1.0..1.0),
            ]);
            labels.push(Label::from(malware));
        }
        Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn trusted_pipeline_classifies_and_accepts_in_distribution_inputs() {
        let train = blobs(200, 1);
        let test = blobs(80, 2);
        let hmd = TrustedHmdBuilder::new(DecisionTreeParams::new().with_max_depth(6))
            .with_num_estimators(15)
            .fit(&train, 3)
            .unwrap();
        let predictions = hmd.predict_dataset(&test).unwrap();
        let labels: Vec<Label> = predictions.iter().map(|p| p.label).collect();
        assert!(f1_score(test.labels(), &labels) > 0.9);
        let accepted = predictions
            .iter()
            .filter(|p| !hmd.policy().rejects(p))
            .count();
        assert!(accepted as f64 / predictions.len() as f64 > 0.8);
    }

    #[test]
    fn far_out_of_distribution_input_is_escalated() {
        let train = blobs(200, 4);
        let hmd = TrustedHmdBuilder::new(DecisionTreeParams::new().with_max_depth(6))
            .with_num_estimators(25)
            .with_entropy_threshold(0.3)
            .fit(&train, 5)
            .unwrap();
        // A point exactly between the blobs where bootstrap replicates
        // disagree about which side of the boundary it falls on.
        let report = hmd.detect(&[0.0, 0.0, 0.0]).unwrap();
        assert!(report.prediction.entropy >= 0.0);
        // In-distribution point is accepted with the right label.
        let benign = hmd.detect(&[-3.0, -3.0, 0.0]).unwrap();
        assert_eq!(benign.decision, Decision::Accept(Label::Benign));
        assert!(benign.prediction.entropy < report.prediction.entropy + 1e-9);
    }

    #[test]
    fn pca_pipeline_round_trips_feature_count() {
        let train = blobs(150, 6);
        let hmd = TrustedHmdBuilder::new(DecisionTreeParams::new())
            .with_num_estimators(9)
            .with_pca(2)
            .fit(&train, 7)
            .unwrap();
        let report = hmd.detect(&[3.0, 3.0, 0.0]).unwrap();
        assert_eq!(report.prediction.num_estimators, 9);
        // wrong width is rejected
        assert!(hmd.detect(&[1.0]).is_err());
    }

    #[test]
    fn untrusted_baseline_never_escalates() {
        let train = blobs(150, 8);
        let test = blobs(50, 9);
        let untrusted = TrustedHmdBuilder::new(DecisionTreeParams::new())
            .fit_untrusted(&train, 1)
            .unwrap();
        let labels = untrusted.predict_dataset(&test).unwrap();
        assert_eq!(labels.len(), test.len());
        assert!(f1_score(test.labels(), &labels) > 0.85);
    }

    #[test]
    fn policy_can_be_retuned_after_training() {
        let train = blobs(100, 10);
        let mut hmd = TrustedHmdBuilder::new(DecisionTreeParams::new())
            .with_num_estimators(7)
            .fit(&train, 2)
            .unwrap();
        assert!((hmd.policy().entropy_threshold - 0.4).abs() < 1e-12);
        hmd.set_policy(RejectionPolicy::new(0.0));
        // with a zero threshold, anything with any disagreement escalates
        let report = hmd.detect(&[0.0, 0.0, 0.0]).unwrap();
        if report.prediction.entropy > 0.0 {
            assert!(report.decision.is_escalation());
            assert_eq!(report.decision.label(), None);
        }
    }

    #[test]
    fn decision_helpers_expose_label() {
        assert_eq!(
            Decision::Accept(Label::Malware).label(),
            Some(Label::Malware)
        );
        assert!(Decision::Escalate.is_escalation());
        assert!(!Decision::Accept(Label::Benign).is_escalation());
    }
}
