//! The online monitoring loop: stream signatures through a detector and keep
//! running statistics.

use super::Detector;
use crate::trusted::DetectionReport;
use hmd_data::RowsView;
use hmd_ml::MlError;

/// Running statistics of a [`MonitorSession`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorStats {
    /// Total signatures observed.
    pub windows: usize,
    /// Signatures whose prediction was accepted.
    pub accepted: usize,
    /// Signatures escalated for forensics.
    pub escalated: usize,
    /// Accepted signatures classified malware.
    pub accepted_malware: usize,
    /// Accepted signatures classified benign.
    pub accepted_benign: usize,
    /// Highest entropy seen so far (0 when nothing was observed).
    pub max_entropy: f64,
    /// Lowest entropy seen so far (0 when nothing was observed).
    pub min_entropy: f64,
    entropy_sum: f64,
    /// Reset-on-read sub-block covering everything recorded since the last
    /// [`MonitorStats::window_snapshot`]. Recorded and merged in lock-step
    /// with the lifetime fields above, never exposed directly.
    window: WindowBlock,
}

/// The reset-on-read window: the same counters as the lifetime block,
/// tracked since the last snapshot. Extremes cannot be *subtracted* from
/// lifetime stats, so the window is recorded alongside rather than derived.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct WindowBlock {
    windows: usize,
    accepted: usize,
    escalated: usize,
    accepted_malware: usize,
    accepted_benign: usize,
    max_entropy: f64,
    min_entropy: f64,
    entropy_sum: f64,
}

impl WindowBlock {
    fn record(&mut self, entropy: f64, label: Option<hmd_data::Label>) {
        if self.windows == 0 {
            self.max_entropy = entropy;
            self.min_entropy = entropy;
        } else {
            self.max_entropy = self.max_entropy.max(entropy);
            self.min_entropy = self.min_entropy.min(entropy);
        }
        self.windows += 1;
        self.entropy_sum += entropy;
        match label {
            Some(label) => {
                self.accepted += 1;
                if label.is_malware() {
                    self.accepted_malware += 1;
                } else {
                    self.accepted_benign += 1;
                }
            }
            None => self.escalated += 1,
        }
    }

    fn merge(&mut self, other: &WindowBlock) {
        if other.windows == 0 {
            return;
        }
        if self.windows == 0 {
            *self = *other;
            return;
        }
        self.max_entropy = self.max_entropy.max(other.max_entropy);
        self.min_entropy = self.min_entropy.min(other.min_entropy);
        self.windows += other.windows;
        self.accepted += other.accepted;
        self.escalated += other.escalated;
        self.accepted_malware += other.accepted_malware;
        self.accepted_benign += other.accepted_benign;
        self.entropy_sum += other.entropy_sum;
    }
}

impl Default for MonitorStats {
    fn default() -> MonitorStats {
        MonitorStats {
            windows: 0,
            accepted: 0,
            escalated: 0,
            accepted_malware: 0,
            accepted_benign: 0,
            max_entropy: 0.0,
            min_entropy: 0.0,
            entropy_sum: 0.0,
            window: WindowBlock::default(),
        }
    }
}

impl MonitorStats {
    /// Folds one detection outcome into the running statistics.
    ///
    /// Public so owners of detector state other than [`MonitorSession`] —
    /// notably the serving fleet's per-endpoint monitors — can maintain the
    /// same statistics without re-implementing the counting rules.
    pub fn record(&mut self, report: &DetectionReport) {
        let entropy = report.prediction.entropy;
        if self.windows == 0 {
            self.max_entropy = entropy;
            self.min_entropy = entropy;
        } else {
            self.max_entropy = self.max_entropy.max(entropy);
            self.min_entropy = self.min_entropy.min(entropy);
        }
        self.windows += 1;
        self.entropy_sum += entropy;
        match report.decision.label() {
            Some(label) => {
                self.accepted += 1;
                if label.is_malware() {
                    self.accepted_malware += 1;
                } else {
                    self.accepted_benign += 1;
                }
            }
            None => self.escalated += 1,
        }
        self.window.record(entropy, report.decision.label());
    }

    /// Folds another statistics block into this one, as if every window the
    /// other block observed had been recorded here too.
    ///
    /// Counters add, entropy extremes take the joint min/max, and the mean
    /// merges through the underlying sums — so merging the per-replica
    /// statistics of a sharded endpoint yields the same counters and
    /// extremes as recording every report into one block (the mean is the
    /// same up to f64 summation order). Merging an empty block is a no-op.
    pub fn merge(&mut self, other: &MonitorStats) {
        if other.windows == 0 {
            return;
        }
        if self.windows == 0 {
            *self = *other;
            return;
        }
        self.max_entropy = self.max_entropy.max(other.max_entropy);
        self.min_entropy = self.min_entropy.min(other.min_entropy);
        self.windows += other.windows;
        self.accepted += other.accepted;
        self.escalated += other.escalated;
        self.accepted_malware += other.accepted_malware;
        self.accepted_benign += other.accepted_benign;
        self.entropy_sum += other.entropy_sum;
        self.window.merge(&other.window);
    }

    /// Takes a reset-on-read snapshot of everything recorded since the last
    /// snapshot (or since the block was created), returned as a standalone
    /// [`MonitorStats`] whose lifetime fields cover exactly that interval.
    ///
    /// The lifetime statistics of `self` are untouched — only the internal
    /// window is cleared — so drift monitors can poll at their own cadence
    /// without perturbing the numbers operators watch. Snapshots are
    /// merge-compatible: merging the window snapshots of two blocks equals
    /// the window snapshot of the merged block, and a snapshot's own window
    /// mirrors its lifetime fields (it reads as freshly recorded).
    pub fn window_snapshot(&mut self) -> MonitorStats {
        let w = self.window;
        self.window = WindowBlock::default();
        MonitorStats {
            windows: w.windows,
            accepted: w.accepted,
            escalated: w.escalated,
            accepted_malware: w.accepted_malware,
            accepted_benign: w.accepted_benign,
            max_entropy: w.max_entropy,
            min_entropy: w.min_entropy,
            entropy_sum: w.entropy_sum,
            window: w,
        }
    }

    /// Signatures recorded since the last [`MonitorStats::window_snapshot`]
    /// — a peek at the pending window's size without resetting it.
    pub fn window_rows(&self) -> usize {
        self.window.windows
    }

    /// Mean entropy over every observed window (0 when none).
    pub fn mean_entropy(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.entropy_sum / self.windows as f64
        }
    }

    /// Fraction of windows escalated (0 when none observed).
    pub fn escalation_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.escalated as f64 / self.windows as f64
        }
    }

    /// Fraction of windows accepted (0 when none observed).
    pub fn acceptance_rate(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.accepted as f64 / self.windows as f64
        }
    }
}

/// An online monitoring session around any [`Detector`].
///
/// This is the deployment scenario the paper motivates: a detector trained
/// offline watches a stream of fresh signatures. The session consumes one
/// window (or one batch) at a time and maintains running
/// accept/escalate/entropy statistics, so operational code does not
/// re-implement the counting loop.
///
/// # Example
///
/// ```
/// use hmd_core::detector::{DetectorBackend, DetectorConfig, MonitorSession};
/// use hmd_data::{Dataset, Label, Matrix};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let x = Matrix::from_rows(&[
///     vec![0.0, 0.1], vec![0.1, 0.0], vec![1.0, 0.9], vec![0.9, 1.0],
/// ])?;
/// let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
/// let detector = DetectorConfig::trusted(DetectorBackend::decision_tree())
///     .with_num_estimators(9)
///     .fit(&Dataset::new(x, y)?, 3)?;
///
/// let mut session = MonitorSession::new(detector.as_ref());
/// session.observe(&[0.05, 0.05])?;
/// session.observe(&[0.95, 0.95])?;
/// assert_eq!(session.stats().windows, 2);
/// # Ok(())
/// # }
/// ```
pub struct MonitorSession<'d> {
    detector: &'d dyn Detector,
    stats: MonitorStats,
}

impl<'d> MonitorSession<'d> {
    /// Starts a session around the detector.
    pub fn new(detector: &'d dyn Detector) -> MonitorSession<'d> {
        MonitorSession {
            detector,
            stats: MonitorStats::default(),
        }
    }

    /// The monitored detector.
    pub fn detector(&self) -> &dyn Detector {
        self.detector
    }

    /// Feeds one signature through the detector and folds the outcome into
    /// the running statistics. The signature travels as a zero-copy 1×d
    /// [`RowsView`] through the detector's batch path — no per-call matrix
    /// or row copy is built on the way in.
    ///
    /// # Errors
    ///
    /// Returns an error when the feature vector has the wrong length; the
    /// statistics are unchanged in that case.
    pub fn observe(&mut self, features: &[f64]) -> Result<DetectionReport, MlError> {
        let report = self.detector.detect(features)?;
        self.stats.record(&report);
        Ok(report)
    }

    /// Feeds a whole batch of signatures — any borrowed row view — through
    /// the detector's batch hot path, recording every outcome.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch's feature count does not match the
    /// training data; the statistics are unchanged in that case.
    pub fn observe_batch<'a>(
        &mut self,
        batch: impl Into<RowsView<'a>>,
    ) -> Result<Vec<DetectionReport>, MlError> {
        let reports = self.detector.detect_rows(batch.into())?;
        for report in &reports {
            self.stats.record(report);
        }
        Ok(reports)
    }

    /// The running statistics.
    pub fn stats(&self) -> &MonitorStats {
        &self.stats
    }

    /// Resets the statistics (e.g. at an epoch boundary) without touching the
    /// detector.
    pub fn reset(&mut self) {
        self.stats = MonitorStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::UncertainPrediction;
    use crate::trusted::Decision;
    use hmd_data::{Label, Matrix};

    /// A deterministic fake detector: entropy = first feature, escalates
    /// above 0.5.
    struct Fake;

    impl Detector for Fake {
        fn name(&self) -> String {
            "fake".to_string()
        }

        fn entropy_threshold(&self) -> f64 {
            0.5
        }

        fn detect(&self, features: &[f64]) -> Result<DetectionReport, MlError> {
            let entropy = features[0];
            let label = Label::from(features.get(1).copied().unwrap_or(0.0) >= 0.5);
            let decision = if entropy > 0.5 {
                Decision::Escalate
            } else {
                Decision::Accept(label)
            };
            Ok(DetectionReport {
                prediction: UncertainPrediction {
                    label,
                    malware_vote_fraction: 0.0,
                    entropy,
                    num_estimators: 1,
                },
                decision,
            })
        }

        fn detect_rows(&self, batch: RowsView<'_>) -> Result<Vec<DetectionReport>, MlError> {
            batch.iter_rows().map(|row| self.detect(row)).collect()
        }
    }

    #[test]
    fn stats_track_accepts_escalations_and_entropy() {
        let detector = Fake;
        let mut session = MonitorSession::new(&detector);
        session.observe(&[0.1, 1.0]).unwrap(); // accept malware
        session.observe(&[0.2, 0.0]).unwrap(); // accept benign
        session.observe(&[0.9, 1.0]).unwrap(); // escalate
        let stats = session.stats();
        assert_eq!(stats.windows, 3);
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.escalated, 1);
        assert_eq!(stats.accepted_malware, 1);
        assert_eq!(stats.accepted_benign, 1);
        assert!((stats.mean_entropy() - 0.4).abs() < 1e-12);
        assert_eq!(stats.max_entropy, 0.9);
        assert_eq!(stats.min_entropy, 0.1);
        assert!((stats.escalation_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!((stats.acceptance_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn batch_observation_equals_sequential_observation() {
        let detector = Fake;
        let rows = vec![vec![0.1, 1.0], vec![0.6, 0.0], vec![0.3, 1.0]];
        let batch = Matrix::from_rows(&rows).unwrap();

        let mut sequential = MonitorSession::new(&detector);
        for row in &rows {
            sequential.observe(row).unwrap();
        }
        let mut batched = MonitorSession::new(&detector);
        batched.observe_batch(&batch).unwrap();
        assert_eq!(sequential.stats(), batched.stats());
    }

    #[test]
    fn merged_stats_equal_jointly_recorded_stats() {
        let detector = Fake;
        let rows = [
            vec![0.1, 1.0],
            vec![0.6, 0.0],
            vec![0.3, 1.0],
            vec![0.9, 0.0],
            vec![0.05, 0.0],
        ];
        // Record all five windows into one block...
        let mut joint = MonitorSession::new(&detector);
        for row in &rows {
            joint.observe(row).unwrap();
        }
        // ...and split the same windows across two blocks, then merge.
        let mut left = MonitorSession::new(&detector);
        let mut right = MonitorSession::new(&detector);
        for (i, row) in rows.iter().enumerate() {
            if i % 2 == 0 {
                left.observe(row).unwrap();
            } else {
                right.observe(row).unwrap();
            }
        }
        let mut merged = *left.stats();
        merged.merge(right.stats());
        assert_eq!(&merged, joint.stats());

        // Merging empty blocks in either direction changes nothing.
        let mut empty = MonitorStats::default();
        empty.merge(&merged);
        assert_eq!(empty, merged);
        merged.merge(&MonitorStats::default());
        assert_eq!(&merged, joint.stats());
    }

    #[test]
    fn window_snapshot_matches_jointly_recorded_stats_and_spares_lifetime() {
        let detector = Fake;
        let first = [vec![0.1, 1.0], vec![0.6, 0.0], vec![0.3, 1.0]];
        let second = [vec![0.9, 0.0], vec![0.05, 0.0]];

        let mut session = MonitorSession::new(&detector);
        for row in &first {
            session.observe(row).unwrap();
        }
        // The first snapshot covers exactly the first batch: it equals a
        // block that recorded only those rows.
        let mut only_first = MonitorSession::new(&detector);
        for row in &first {
            only_first.observe(row).unwrap();
        }
        let mut stats = *session.stats();
        let snap = stats.window_snapshot();
        assert_eq!(&snap, only_first.stats());

        // Lifetime fields are untouched by the read...
        assert_eq!(stats.windows, first.len());
        assert_eq!(stats.mean_entropy(), only_first.stats().mean_entropy());
        // ...but the window reset: the next snapshot covers only what came
        // after, again equal to a jointly-recorded block of just those rows.
        for row in &second {
            stats.record(&detector.detect(row).unwrap());
        }
        let mut only_second = MonitorSession::new(&detector);
        for row in &second {
            only_second.observe(row).unwrap();
        }
        let snap2 = stats.window_snapshot();
        assert_eq!(&snap2, only_second.stats());
        assert_eq!(stats.windows, first.len() + second.len());
        assert_eq!(stats.window_rows(), 0);

        // An empty window reads as a default block.
        assert_eq!(stats.window_snapshot(), MonitorStats::default());
    }

    #[test]
    fn window_snapshots_merge_like_their_source_blocks() {
        let detector = Fake;
        let rows = [
            vec![0.1, 1.0],
            vec![0.6, 0.0],
            vec![0.3, 1.0],
            vec![0.9, 0.0],
            vec![0.05, 0.0],
        ];
        // Two replicas each record a share; a joint block records all rows.
        let mut left = MonitorStats::default();
        let mut right = MonitorStats::default();
        let mut joint = MonitorStats::default();
        for (i, row) in rows.iter().enumerate() {
            let report = detector.detect(row).unwrap();
            joint.record(&report);
            if i % 2 == 0 {
                left.record(&report);
            } else {
                right.record(&report);
            }
        }
        // Merging per-replica window snapshots equals the joint window
        // snapshot — the property `ShardedFleet::window_stats` relies on.
        let mut merged = left.window_snapshot();
        merged.merge(&right.window_snapshot());
        assert_eq!(merged, joint.window_snapshot());
        // The reads reset every window without touching lifetimes.
        assert_eq!(left.windows + right.windows, joint.windows);
        assert_eq!(left.window_rows() + right.window_rows(), 0);
    }

    #[test]
    fn empty_session_reports_zeroes_and_reset_clears() {
        let detector = Fake;
        let mut session = MonitorSession::new(&detector);
        assert_eq!(session.stats().windows, 0);
        assert_eq!(session.stats().mean_entropy(), 0.0);
        assert_eq!(session.stats().escalation_rate(), 0.0);
        session.observe(&[0.2, 0.0]).unwrap();
        assert_eq!(session.stats().windows, 1);
        session.reset();
        assert_eq!(session.stats(), &MonitorStats::default());
        assert_eq!(session.detector().name(), "fake");
    }
}
