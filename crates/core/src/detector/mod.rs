//! The unified, batch-first detector API.
//!
//! The workspace trains three families of hardware-malware-detector
//! pipelines — the paper's [`TrustedHmd`] (ensemble + entropy + rejection),
//! the conventional [`UntrustedHmd`] black box, and the [`PlattHmd`]
//! confidence baseline — over four base learners. This module puts all of
//! them behind one polymorphic contract so that serving code, benchmarks and
//! examples are written once:
//!
//! * [`Detector`] — the object-safe inference trait. Its required hot path is
//!   [`Detector::detect_rows`], which scores a borrowed
//!   [`RowsView`] — a whole matrix, any row range of one,
//!   or a single borrowed signature — with zero input copies.
//!   [`Detector::detect`] is the provided single-window case, routed through
//!   a 1×d view of the caller's slice.
//! * [`DetectorExt::detect_batch`] — the ergonomic batch entry point: a
//!   blanket extension accepting `impl Into<RowsView>`, so existing
//!   `detector.detect_batch(&matrix)` call sites keep working unchanged.
//! * [`DetectorConfig`] — a serialisable description (kind × backend ×
//!   ensemble size × PCA × threshold) compiled by [`DetectorConfig::fit`]
//!   into a `Box<dyn Detector>`.
//! * [`save`] / [`load`] (and the `_file` variants) — persistence of fitted
//!   pipelines: train once, serve many times. Restored detectors reproduce
//!   **bit-identical** reports.
//! * [`MonitorSession`] — the online deployment loop: feed signatures one
//!   window (or one batch) at a time, keep running accept/escalate/entropy
//!   statistics. (The `hmd_serve` fleet wraps the same loop behind named,
//!   versioned, micro-batching endpoints.)
//!
//! # Example
//!
//! ```
//! use hmd_core::detector::{load, save, DetectorBackend, DetectorConfig, DetectorExt};
//! use hmd_data::{Dataset, Label, Matrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let x = Matrix::from_rows(&[
//!     vec![0.1, 0.2], vec![0.2, 0.1], vec![0.9, 0.8], vec![0.8, 0.9],
//! ])?;
//! let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
//! let train = Dataset::new(x, y)?;
//!
//! let config = DetectorConfig::trusted(DetectorBackend::decision_tree())
//!     .with_num_estimators(15)
//!     .with_entropy_threshold(0.4);
//! let detector = config.fit(&train, 7)?;
//!
//! // Persist the fitted pipeline and serve the restored copy.
//! let saved = save(detector.as_ref())?;
//! let restored = load(&saved)?;
//! let batch = Matrix::from_rows(&[vec![0.15, 0.15], vec![0.85, 0.85]])?;
//! let reports = restored.detect_batch(&batch)?;
//! assert_eq!(reports.len(), 2);
//! assert_eq!(reports, detector.detect_batch(&batch)?);
//! # Ok(())
//! # }
//! ```

mod session;

pub use session::{MonitorSession, MonitorStats};

use crate::platt_baseline::PlattHmd;
use crate::trusted::{DetectionReport, TrustedHmd, TrustedHmdBuilder, UntrustedHmd};
use hmd_codec::{CodecError, Json, JsonCodec};
use hmd_data::{Dataset, Label, RowsView};
use hmd_ml::forest::{RandomForest, RandomForestParams};
use hmd_ml::logistic::{LogisticRegression, LogisticRegressionParams};
use hmd_ml::svm::{LinearSvm, LinearSvmParams};
use hmd_ml::tree::{DecisionTree, DecisionTreeParams};
use hmd_ml::{Classifier, Estimator, MlError, ModelTag};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Version tag written into every saved detector document.
const FORMAT: &str = "hmd-detector";
const VERSION: i64 = 1;

/// An online hardware malware detector: raw signature(s) in, decision(s) out.
///
/// The trait is object-safe; production code passes detectors around as
/// `Box<dyn Detector>` and never mentions the concrete pipeline or base
/// learner again. All built-in implementations are batch-first and
/// **view-first**: [`Detector::detect_rows`] scores a borrowed
/// [`RowsView`] — a whole matrix, any row range of one, or one borrowed
/// signature — applying the preprocessing front end once and scoring rows in
/// parallel. Prefer the batch path whenever more than one window is
/// available; `&Matrix` callers go through [`DetectorExt::detect_batch`].
pub trait Detector: Send + Sync {
    /// Human-readable description, e.g. `trusted[25x random-forest]`.
    fn name(&self) -> String;

    /// The entropy threshold above which this detector escalates (the
    /// conventional pipeline never escalates and reports `f64::INFINITY`).
    fn entropy_threshold(&self) -> f64;

    /// Scores a borrowed view of raw signature rows — the object-safe hot
    /// path. One report per view row, in row order.
    ///
    /// # Errors
    ///
    /// Returns an error when the view's feature count does not match the
    /// training data.
    fn detect_rows(&self, batch: RowsView<'_>) -> Result<Vec<DetectionReport>, MlError>;

    /// Scores one raw (unscaled) signature.
    ///
    /// The default wraps the slice in a zero-copy 1×d [`RowsView`] and routes
    /// it through [`Detector::detect_rows`], so single-row scoring shares the
    /// batch path bit for bit and copies nothing on the way in.
    ///
    /// # Errors
    ///
    /// Returns an error when the feature vector has the wrong length.
    fn detect(&self, features: &[f64]) -> Result<DetectionReport, MlError> {
        let mut reports = self.detect_rows(RowsView::single(features))?;
        reports.pop().ok_or_else(|| MlError::ContractViolation {
            message: "detect_rows returned no report for a 1-row view".into(),
        })
    }

    /// Serialises the fitted pipeline as a tagged document, when this
    /// implementation supports persistence. Built-in detectors all do;
    /// third-party implementations may return `None`.
    fn to_saved_json(&self) -> Option<Json> {
        None
    }
}

/// Ergonomic batch entry points for every [`Detector`], including trait
/// objects.
///
/// The core trait stays object-safe by taking the concrete [`RowsView`]
/// type; this blanket extension restores the convenient generic signature,
/// so `detector.detect_batch(&matrix)`, `detector.detect_batch(view)` and
/// `detector.detect_batch(matrix.rows_view(a..b))` all work on `dyn
/// Detector` without copies.
pub trait DetectorExt: Detector {
    /// Scores anything convertible to a borrowed row view — `&Matrix`, a
    /// [`RowsView`], or a row range of a matrix.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch's feature count does not match the
    /// training data.
    fn detect_batch<'a>(
        &self,
        batch: impl Into<RowsView<'a>>,
    ) -> Result<Vec<DetectionReport>, MlError> {
        self.detect_rows(batch.into())
    }
}

impl<D: Detector + ?Sized> DetectorExt for D {}

/// Projects batch reports down to their uncertainty predictions — the shape
/// the rejection-curve, F1 and entropy analyses consume. Borrows the reports
/// (they are `Copy`), so callers keep ownership of the full envelope.
pub fn predictions(reports: &[DetectionReport]) -> Vec<crate::estimator::UncertainPrediction> {
    reports.iter().map(|report| report.prediction).collect()
}

fn saved_document(kind: &str, backend: &str, model: Json) -> Json {
    Json::object(vec![
        ("format", Json::Str(FORMAT.to_string())),
        ("version", Json::Int(VERSION)),
        ("kind", Json::Str(kind.to_string())),
        ("backend", Json::Str(backend.to_string())),
        ("model", model),
    ])
}

impl<M> Detector for TrustedHmd<M>
where
    M: Classifier + ModelTag + JsonCodec,
{
    fn name(&self) -> String {
        format!("trusted[{}x {}]", self.estimator().num_estimators(), M::TAG)
    }

    fn entropy_threshold(&self) -> f64 {
        self.policy().entropy_threshold
    }

    fn detect_rows(&self, batch: RowsView<'_>) -> Result<Vec<DetectionReport>, MlError> {
        TrustedHmd::detect_batch(self, batch)
    }

    fn to_saved_json(&self) -> Option<Json> {
        Some(saved_document("trusted", M::TAG, JsonCodec::to_json(self)))
    }
}

impl<M> Detector for UntrustedHmd<M>
where
    M: Classifier + ModelTag + JsonCodec,
{
    fn name(&self) -> String {
        format!("untrusted[{}]", M::TAG)
    }

    fn entropy_threshold(&self) -> f64 {
        // The conventional pipeline accepts everything.
        f64::INFINITY
    }

    fn detect_rows(&self, batch: RowsView<'_>) -> Result<Vec<DetectionReport>, MlError> {
        self.report_batch(batch)
    }

    fn to_saved_json(&self) -> Option<Json> {
        Some(saved_document(
            "untrusted",
            M::TAG,
            JsonCodec::to_json(self),
        ))
    }
}

impl<M> Detector for PlattHmd<M>
where
    M: Classifier + ModelTag + JsonCodec,
{
    fn name(&self) -> String {
        format!("platt[{}]", M::TAG)
    }

    fn entropy_threshold(&self) -> f64 {
        PlattHmd::entropy_threshold(self)
    }

    fn detect_rows(&self, batch: RowsView<'_>) -> Result<Vec<DetectionReport>, MlError> {
        PlattHmd::detect_batch(self, batch)
    }

    fn to_saved_json(&self) -> Option<Json> {
        Some(saved_document("platt", M::TAG, JsonCodec::to_json(self)))
    }
}

/// Which pipeline family a [`DetectorConfig`] builds.
///
/// Marked `#[non_exhaustive]`: the serving layer is expected to grow pipeline
/// families (sharded, cascaded, …) without breaking downstream matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DetectorKind {
    /// The paper's pipeline: bagging ensemble + entropy + rejection policy.
    Trusted,
    /// The conventional black box: one classifier, never escalates.
    Untrusted,
    /// The Platt-scaling confidence baseline the paper argues against.
    PlattBaseline,
}

impl DetectorKind {
    fn tag(self) -> &'static str {
        match self {
            DetectorKind::Trusted => "trusted",
            DetectorKind::Untrusted => "untrusted",
            DetectorKind::PlattBaseline => "platt",
        }
    }

    fn from_tag(tag: &str) -> Result<DetectorKind, CodecError> {
        match tag {
            "trusted" => Ok(DetectorKind::Trusted),
            "untrusted" => Ok(DetectorKind::Untrusted),
            "platt" => Ok(DetectorKind::PlattBaseline),
            other => Err(CodecError::new(format!("unknown detector kind `{other}`"))),
        }
    }
}

/// The base learner (with its hyper-parameters) a [`DetectorConfig`] trains.
///
/// Marked `#[non_exhaustive]` so new base learners can be added without a
/// breaking change; downstream matches need a wildcard arm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum DetectorBackend {
    /// CART decision trees.
    DecisionTree(DecisionTreeParams),
    /// Random forests (the paper's best performer).
    RandomForest(RandomForestParams),
    /// L2-regularised logistic regression.
    LogisticRegression(LogisticRegressionParams),
    /// Pegasos linear SVM with optional Platt calibration.
    LinearSvm(LinearSvmParams),
}

impl DetectorBackend {
    /// Decision-tree backend with default parameters.
    pub fn decision_tree() -> DetectorBackend {
        DetectorBackend::DecisionTree(DecisionTreeParams::new())
    }

    /// Random-forest backend with default parameters.
    pub fn random_forest() -> DetectorBackend {
        DetectorBackend::RandomForest(RandomForestParams::new())
    }

    /// Logistic-regression backend with default parameters.
    pub fn logistic_regression() -> DetectorBackend {
        DetectorBackend::LogisticRegression(LogisticRegressionParams::new())
    }

    /// Linear-SVM backend with default parameters.
    pub fn linear_svm() -> DetectorBackend {
        DetectorBackend::LinearSvm(LinearSvmParams::new())
    }

    /// The backend's stable persistence tag.
    pub fn tag(&self) -> &'static str {
        match self {
            DetectorBackend::DecisionTree(_) => DecisionTree::TAG,
            DetectorBackend::RandomForest(_) => RandomForest::TAG,
            DetectorBackend::LogisticRegression(_) => LogisticRegression::TAG,
            DetectorBackend::LinearSvm(_) => LinearSvm::TAG,
        }
    }
}

impl JsonCodec for DetectorBackend {
    fn to_json(&self) -> Json {
        let params = match self {
            DetectorBackend::DecisionTree(p) => p.to_json(),
            DetectorBackend::RandomForest(p) => p.to_json(),
            DetectorBackend::LogisticRegression(p) => p.to_json(),
            DetectorBackend::LinearSvm(p) => p.to_json(),
        };
        Json::object(vec![
            ("backend", Json::Str(self.tag().to_string())),
            ("params", params),
        ])
    }

    fn from_json(json: &Json) -> Result<DetectorBackend, CodecError> {
        let params = json.get("params")?;
        match json.get("backend")?.as_str()? {
            t if t == DecisionTree::TAG => Ok(DetectorBackend::DecisionTree(
                DecisionTreeParams::from_json(params)?,
            )),
            t if t == RandomForest::TAG => Ok(DetectorBackend::RandomForest(
                RandomForestParams::from_json(params)?,
            )),
            t if t == LogisticRegression::TAG => Ok(DetectorBackend::LogisticRegression(
                LogisticRegressionParams::from_json(params)?,
            )),
            t if t == LinearSvm::TAG => Ok(DetectorBackend::LinearSvm(LinearSvmParams::from_json(
                params,
            )?)),
            other => Err(CodecError::new(format!("unknown backend `{other}`"))),
        }
    }
}

/// A serialisable description of a detector: everything needed to train it,
/// in one value.
///
/// Configs compile heterogeneous pipeline × learner combinations into the
/// single [`Detector`] contract: `config.fit(&train, seed)` returns a
/// `Box<dyn Detector>` regardless of which of the twelve combinations was
/// requested.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Which pipeline family to build.
    pub kind: DetectorKind,
    /// Which base learner to train.
    pub backend: DetectorBackend,
    /// Ensemble size (used by [`DetectorKind::Trusted`] only).
    pub num_estimators: usize,
    /// Optional PCA dimensionality reduction in the front end.
    pub pca_components: Option<usize>,
    /// Entropy threshold of the rejection policy (ignored by
    /// [`DetectorKind::Untrusted`], which never escalates).
    pub entropy_threshold: f64,
}

impl DetectorConfig {
    /// A trusted-pipeline config with the paper's defaults (25 base
    /// classifiers, no PCA, threshold 0.4).
    pub fn trusted(backend: DetectorBackend) -> DetectorConfig {
        DetectorConfig {
            kind: DetectorKind::Trusted,
            backend,
            num_estimators: 25,
            pca_components: None,
            entropy_threshold: 0.4,
        }
    }

    /// A conventional black-box config.
    pub fn untrusted(backend: DetectorBackend) -> DetectorConfig {
        DetectorConfig {
            kind: DetectorKind::Untrusted,
            ..DetectorConfig::trusted(backend)
        }
    }

    /// A Platt confidence-baseline config.
    pub fn platt(backend: DetectorBackend) -> DetectorConfig {
        DetectorConfig {
            kind: DetectorKind::PlattBaseline,
            ..DetectorConfig::trusted(backend)
        }
    }

    /// Sets the ensemble size.
    #[must_use]
    pub fn with_num_estimators(mut self, n: usize) -> Self {
        self.num_estimators = n;
        self
    }

    /// Enables PCA reduction to `components` dimensions.
    #[must_use]
    pub fn with_pca(mut self, components: usize) -> Self {
        self.pca_components = Some(components);
        self
    }

    /// Sets the rejection policy's entropy threshold.
    #[must_use]
    pub fn with_entropy_threshold(mut self, threshold: f64) -> Self {
        self.entropy_threshold = threshold;
        self
    }

    /// Trains the configured detector.
    ///
    /// # Errors
    ///
    /// Propagates training failures — notably the SVM convergence failure the
    /// paper reports on bootstrapped HPC data.
    pub fn fit(&self, train: &Dataset, seed: u64) -> Result<Box<dyn Detector>, MlError> {
        match &self.backend {
            DetectorBackend::DecisionTree(p) => self.fit_backend(p.clone(), train, seed),
            DetectorBackend::RandomForest(p) => self.fit_backend(p.clone(), train, seed),
            DetectorBackend::LogisticRegression(p) => self.fit_backend(p.clone(), train, seed),
            DetectorBackend::LinearSvm(p) => self.fit_backend(p.clone(), train, seed),
        }
    }

    /// Refits the configured pipeline on a window of recent rows — the
    /// retrain entry point of the closed serving loop.
    ///
    /// The borrowed `window` (any stride-aware row view: a sliding buffer,
    /// a matrix slice) is materialised into one owned [`Dataset`], so the
    /// fast-fit trainer's per-dataset derived caches (`columnar()` column
    /// gathers and `presorted_rows()` sort orders) are built lazily **once**
    /// and shared across every estimator of the ensemble, exactly as in
    /// [`DetectorConfig::fit`]. The result is bit-identical to a from-scratch
    /// `fit` on the same rows, labels and seed.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::Data`] when `labels.len()` does not match the
    /// window's row count, and propagates training failures like
    /// [`DetectorConfig::fit`].
    pub fn refit_on_window(
        &self,
        window: &RowsView<'_>,
        labels: &[Label],
        seed: u64,
    ) -> Result<Box<dyn Detector>, MlError> {
        let train = Dataset::new(window.to_matrix(), labels.to_vec())?;
        self.fit(&train, seed)
    }

    fn fit_backend<E>(
        &self,
        base: E,
        train: &Dataset,
        seed: u64,
    ) -> Result<Box<dyn Detector>, MlError>
    where
        E: Estimator,
        E::Model: Classifier + ModelTag + JsonCodec + Clone + 'static,
    {
        let mut builder = TrustedHmdBuilder::new(base)
            .with_num_estimators(self.num_estimators)
            .with_entropy_threshold(self.entropy_threshold);
        if let Some(components) = self.pca_components {
            builder = builder.with_pca(components);
        }
        Ok(match self.kind {
            DetectorKind::Trusted => Box::new(builder.fit(train, seed)?),
            DetectorKind::Untrusted => Box::new(builder.fit_untrusted(train, seed)?),
            DetectorKind::PlattBaseline => Box::new(builder.fit_platt(train, seed)?),
        })
    }
}

impl JsonCodec for DetectorConfig {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("kind", Json::Str(self.kind.tag().to_string())),
            ("backend", self.backend.to_json()),
            ("num_estimators", self.num_estimators.to_json()),
            ("pca_components", self.pca_components.to_json()),
            ("entropy_threshold", self.entropy_threshold.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<DetectorConfig, CodecError> {
        Ok(DetectorConfig {
            kind: DetectorKind::from_tag(json.get("kind")?.as_str()?)?,
            backend: DetectorBackend::from_json(json.get("backend")?)?,
            num_estimators: usize::from_json(json.get("num_estimators")?)?,
            pca_components: Option::<usize>::from_json(json.get("pca_components")?)?,
            entropy_threshold: f64::from_json(json.get("entropy_threshold")?)?,
        })
    }
}

/// Errors of the persistence layer.
///
/// Marked `#[non_exhaustive]`: the fleet layer can introduce new failure
/// modes (endpoint registry, version conflicts) without breaking downstream
/// matches.
#[derive(Debug)]
#[non_exhaustive]
pub enum DetectorError {
    /// The detector implementation does not support persistence.
    Unsupported {
        /// Name of the offending detector.
        name: String,
    },
    /// The document was syntactically or structurally invalid.
    Codec(CodecError),
    /// The document carries an unknown format or version tag.
    Format {
        /// Explanation.
        message: String,
    },
    /// Reading or writing the file failed.
    Io(std::io::Error),
}

impl fmt::Display for DetectorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectorError::Unsupported { name } => {
                write!(f, "detector `{name}` does not support persistence")
            }
            DetectorError::Codec(err) => write!(f, "{err}"),
            DetectorError::Format { message } => write!(f, "format error: {message}"),
            DetectorError::Io(err) => write!(f, "io error: {err}"),
        }
    }
}

impl std::error::Error for DetectorError {}

impl From<CodecError> for DetectorError {
    fn from(err: CodecError) -> DetectorError {
        DetectorError::Codec(err)
    }
}

impl From<std::io::Error> for DetectorError {
    fn from(err: std::io::Error) -> DetectorError {
        DetectorError::Io(err)
    }
}

/// Serialises a fitted detector to its JSON document.
///
/// # Errors
///
/// Returns [`DetectorError::Unsupported`] for detector implementations
/// without persistence support.
pub fn save(detector: &dyn Detector) -> Result<String, DetectorError> {
    match detector.to_saved_json() {
        Some(json) => Ok(json.to_string()),
        None => Err(DetectorError::Unsupported {
            name: detector.name(),
        }),
    }
}

/// Restores a detector saved by [`save`]. The restored pipeline produces
/// bit-identical reports.
///
/// # Errors
///
/// Returns a [`DetectorError`] when the document is malformed, carries an
/// unknown format/version/kind/backend tag, or describes an inconsistent
/// model.
pub fn load(text: &str) -> Result<Box<dyn Detector>, DetectorError> {
    let json = Json::parse(text)?;
    let format = json.get("format")?.as_str()?.to_string();
    if format != FORMAT {
        return Err(DetectorError::Format {
            message: format!("expected format `{FORMAT}`, found `{format}`"),
        });
    }
    let version = json.get("version")?.as_i64()?;
    if version != VERSION {
        return Err(DetectorError::Format {
            message: format!("unsupported version {version} (supported: {VERSION})"),
        });
    }
    let kind = DetectorKind::from_tag(json.get("kind")?.as_str()?)?;
    let backend = json.get("backend")?.as_str()?.to_string();
    let model = json.get("model")?;

    fn restore<M>(kind: DetectorKind, model: &Json) -> Result<Box<dyn Detector>, DetectorError>
    where
        M: Classifier + ModelTag + JsonCodec + Clone + 'static,
    {
        Ok(match kind {
            DetectorKind::Trusted => Box::new(TrustedHmd::<M>::from_json(model)?),
            DetectorKind::Untrusted => Box::new(UntrustedHmd::<M>::from_json(model)?),
            DetectorKind::PlattBaseline => Box::new(PlattHmd::<M>::from_json(model)?),
        })
    }

    match backend.as_str() {
        t if t == DecisionTree::TAG => restore::<DecisionTree>(kind, model),
        t if t == RandomForest::TAG => restore::<RandomForest>(kind, model),
        t if t == LogisticRegression::TAG => restore::<LogisticRegression>(kind, model),
        t if t == LinearSvm::TAG => restore::<LinearSvm>(kind, model),
        other => Err(DetectorError::Format {
            message: format!("unknown backend `{other}`"),
        }),
    }
}

/// Saves a fitted detector to a file.
///
/// # Errors
///
/// Propagates serialisation and I/O failures.
pub fn save_to_file(detector: &dyn Detector, path: impl AsRef<Path>) -> Result<(), DetectorError> {
    let text = save(detector)?;
    std::fs::write(path, text)?;
    Ok(())
}

/// Loads a detector from a file written by [`save_to_file`].
///
/// # Errors
///
/// Propagates I/O, parse and format failures.
pub fn load_from_file(path: impl AsRef<Path>) -> Result<Box<dyn Detector>, DetectorError> {
    let text = std::fs::read_to_string(path)?;
    load(&text)
}
