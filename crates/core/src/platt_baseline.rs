//! The Platt-scaling confidence baseline (Chawla et al.).
//!
//! Prior work estimated prediction confidence by passing a single
//! classifier's decision value through a Platt-scaled sigmoid and treating
//! the output probability as the model's confidence. The paper argues this is
//! misleading: a point estimate pushed through a logistic function can be
//! arbitrarily confident on inputs the model knows nothing about. This module
//! implements the baseline so the ablation benchmarks can compare it against
//! the ensemble-entropy estimator.

use crate::entropy::binary_entropy;
use crate::estimator::UncertainPrediction;
use crate::rejection::{RejectionCurve, RejectionPoint};
use crate::trusted::{
    preprocess_row, single_model_reports, validate_widths, Decision, DetectionReport,
};
use hmd_codec::{CodecError, Json, JsonCodec};
use hmd_data::scaler::StandardScaler;
use hmd_data::{Dataset, Label};
use hmd_ml::pca::Pca;
use hmd_ml::{Classifier, MlError};
use serde::{Deserialize, Serialize};

/// A single prediction of the confidence baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidencePrediction {
    /// Predicted label.
    pub label: Label,
    /// Calibrated malware probability.
    pub malware_probability: f64,
    /// Confidence: `max(p, 1 - p)`, the probability assigned to the predicted
    /// class.
    pub confidence: f64,
}

/// Confidence-based rejector built on any probabilistic classifier.
///
/// Predictions whose confidence falls below a threshold are rejected. The
/// classifier is typically a Platt-calibrated SVM or a logistic regression —
/// anything whose [`Classifier::predict_proba_one`] is meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct PlattConfidenceBaseline<M> {
    model: M,
}

impl<M: Classifier> PlattConfidenceBaseline<M> {
    /// Wraps a trained probabilistic classifier.
    pub fn new(model: M) -> PlattConfidenceBaseline<M> {
        PlattConfidenceBaseline { model }
    }

    /// The wrapped classifier.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Predicts one input with its confidence.
    pub fn predict_with_confidence(&self, features: &[f64]) -> ConfidencePrediction {
        let p = self.model.predict_proba_one(features).clamp(0.0, 1.0);
        ConfidencePrediction {
            label: Label::from(p >= 0.5),
            malware_probability: p,
            confidence: p.max(1.0 - p),
        }
    }

    /// Predictions for every sample of a dataset.
    pub fn predict_dataset(&self, dataset: &Dataset) -> Vec<ConfidencePrediction> {
        dataset
            .features()
            .iter_rows()
            .map(|row| self.predict_with_confidence(row))
            .collect()
    }

    /// Fraction of predictions whose confidence is below `threshold`.
    pub fn rejection_rate(predictions: &[ConfidencePrediction], threshold: f64) -> f64 {
        if predictions.is_empty() {
            return 0.0;
        }
        predictions
            .iter()
            .filter(|p| p.confidence < threshold)
            .count() as f64
            / predictions.len() as f64
    }

    /// Known/unknown rejection curve over confidence thresholds, shaped like
    /// the entropy-based [`RejectionCurve`] so the two can be compared
    /// directly in the ablation benchmarks.
    pub fn rejection_curve(
        model_name: impl Into<String>,
        known: &[ConfidencePrediction],
        unknown: &[ConfidencePrediction],
        confidence_thresholds: &[f64],
    ) -> RejectionCurve {
        let points = confidence_thresholds
            .iter()
            .map(|&threshold| RejectionPoint {
                threshold,
                known_rejected_pct: 100.0 * Self::rejection_rate(known, threshold),
                unknown_rejected_pct: 100.0 * Self::rejection_rate(unknown, threshold),
            })
            .collect();
        RejectionCurve {
            model_name: model_name.into(),
            points,
        }
    }
}

/// The confidence baseline as a full end-to-end pipeline: scaling → optional
/// PCA → one probabilistic classifier → confidence-driven accept/escalate
/// decision.
///
/// This is the deployable counterpart of [`PlattConfidenceBaseline`], shaped
/// like [`crate::trusted::TrustedHmd`] so all three detector families serve
/// behind the unified [`crate::detector::Detector`] API. The reported
/// "entropy" is the binary entropy `H(p)` of the model's malware
/// probability — monotone in the classical confidence `max(p, 1-p)`, so an
/// entropy threshold is exactly equivalent to a confidence threshold while
/// staying comparable with the ensemble estimator's numbers.
///
/// Calibration lives in the base learner: the linear SVM Platt-scales its
/// decision values by default, logistic regression is inherently
/// probabilistic, and tree learners emit near-binary leaf fractions (making
/// them a deliberately poor confidence baseline — the paper's criticism).
#[derive(Debug, Clone, PartialEq)]
pub struct PlattHmd<M> {
    scaler: StandardScaler,
    pca: Option<Pca>,
    model: M,
    entropy_threshold: f64,
}

impl<M: Classifier> PlattHmd<M> {
    pub(crate) fn from_parts(
        scaler: StandardScaler,
        pca: Option<Pca>,
        model: M,
        entropy_threshold: f64,
    ) -> PlattHmd<M> {
        PlattHmd {
            scaler,
            pca,
            model,
            entropy_threshold,
        }
    }

    /// The wrapped classifier.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The entropy threshold above which predictions escalate.
    pub fn entropy_threshold(&self) -> f64 {
        self.entropy_threshold
    }

    /// Builds the report from the model's raw malware probability. The
    /// confidence baseline derives everything — label included — from that
    /// probability, so batch scoring only needs the probability channel.
    fn report_for_proba(&self, raw_proba: f64) -> DetectionReport {
        let p = raw_proba.clamp(0.0, 1.0);
        let prediction = UncertainPrediction {
            label: Label::from(p >= 0.5),
            malware_vote_fraction: p,
            entropy: binary_entropy(p),
            num_estimators: 1,
        };
        let decision = if prediction.entropy > self.entropy_threshold {
            Decision::Escalate
        } else {
            Decision::Accept(prediction.label)
        };
        DetectionReport {
            prediction,
            decision,
        }
    }

    /// Runs one raw (unscaled) signature through the pipeline.
    ///
    /// # Errors
    ///
    /// Returns an error when the feature vector has the wrong length.
    pub fn detect(&self, features: &[f64]) -> Result<DetectionReport, MlError> {
        let processed = preprocess_row(&self.scaler, &self.pca, features)?;
        Ok(self.report_for_proba(self.model.predict_proba_one(&processed)))
    }

    /// Runs a borrowed view of raw signature rows through the pipeline: one
    /// front end pass, one batch walk of the classifier (flat engine for tree
    /// backends), then the confidence decision per row.
    ///
    /// # Errors
    ///
    /// Returns an error when the batch's feature count does not match the
    /// training data.
    pub fn detect_batch<'a>(
        &self,
        batch: impl Into<hmd_data::RowsView<'a>>,
    ) -> Result<Vec<DetectionReport>, MlError> {
        single_model_reports(
            &self.scaler,
            &self.pca,
            &self.model,
            batch.into(),
            |(_, proba)| self.report_for_proba(proba),
        )
    }
}

impl<M: Classifier + JsonCodec> JsonCodec for PlattHmd<M> {
    fn to_json(&self) -> Json {
        Json::object(vec![
            ("scaler", self.scaler.to_json()),
            ("pca", self.pca.to_json()),
            ("model", self.model.to_json()),
            ("entropy_threshold", self.entropy_threshold.to_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<PlattHmd<M>, CodecError> {
        let scaler = StandardScaler::from_json(json.get("scaler")?)?;
        let pca = Option::<Pca>::from_json(json.get("pca")?)?;
        let model = M::from_json(json.get("model")?)?;
        validate_widths(&scaler, &pca, model.input_width(), "platt pipeline")?;
        Ok(PlattHmd {
            scaler,
            pca,
            model,
            entropy_threshold: f64::from_json(json.get("entropy_threshold")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Matrix;
    use hmd_ml::logistic::LogisticRegressionParams;
    use hmd_ml::Estimator;

    fn trained_baseline() -> PlattConfidenceBaseline<hmd_ml::logistic::LogisticRegression> {
        let x = Matrix::from_rows(&[
            vec![-2.0],
            vec![-1.5],
            vec![-1.0],
            vec![1.0],
            vec![1.5],
            vec![2.0],
        ])
        .unwrap();
        let y = vec![
            Label::Benign,
            Label::Benign,
            Label::Benign,
            Label::Malware,
            Label::Malware,
            Label::Malware,
        ];
        let train = Dataset::new(x, y).unwrap();
        let model = LogisticRegressionParams::new()
            .with_epochs(800)
            .fit(&train, 0)
            .unwrap();
        PlattConfidenceBaseline::new(model)
    }

    #[test]
    fn confidence_is_probability_of_predicted_class() {
        let baseline = trained_baseline();
        let p = baseline.predict_with_confidence(&[2.5]);
        assert_eq!(p.label, Label::Malware);
        assert!((p.confidence - p.malware_probability).abs() < 1e-12);
        let n = baseline.predict_with_confidence(&[-2.5]);
        assert_eq!(n.label, Label::Benign);
        assert!((n.confidence - (1.0 - n.malware_probability)).abs() < 1e-12);
        assert!(p.confidence >= 0.5 && n.confidence >= 0.5);
    }

    #[test]
    fn irrationally_confident_far_from_training_data() {
        // The paper's criticism: a logistic point estimate is MORE confident
        // the further the input lies along the decision direction, even when
        // the input is nothing like the training data.
        let baseline = trained_baseline();
        let near = baseline.predict_with_confidence(&[2.0]).confidence;
        let far = baseline.predict_with_confidence(&[50.0]).confidence;
        assert!(
            far >= near,
            "far-away confidence {far} should not drop below {near}"
        );
        assert!(far > 0.95);
    }

    #[test]
    fn rejection_rate_counts_low_confidence_predictions() {
        let predictions = vec![
            ConfidencePrediction {
                label: Label::Benign,
                malware_probability: 0.45,
                confidence: 0.55,
            },
            ConfidencePrediction {
                label: Label::Malware,
                malware_probability: 0.95,
                confidence: 0.95,
            },
        ];
        type B = PlattConfidenceBaseline<hmd_ml::logistic::LogisticRegression>;
        assert_eq!(B::rejection_rate(&predictions, 0.6), 0.5);
        assert_eq!(B::rejection_rate(&predictions, 0.5), 0.0);
        assert_eq!(B::rejection_rate(&[], 0.9), 0.0);
    }

    #[test]
    fn rejection_curve_has_one_point_per_threshold() {
        let baseline = trained_baseline();
        let known_ds = Dataset::new(
            Matrix::from_rows(&[vec![-2.0], vec![2.0]]).unwrap(),
            vec![Label::Benign, Label::Malware],
        )
        .unwrap();
        let known = baseline.predict_dataset(&known_ds);
        let unknown = baseline.predict_dataset(&known_ds);
        let curve =
            PlattConfidenceBaseline::<hmd_ml::logistic::LogisticRegression>::rejection_curve(
                "platt",
                &known,
                &unknown,
                &[0.5, 0.7, 0.9, 0.99],
            );
        assert_eq!(curve.points.len(), 4);
        assert_eq!(curve.model_name, "platt");
    }
}
