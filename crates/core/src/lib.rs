//! Online ensemble-based uncertainty estimation for trustworthy hardware
//! malware detectors — the primary contribution of the reproduced paper.
//!
//! A conventional ("untrusted") HMD feeds a hardware signature through
//! feature scaling, optional dimensionality reduction and a black-box
//! classifier, and always emits a binary benign/malware verdict. The paper
//! adds an **uncertainty estimator** on top of a bagging ensemble: the
//! frequency distribution of the base classifiers' votes approximates the
//! predictive posterior (Eq. 3), and its Shannon entropy (Eq. 4) quantifies
//! how much the model actually knows about the input. Predictions whose
//! entropy exceeds a threshold are *rejected* instead of trusted.
//!
//! The crate provides:
//!
//! * [`entropy`] — entropy of vote distributions,
//! * [`estimator::EnsembleUncertaintyEstimator`] — the uncertainty estimator
//!   wrapped around any [`hmd_ml::bagging::BaggingEnsemble`],
//! * [`rejection`] — rejection policies, threshold sweeps (Fig. 7a/9b) and
//!   accepted-F1 curves (Fig. 7b),
//! * [`analysis`] — entropy-distribution summaries (the boxplots of
//!   Figs. 4–5) and latent-space overlap scores (Fig. 8),
//! * [`trusted`] — the end-to-end [`trusted::TrustedHmd`] pipeline and its
//!   [`trusted::UntrustedHmd`] baseline,
//! * [`platt_baseline`] — the Platt-scaling confidence baseline the paper
//!   argues against.
//!
//! # Example
//!
//! ```
//! use hmd_core::estimator::EnsembleUncertaintyEstimator;
//! use hmd_data::{Dataset, Label, Matrix};
//! use hmd_ml::bagging::BaggingParams;
//! use hmd_ml::tree::DecisionTreeParams;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let x = Matrix::from_rows(&[
//!     vec![0.1, 0.1], vec![0.2, 0.3], vec![0.9, 0.8], vec![0.8, 0.9],
//! ])?;
//! let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
//! let train = Dataset::new(x, y)?;
//! let ensemble = BaggingParams::new(DecisionTreeParams::new())
//!     .with_num_estimators(15)
//!     .fit(&train, 7)?;
//! let estimator = EnsembleUncertaintyEstimator::new(ensemble);
//!
//! // In-distribution input: confident (low entropy).
//! let confident = estimator.predict_with_uncertainty(&[0.15, 0.2]);
//! // Far-away input: the base classifiers disagree more.
//! let uncertain = estimator.predict_with_uncertainty(&[0.5, 0.55]);
//! assert!(confident.entropy <= uncertain.entropy + 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod entropy;
pub mod estimator;
pub mod platt_baseline;
pub mod rejection;
pub mod trusted;

pub use analysis::EntropySummary;
pub use estimator::{EnsembleUncertaintyEstimator, UncertainPrediction};
pub use rejection::{F1Curve, RejectionCurve, RejectionPolicy};
pub use trusted::{TrustedHmd, TrustedHmdBuilder, UntrustedHmd};
