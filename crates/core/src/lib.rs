//! Online ensemble-based uncertainty estimation for trustworthy hardware
//! malware detectors — the primary contribution of the reproduced paper.
//!
//! A conventional ("untrusted") HMD feeds a hardware signature through
//! feature scaling, optional dimensionality reduction and a black-box
//! classifier, and always emits a binary benign/malware verdict. The paper
//! adds an **uncertainty estimator** on top of a bagging ensemble: the
//! frequency distribution of the base classifiers' votes approximates the
//! predictive posterior (Eq. 3), and its Shannon entropy (Eq. 4) quantifies
//! how much the model actually knows about the input. Predictions whose
//! entropy exceeds a threshold are *rejected* instead of trusted.
//!
//! The crate's public surface is organised around the unified [`detector`]
//! subsystem — one polymorphic, batch-first API that every deployable
//! pipeline serves behind:
//!
//! * [`detector`] — the object-safe [`detector::Detector`] trait (view-first
//!   `detect_rows` over borrowed [`hmd_data::RowsView`] batches, `detect` as
//!   the provided single-window case, ergonomic
//!   [`detector::DetectorExt::detect_batch`]), the serialisable
//!   [`detector::DetectorConfig`] factory (pipeline kind × base learner),
//!   model persistence ([`detector::save`] / [`detector::load`]) and the
//!   [`detector::MonitorSession`] streaming API,
//! * [`trusted`] — the end-to-end [`trusted::TrustedHmd`] pipeline and its
//!   [`trusted::UntrustedHmd`] baseline,
//! * [`platt_baseline`] — the Platt-scaling confidence baseline the paper
//!   argues against, including its deployable
//!   [`platt_baseline::PlattHmd`] pipeline,
//! * [`estimator::EnsembleUncertaintyEstimator`] — the uncertainty estimator
//!   wrapped around any [`hmd_ml::bagging::BaggingEnsemble`],
//! * [`entropy`] — entropy of vote distributions,
//! * [`rejection`] — rejection policies, threshold sweeps (Fig. 7a/9b) and
//!   accepted-F1 curves (Fig. 7b),
//! * [`analysis`] — entropy-distribution summaries (the boxplots of
//!   Figs. 4–5) and latent-space overlap scores (Fig. 8).
//!
//! # Example: config → fit → save → load → batch detect
//!
//! ```
//! use hmd_core::detector::{load, save, DetectorBackend, DetectorConfig, DetectorExt};
//! use hmd_data::{Dataset, Label, Matrix};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let x = Matrix::from_rows(&[
//!     vec![0.1, 0.1], vec![0.2, 0.3], vec![0.9, 0.8], vec![0.8, 0.9],
//! ])?;
//! let y = vec![Label::Benign, Label::Benign, Label::Malware, Label::Malware];
//! let train = Dataset::new(x, y)?;
//!
//! // Describe the pipeline, compile the description into a detector.
//! let config = DetectorConfig::trusted(DetectorBackend::decision_tree())
//!     .with_num_estimators(15)
//!     .with_entropy_threshold(0.4);
//! let detector = config.fit(&train, 7)?;
//!
//! // Train once, serve many times: persist and restore the fitted model.
//! let restored = load(&save(detector.as_ref())?)?;
//!
//! // Batch-first inference: one front-end pass, rows scored in parallel.
//! let batch = Matrix::from_rows(&[vec![0.15, 0.2], vec![0.5, 0.55]])?;
//! let reports = restored.detect_batch(&batch)?;
//! // In-distribution input: confident (low entropy). Far-away input: the
//! // base classifiers disagree more.
//! assert!(reports[0].prediction.entropy <= reports[1].prediction.entropy + 1e-9);
//! assert_eq!(reports, detector.detect_batch(&batch)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod analysis;
pub mod detector;
pub mod entropy;
pub mod estimator;
pub mod platt_baseline;
pub mod rejection;
pub mod trusted;

pub use analysis::EntropySummary;
pub use detector::{
    Detector, DetectorBackend, DetectorConfig, DetectorExt, DetectorKind, MonitorSession,
};
pub use estimator::{EnsembleUncertaintyEstimator, UncertainPrediction};
pub use platt_baseline::PlattHmd;
pub use rejection::{F1Curve, RejectionCurve, RejectionPolicy};
pub use trusted::{DetectionReport, TrustedHmd, TrustedHmdBuilder, UntrustedHmd};
