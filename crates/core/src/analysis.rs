//! Distribution summaries used by the paper's figures: boxplot statistics of
//! entropy distributions (Figs. 4–5) and latent-space class-overlap scores
//! (Fig. 8).

use hmd_data::{Label, Matrix};
use serde::{Deserialize, Serialize};

/// Five-number summary (plus mean) of a set of entropy values — exactly what
/// a boxplot renders.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EntropySummary {
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of values summarised.
    pub count: usize,
}

impl EntropySummary {
    /// Computes the summary of a set of values.
    ///
    /// Returns an all-zero summary for an empty slice.
    pub fn from_values(values: &[f64]) -> EntropySummary {
        if values.is_empty() {
            return EntropySummary {
                min: 0.0,
                q1: 0.0,
                median: 0.0,
                q3: 0.0,
                max: 0.0,
                mean: 0.0,
                count: 0,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        EntropySummary {
            min: sorted[0],
            q1: percentile(&sorted, 0.25),
            median: percentile(&sorted, 0.5),
            q3: percentile(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
            mean,
            count: sorted.len(),
        }
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// Linear-interpolation percentile of an already sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lower = rank.floor() as usize;
    let upper = rank.ceil() as usize;
    let weight = rank - lower as f64;
    sorted[lower] * (1.0 - weight) + sorted[upper] * weight
}

/// The boxplot pair reported for each ensemble in Figs. 4–5: entropy
/// distribution over the known test set vs. over the unknown set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KnownUnknownEntropy {
    /// Summary of entropies on known (in-distribution) data.
    pub known: EntropySummary,
    /// Summary of entropies on unknown (out-of-distribution) data.
    pub unknown: EntropySummary,
}

impl KnownUnknownEntropy {
    /// Builds the pair from raw entropy values.
    pub fn new(known_entropies: &[f64], unknown_entropies: &[f64]) -> KnownUnknownEntropy {
        KnownUnknownEntropy {
            known: EntropySummary::from_values(known_entropies),
            unknown: EntropySummary::from_values(unknown_entropies),
        }
    }

    /// Difference between the unknown and known median entropies. Large
    /// positive gaps reproduce the paper's DVFS finding (unknowns are
    /// detectable); gaps near zero reproduce the HPC finding.
    pub fn median_gap(&self) -> f64 {
        self.unknown.median - self.known.median
    }
}

/// Degree of overlap between the benign and malware classes of an embedded
/// (e.g. t-SNE) dataset, measured as the fraction of samples whose nearest
/// neighbour (other than itself) belongs to the *other* class.
///
/// Values near 0 indicate cleanly separated classes (DVFS, Fig. 8a); values
/// approaching 0.5 indicate heavy overlap (HPC, Fig. 8b).
///
/// # Panics
///
/// Panics if `labels.len()` differs from the number of embedded rows.
pub fn class_overlap_score(embedding: &Matrix, labels: &[Label]) -> f64 {
    assert_eq!(
        embedding.rows(),
        labels.len(),
        "labels must align with the embedding"
    );
    let n = embedding.rows();
    if n < 2 {
        return 0.0;
    }
    let mut cross_class_neighbours = 0usize;
    for i in 0..n {
        let mut best = f64::INFINITY;
        let mut best_j = i;
        for j in 0..n {
            if i == j {
                continue;
            }
            let d: f64 = embedding
                .row(i)
                .iter()
                .zip(embedding.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d < best {
                best = d;
                best_j = j;
            }
        }
        if labels[i] != labels[best_j] {
            cross_class_neighbours += 1;
        }
    }
    cross_class_neighbours as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_matches_hand_computation() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = EntropySummary::from_values(&values);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.count, 5);
        assert_eq!(s.iqr(), 2.0);
    }

    #[test]
    fn summary_handles_degenerate_inputs() {
        let empty = EntropySummary::from_values(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0.0);
        let single = EntropySummary::from_values(&[0.7]);
        assert_eq!(single.median, 0.7);
        assert_eq!(single.q1, 0.7);
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = EntropySummary::from_values(&[0.3, 0.9, 0.1, 0.5]);
        let b = EntropySummary::from_values(&[0.9, 0.1, 0.5, 0.3]);
        assert_eq!(a, b);
    }

    #[test]
    fn median_gap_reflects_separation() {
        let pair = KnownUnknownEntropy::new(&[0.1, 0.2, 0.15], &[0.8, 0.9, 0.85]);
        assert!(pair.median_gap() > 0.6);
        let flat = KnownUnknownEntropy::new(&[0.5, 0.6], &[0.55, 0.62]);
        assert!(flat.median_gap().abs() < 0.1);
    }

    #[test]
    fn overlap_score_detects_separated_and_mixed_classes() {
        // Separated: benign near origin, malware far away.
        let separated = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
        ])
        .unwrap();
        let labels = [Label::Benign, Label::Benign, Label::Malware, Label::Malware];
        assert_eq!(class_overlap_score(&separated, &labels), 0.0);

        // Interleaved: nearest neighbour is always the other class.
        let mixed = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.2, 0.0],
            vec![0.3, 0.0],
        ])
        .unwrap();
        let labels = [Label::Benign, Label::Malware, Label::Benign, Label::Malware];
        assert_eq!(class_overlap_score(&mixed, &labels), 1.0);
    }

    #[test]
    fn overlap_score_of_tiny_inputs_is_zero() {
        let single = Matrix::from_rows(&[vec![1.0]]).unwrap();
        assert_eq!(class_overlap_score(&single, &[Label::Benign]), 0.0);
    }

    #[test]
    #[should_panic(expected = "align")]
    fn overlap_score_checks_label_count() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0]]).unwrap();
        let _ = class_overlap_score(&m, &[Label::Benign]);
    }
}
