//! Perturbation-bounded black-box evasion search against a fitted detector.
//!
//! The attacker holds a malware signature and query access to the deployed
//! detector (its reports expose the ensemble's malware vote fraction — the
//! approximate posterior of the paper's Eq. 3). Within an L∞ ball around the
//! original signature, [`evade`] runs a greedy per-feature coordinate search
//! that walks each feature toward whichever direction lowers the malware
//! vote fraction — per-feature threshold crossing, which is exactly the
//! attack surface of axis-aligned tree ensembles.
//!
//! The point of the experiment is the paper's trustworthiness claim: a
//! successful evasion flips the *accepted label*, but to do so it typically
//! drags the signature into the region where base classifiers disagree — so
//! an uncertainty-aware pipeline escalates it instead of trusting the flipped
//! label. [`EvasionSummary::escalated_evasions`] measures exactly that.

use crate::ThreatError;
use hmd_core::detector::Detector;
use hmd_core::trusted::{Decision, DetectionReport};
use hmd_data::Label;

/// The attacker's perturbation budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvasionBudget {
    /// Per-feature L∞ radius, relative to the feature's magnitude: feature
    /// `j` may move within `±linf · max(1, |x[j]|)` of its original value.
    /// The `max(1, ·)` floor keeps near-zero features perturbable.
    pub linf: f64,
    /// Number of greedy coordinate passes over the feature vector.
    pub passes: usize,
}

impl EvasionBudget {
    /// A budget with the given relative L∞ radius and 3 greedy passes.
    ///
    /// # Errors
    ///
    /// Returns [`ThreatError::InvalidParameter`] when `linf` is negative or
    /// not finite.
    pub fn new(linf: f64) -> Result<EvasionBudget, ThreatError> {
        if !linf.is_finite() || linf < 0.0 {
            return Err(ThreatError::InvalidParameter {
                name: "linf",
                message: format!("must be finite and non-negative, got {linf}"),
            });
        }
        Ok(EvasionBudget { linf, passes: 3 })
    }

    /// Sets the number of greedy passes.
    #[must_use]
    pub fn with_passes(mut self, passes: usize) -> EvasionBudget {
        self.passes = passes;
        self
    }
}

/// The outcome of one per-row evasion search.
#[derive(Debug, Clone)]
pub struct EvasionOutcome {
    /// The perturbed signature the search settled on.
    pub adversarial: Vec<f64>,
    /// The detector's report on the original signature.
    pub before: DetectionReport,
    /// The detector's report on the perturbed signature.
    pub after: DetectionReport,
}

impl EvasionOutcome {
    /// `true` when the search flipped a detected malware row to a benign
    /// *prediction* (the raw-accuracy view, ignoring escalation).
    pub fn evaded_prediction(&self) -> bool {
        self.before.prediction.label == Label::Malware
            && self.after.prediction.label == Label::Benign
    }

    /// `true` when the evasion actually wins end to end: the perturbed row is
    /// *accepted* as benign. An escalated row is not a successful evasion —
    /// the rejection option caught it.
    pub fn evaded_decision(&self) -> bool {
        self.after.decision == Decision::Accept(Label::Benign)
            && self.before.prediction.label == Label::Malware
    }

    /// `true` when the rejection option caught the evasion: the predicted
    /// label flipped to benign but the decision escalated instead of
    /// accepting it.
    pub fn caught_by_escalation(&self) -> bool {
        self.evaded_prediction() && self.after.decision == Decision::Escalate
    }
}

/// Aggregate results of an evasion sweep over many malware rows.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvasionSummary {
    /// Malware rows attacked (rows the detector originally called malware).
    pub attacked: usize,
    /// Rows whose *prediction* flipped to benign within the budget.
    pub flipped_predictions: usize,
    /// Flipped rows the detector nevertheless escalated (caught).
    pub escalated_evasions: usize,
    /// Flipped rows accepted as benign (the end-to-end evasion wins).
    pub accepted_evasions: usize,
}

impl EvasionSummary {
    /// Fraction of attacked rows whose prediction flipped (raw-accuracy
    /// evasion rate). Zero when nothing was attacked.
    pub fn flip_rate(&self) -> f64 {
        ratio(self.flipped_predictions, self.attacked)
    }

    /// Fraction of flipped rows the escalation option caught.
    pub fn caught_fraction(&self) -> f64 {
        ratio(self.escalated_evasions, self.flipped_predictions)
    }

    /// Fraction of attacked rows accepted as benign end to end.
    pub fn accepted_rate(&self) -> f64 {
        ratio(self.accepted_evasions, self.attacked)
    }
}

fn ratio(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

/// Runs the bounded black-box evasion search for one signature.
///
/// The search has two stages, both confined to the relative L∞ ball:
///
/// 1. **Line probes.** Pure per-coordinate moves plateau against bagged
///    ensembles — flipping one feature rarely flips any base learner's
///    majority, so the vote fraction gives no gradient. The probe stage
///    therefore walks the two diagonal rays toward the ball's all-low and
///    all-high corners at increasing fractions of the budget and seeds the
///    search at the probe with the lowest malware vote fraction.
/// 2. **Greedy coordinate refinement.** Each pass walks the features in
///    order, probing one step in both directions (step halving per pass)
///    and keeping strict vote-fraction improvements — per-feature threshold
///    crossing against the ensemble's axis-aligned splits. The search stops
///    early once the prediction flips to benign.
///
/// # Errors
///
/// Propagates detector inference failures.
pub fn evade(
    detector: &dyn Detector,
    features: &[f64],
    budget: &EvasionBudget,
) -> Result<EvasionOutcome, ThreatError> {
    let before = detector.detect(features)?;
    let mut adversarial = features.to_vec();
    let mut current = before;
    if before.prediction.label == Label::Malware && budget.linf > 0.0 {
        let radius: Vec<f64> = features
            .iter()
            .map(|x| budget.linf * x.abs().max(1.0))
            .collect();

        // Stage 1: diagonal line probes toward the two extreme corners.
        'probes: for direction in [-1.0, 1.0] {
            for t in [0.25, 0.5, 0.75, 1.0] {
                let candidate: Vec<f64> = features
                    .iter()
                    .zip(radius.iter())
                    .map(|(x, r)| x + direction * t * r)
                    .collect();
                let report = detector.detect(&candidate)?;
                if report.prediction.malware_vote_fraction
                    < current.prediction.malware_vote_fraction
                {
                    current = report;
                    adversarial = candidate;
                }
                if current.prediction.label == Label::Benign {
                    break 'probes;
                }
            }
        }

        // Stage 2: greedy coordinate refinement from the best probe.
        if current.prediction.label == Label::Malware {
            'passes: for pass in 0..budget.passes {
                let mut improved = false;
                let step_scale = 1.0 / f64::powi(2.0, pass.min(8) as i32);
                for j in 0..adversarial.len() {
                    let lo = features[j] - radius[j];
                    let hi = features[j] + radius[j];
                    let step = step_scale * radius[j];
                    let saved = adversarial[j];
                    let mut best = current;
                    let mut best_value = saved;
                    for candidate in [saved - step, saved + step] {
                        let clamped = candidate.clamp(lo, hi);
                        if clamped == saved {
                            continue;
                        }
                        adversarial[j] = clamped;
                        let report = detector.detect(&adversarial)?;
                        if report.prediction.malware_vote_fraction
                            < best.prediction.malware_vote_fraction
                        {
                            best = report;
                            best_value = clamped;
                        }
                    }
                    adversarial[j] = best_value;
                    if best_value != saved {
                        improved = true;
                        current = best;
                    }
                    if current.prediction.label == Label::Benign {
                        break 'passes;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
    }
    let after = detector.detect(&adversarial)?;
    Ok(EvasionOutcome {
        adversarial,
        before,
        after,
    })
}

/// Runs [`evade`] over a batch of signatures and aggregates the results.
///
/// Only rows the detector originally predicts as malware are counted as
/// attacked; rows it already misclassifies need no evasion.
///
/// # Errors
///
/// Propagates detector inference failures.
pub fn evade_batch(
    detector: &dyn Detector,
    rows: &[Vec<f64>],
    budget: &EvasionBudget,
) -> Result<(EvasionSummary, Vec<EvasionOutcome>), ThreatError> {
    let mut summary = EvasionSummary::default();
    let mut outcomes = Vec::with_capacity(rows.len());
    for row in rows {
        let outcome = evade(detector, row, budget)?;
        if outcome.before.prediction.label == Label::Malware {
            summary.attacked += 1;
            if outcome.evaded_prediction() {
                summary.flipped_predictions += 1;
            }
            if outcome.caught_by_escalation() {
                summary.escalated_evasions += 1;
            }
            if outcome.evaded_decision() {
                summary.accepted_evasions += 1;
            }
        }
        outcomes.push(outcome);
    }
    Ok((summary, outcomes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_core::detector::{DetectorBackend, DetectorConfig};
    use hmd_data::{Dataset, Matrix};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two well-separated clusters with a soft boundary: benign near 0.2,
    /// malware near 0.8, in 4 dimensions.
    fn toy_training_set() -> Dataset {
        let mut rng = StdRng::seed_from_u64(11);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..120 {
            let malware = i % 2 == 0;
            let center = if malware { 0.8 } else { 0.2 };
            rows.push(
                (0..4)
                    .map(|_| center + rng.gen_range(-0.15..=0.15))
                    .collect::<Vec<f64>>(),
            );
            labels.push(Label::from(malware));
        }
        Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
    }

    #[test]
    fn budget_validation_rejects_bad_radii() {
        assert!(EvasionBudget::new(-0.1).is_err());
        assert!(EvasionBudget::new(f64::NAN).is_err());
        assert!(EvasionBudget::new(0.0).is_ok());
    }

    #[test]
    fn zero_budget_changes_nothing() {
        let train = toy_training_set();
        let detector = DetectorConfig::trusted(DetectorBackend::decision_tree())
            .with_num_estimators(9)
            .fit(&train, 3)
            .unwrap();
        let row = vec![0.8, 0.8, 0.8, 0.8];
        let budget = EvasionBudget::new(0.0).unwrap();
        let outcome = evade(detector.as_ref(), &row, &budget).unwrap();
        assert_eq!(outcome.adversarial, row);
        assert!(!outcome.evaded_prediction());
    }

    #[test]
    fn large_budget_flips_a_forest_prediction() {
        let train = toy_training_set();
        let detector = DetectorConfig::trusted(DetectorBackend::random_forest())
            .with_num_estimators(9)
            .fit(&train, 3)
            .unwrap();
        // A clearly-malware row; a generous budget reaches the benign region.
        let row = vec![0.8, 0.8, 0.8, 0.8];
        let budget = EvasionBudget::new(1.0).unwrap().with_passes(4);
        let outcome = evade(detector.as_ref(), &row, &budget).unwrap();
        assert!(
            outcome.evaded_prediction(),
            "after: label {:?} vote {:.3}",
            outcome.after.prediction.label,
            outcome.after.prediction.malware_vote_fraction
        );
        // The perturbation respected the relative L∞ ball.
        for (a, x) in outcome.adversarial.iter().zip(row.iter()) {
            assert!((a - x).abs() <= 1.0 * x.abs().max(1.0) + 1e-12);
        }
    }

    #[test]
    fn batch_summary_counts_are_consistent() {
        let train = toy_training_set();
        let detector = DetectorConfig::trusted(DetectorBackend::decision_tree())
            .with_num_estimators(9)
            .fit(&train, 3)
            .unwrap();
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![0.7 + 0.02 * i as f64; 4]).collect();
        let budget = EvasionBudget::new(0.8).unwrap();
        let (summary, outcomes) = evade_batch(detector.as_ref(), &rows, &budget).unwrap();
        assert_eq!(outcomes.len(), rows.len());
        assert!(summary.attacked <= rows.len());
        assert!(summary.flipped_predictions <= summary.attacked);
        assert_eq!(
            summary.flipped_predictions,
            summary.escalated_evasions + summary.accepted_evasions
        );
        assert!(summary.flip_rate() <= 1.0);
    }
}
