//! Gradual feature drift: the whole signature distribution shifts over time.
//!
//! Drift models environmental change rather than a targeted attack — a
//! firmware update changing governor latencies, thermal throttling, a new
//! co-running service. The drift is a per-feature shift vector scaled by a
//! schedule intensity that grows with the row index:
//!
//! ```text
//! x'ᵢ[j] = xᵢ[j] + intensity(i) · shift[j]
//! ```
//!
//! The closed loop ([`hmd_loop`]'s drift detector) is supposed to flag this
//! before accuracy collapses; `crates/loop/tests/adversarial_loop.rs` and the
//! robustness benchmark drive exactly that scenario.
//!
//! [`hmd_loop`]: ../../hmd_loop/index.html

use crate::ThreatError;
use hmd_data::stream::{CorpusStream, StreamRecord};

/// How the drift intensity ramps with the row index.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DriftSchedule {
    /// Intensity grows linearly from 0 at row 0 to 1 at `full_after`, then
    /// stays at 1.
    Linear {
        /// Row index at which the drift reaches full intensity.
        full_after: usize,
    },
    /// Intensity jumps from 0 to 1 at row `at` (a regime change).
    Step {
        /// First row index with full drift.
        at: usize,
    },
}

impl DriftSchedule {
    /// A linear ramp reaching full intensity at `full_after`.
    ///
    /// `full_after == 0` degenerates to full intensity from the first row.
    pub fn linear(full_after: usize) -> DriftSchedule {
        DriftSchedule::Linear { full_after }
    }

    /// A step change at row `at`.
    pub fn step(at: usize) -> DriftSchedule {
        DriftSchedule::Step { at }
    }

    /// Drift intensity in `[0, 1]` for the given row index.
    pub fn intensity(&self, row: usize) -> f64 {
        match *self {
            DriftSchedule::Linear { full_after } => {
                if full_after == 0 || row >= full_after {
                    1.0
                } else {
                    row as f64 / full_after as f64
                }
            }
            DriftSchedule::Step { at } => {
                if row >= at {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// The gradual-drift attack: a per-feature shift vector plus a schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct GradualDrift {
    shift: Vec<f64>,
    schedule: DriftSchedule,
}

impl GradualDrift {
    /// Builds the drift from an explicit per-feature shift vector.
    ///
    /// # Errors
    ///
    /// Returns [`ThreatError::InvalidParameter`] when the shift vector is
    /// empty or contains non-finite entries.
    pub fn new(shift: Vec<f64>, schedule: DriftSchedule) -> Result<GradualDrift, ThreatError> {
        if shift.is_empty() {
            return Err(ThreatError::InvalidParameter {
                name: "shift",
                message: "shift vector must not be empty".to_string(),
            });
        }
        if shift.iter().any(|v| !v.is_finite()) {
            return Err(ThreatError::InvalidParameter {
                name: "shift",
                message: "shift vector entries must be finite".to_string(),
            });
        }
        Ok(GradualDrift { shift, schedule })
    }

    /// A uniform shift of `magnitude` on every one of `num_features`
    /// features — the simplest whole-distribution drift.
    ///
    /// # Errors
    ///
    /// Propagates [`GradualDrift::new`] validation errors.
    pub fn uniform(
        num_features: usize,
        magnitude: f64,
        schedule: DriftSchedule,
    ) -> Result<GradualDrift, ThreatError> {
        GradualDrift::new(vec![magnitude; num_features], schedule)
    }

    /// The schedule driving the intensity ramp.
    pub fn schedule(&self) -> DriftSchedule {
        self.schedule
    }

    /// Wraps a corpus stream so every row is shifted by the scheduled
    /// intensity at its index (the first wrapped row has index 0).
    ///
    /// # Errors
    ///
    /// Returns [`ThreatError::InvalidParameter`] when the shift width does
    /// not match the stream's feature count.
    pub fn apply<S: CorpusStream>(self, inner: S) -> Result<DriftingStream<S>, ThreatError> {
        if self.shift.len() != inner.num_features() {
            return Err(ThreatError::InvalidParameter {
                name: "shift",
                message: format!(
                    "shift width {} does not match stream width {}",
                    self.shift.len(),
                    inner.num_features()
                ),
            });
        }
        Ok(DriftingStream {
            inner,
            drift: self,
            row: 0,
        })
    }
}

/// A [`CorpusStream`] adaptor applying [`GradualDrift`] to every row.
#[derive(Debug, Clone)]
pub struct DriftingStream<S> {
    inner: S,
    drift: GradualDrift,
    row: usize,
}

impl<S: CorpusStream> Iterator for DriftingStream<S> {
    type Item = StreamRecord;

    fn next(&mut self) -> Option<StreamRecord> {
        let mut record = self.inner.next()?;
        let intensity = self.drift.schedule.intensity(self.row);
        self.row = self.row.wrapping_add(1);
        if intensity > 0.0 {
            for (x, shift) in record.features.iter_mut().zip(self.drift.shift.iter()) {
                *x += intensity * shift;
            }
        }
        Some(record)
    }
}

impl<S: CorpusStream> CorpusStream for DriftingStream<S> {
    fn num_features(&self) -> usize {
        self.inner.num_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::{AppId, Label, SampleMeta};

    struct Ones;

    impl Iterator for Ones {
        type Item = StreamRecord;
        fn next(&mut self) -> Option<StreamRecord> {
            Some(StreamRecord {
                features: vec![1.0, 1.0],
                label: Label::Benign,
                meta: SampleMeta::known(AppId(1)),
            })
        }
    }

    impl CorpusStream for Ones {
        fn num_features(&self) -> usize {
            2
        }
    }

    #[test]
    fn linear_schedule_ramps_and_saturates() {
        let schedule = DriftSchedule::linear(4);
        assert_eq!(schedule.intensity(0), 0.0);
        assert_eq!(schedule.intensity(2), 0.5);
        assert_eq!(schedule.intensity(4), 1.0);
        assert_eq!(schedule.intensity(400), 1.0);
        // Degenerate ramp: immediately full.
        assert_eq!(DriftSchedule::linear(0).intensity(0), 1.0);
    }

    #[test]
    fn step_schedule_is_all_or_nothing() {
        let schedule = DriftSchedule::step(3);
        assert_eq!(schedule.intensity(2), 0.0);
        assert_eq!(schedule.intensity(3), 1.0);
    }

    #[test]
    fn drifting_stream_applies_the_scheduled_shift() {
        let drift = GradualDrift::new(vec![2.0, 0.0], DriftSchedule::linear(2)).unwrap();
        let mut stream = drift.apply(Ones).unwrap();
        let rows: Vec<_> = stream.by_ref().take(3).collect();
        assert_eq!(rows[0].features, vec![1.0, 1.0]);
        assert_eq!(rows[1].features, vec![2.0, 1.0]);
        assert_eq!(rows[2].features, vec![3.0, 1.0]);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(GradualDrift::new(vec![], DriftSchedule::step(0)).is_err());
        assert!(GradualDrift::new(vec![f64::NAN], DriftSchedule::step(0)).is_err());
        let drift = GradualDrift::uniform(3, 1.0, DriftSchedule::step(0)).unwrap();
        assert!(drift.apply(Ones).is_err());
    }
}
