//! Sensor faults: dropout, saturation and stuck-at on selected channels.
//!
//! Hardware telemetry fails in characteristic ways — a counter register
//! reads zero for an interval (dropout), clips at a rail (saturation), or
//! latches its last value permanently (stuck-at). These are *not* attacks on
//! the classifier; they degrade the signal the detector sees, which is
//! exactly the regime where an uncertainty-aware pipeline should escalate
//! rather than guess.
//!
//! Faults are applied per row with a seeded activation probability, so a
//! fault stream is as reproducible as the corpus underneath it. Stuck-at is
//! persistent: once a channel latches, it stays latched for the rest of the
//! stream.

use crate::ThreatError;
use hmd_data::stream::{CorpusStream, StreamRecord};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fault model applied to the selected channels.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SensorFault {
    /// The sensor reads zero for the affected row.
    Dropout,
    /// The sensor clips: readings are clamped to at most `level`.
    Saturation {
        /// The rail the reading clips at.
        level: f64,
    },
    /// The sensor latches the value it had when the fault first fired and
    /// reports it forever after.
    StuckAt,
}

/// A [`CorpusStream`] adaptor injecting a [`SensorFault`] on selected
/// channels with a per-row activation probability.
#[derive(Debug, Clone)]
pub struct SensorFaultStream<S> {
    inner: S,
    fault: SensorFault,
    channels: Vec<usize>,
    probability: f64,
    rng: StdRng,
    /// Latched values per affected channel (stuck-at only).
    latched: Option<Vec<f64>>,
}

impl<S: CorpusStream> SensorFaultStream<S> {
    /// Wraps a stream with a fault on the given channels.
    ///
    /// Every row independently activates the fault with `probability`
    /// (stuck-at activates once and persists). `channels` are the affected
    /// feature indices; pass every index to fault the whole sensor front end.
    ///
    /// # Errors
    ///
    /// Returns [`ThreatError::InvalidParameter`] when `probability` is
    /// outside `[0, 1]`, `channels` is empty or contains an out-of-range
    /// index, or a saturation level is not finite.
    pub fn new(
        inner: S,
        fault: SensorFault,
        channels: Vec<usize>,
        probability: f64,
        seed: u64,
    ) -> Result<SensorFaultStream<S>, ThreatError> {
        if !probability.is_finite() || !(0.0..=1.0).contains(&probability) {
            return Err(ThreatError::InvalidParameter {
                name: "probability",
                message: format!("must be in [0, 1], got {probability}"),
            });
        }
        if channels.is_empty() {
            return Err(ThreatError::InvalidParameter {
                name: "channels",
                message: "at least one affected channel is required".to_string(),
            });
        }
        let width = inner.num_features();
        if let Some(&bad) = channels.iter().find(|&&c| c >= width) {
            return Err(ThreatError::InvalidParameter {
                name: "channels",
                message: format!("channel {bad} out of range for {width} features"),
            });
        }
        if let SensorFault::Saturation { level } = fault {
            if !level.is_finite() {
                return Err(ThreatError::InvalidParameter {
                    name: "level",
                    message: "saturation level must be finite".to_string(),
                });
            }
        }
        Ok(SensorFaultStream {
            inner,
            fault,
            channels,
            probability,
            rng: StdRng::seed_from_u64(seed),
            latched: None,
        })
    }

    /// Wraps a stream with a fault on **every** channel.
    ///
    /// # Errors
    ///
    /// Propagates [`SensorFaultStream::new`] validation errors.
    pub fn all_channels(
        inner: S,
        fault: SensorFault,
        probability: f64,
        seed: u64,
    ) -> Result<SensorFaultStream<S>, ThreatError> {
        let channels = (0..inner.num_features()).collect();
        SensorFaultStream::new(inner, fault, channels, probability, seed)
    }
}

impl<S: CorpusStream> Iterator for SensorFaultStream<S> {
    type Item = StreamRecord;

    fn next(&mut self) -> Option<StreamRecord> {
        let mut record = self.inner.next()?;
        // Draw exactly one uniform per row regardless of fault state, so the
        // row sequence stays aligned across fault kinds with the same seed.
        let fired = self.rng.gen_range(0.0..1.0) < self.probability;
        match self.fault {
            SensorFault::Dropout => {
                if fired {
                    for &channel in &self.channels {
                        record.features[channel] = 0.0;
                    }
                }
            }
            SensorFault::Saturation { level } => {
                if fired {
                    for &channel in &self.channels {
                        if record.features[channel] > level {
                            record.features[channel] = level;
                        }
                    }
                }
            }
            SensorFault::StuckAt => {
                if self.latched.is_none() && fired {
                    self.latched = Some(
                        self.channels
                            .iter()
                            .map(|&channel| record.features[channel])
                            .collect(),
                    );
                }
                if let Some(latched) = &self.latched {
                    for (&channel, &value) in self.channels.iter().zip(latched.iter()) {
                        record.features[channel] = value;
                    }
                }
            }
        }
        Some(record)
    }
}

impl<S: CorpusStream> CorpusStream for SensorFaultStream<S> {
    fn num_features(&self) -> usize {
        self.inner.num_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::{AppId, Label, SampleMeta};

    struct Counting {
        row: usize,
    }

    impl Iterator for Counting {
        type Item = StreamRecord;
        fn next(&mut self) -> Option<StreamRecord> {
            let x = self.row as f64;
            self.row += 1;
            Some(StreamRecord {
                features: vec![x, 100.0 + x, -x],
                label: Label::Benign,
                meta: SampleMeta::known(AppId(1)),
            })
        }
    }

    impl CorpusStream for Counting {
        fn num_features(&self) -> usize {
            3
        }
    }

    #[test]
    fn dropout_zeroes_only_selected_channels() {
        let mut stream =
            SensorFaultStream::new(Counting { row: 1 }, SensorFault::Dropout, vec![1], 1.0, 0)
                .unwrap();
        let record = stream.next().unwrap();
        assert_eq!(record.features, vec![1.0, 0.0, -1.0]);
    }

    #[test]
    fn saturation_clamps_from_above_only() {
        let mut stream = SensorFaultStream::new(
            Counting { row: 1 },
            SensorFault::Saturation { level: 50.0 },
            vec![0, 1, 2],
            1.0,
            0,
        )
        .unwrap();
        let record = stream.next().unwrap();
        // 1.0 and -1.0 are below the rail and untouched; 101.0 clips.
        assert_eq!(record.features, vec![1.0, 50.0, -1.0]);
    }

    #[test]
    fn stuck_at_latches_permanently() {
        let mut stream =
            SensorFaultStream::new(Counting { row: 1 }, SensorFault::StuckAt, vec![0], 1.0, 0)
                .unwrap();
        let rows: Vec<_> = stream.by_ref().take(3).collect();
        // Channel 0 latched at its row-one value; others keep counting.
        assert_eq!(rows[0].features[0], 1.0);
        assert_eq!(rows[1].features[0], 1.0);
        assert_eq!(rows[2].features[0], 1.0);
        assert_eq!(rows[2].features[1], 103.0);
    }

    #[test]
    fn zero_probability_is_identity() {
        let mut stream =
            SensorFaultStream::all_channels(Counting { row: 1 }, SensorFault::Dropout, 0.0, 0)
                .unwrap();
        let record = stream.next().unwrap();
        assert_eq!(record.features, vec![1.0, 101.0, -1.0]);
    }

    #[test]
    fn fault_streams_are_seed_deterministic() {
        let collect = |seed: u64| -> Vec<StreamRecord> {
            SensorFaultStream::all_channels(Counting { row: 0 }, SensorFault::Dropout, 0.5, seed)
                .unwrap()
                .take(32)
                .collect()
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let make = |channels: Vec<usize>, p: f64| {
            SensorFaultStream::new(Counting { row: 0 }, SensorFault::Dropout, channels, p, 0)
        };
        assert!(make(vec![], 0.5).is_err());
        assert!(make(vec![3], 0.5).is_err());
        assert!(make(vec![0], 1.5).is_err());
        assert!(SensorFaultStream::new(
            Counting { row: 0 },
            SensorFault::Saturation {
                level: f64::INFINITY
            },
            vec![0],
            0.5,
            0,
        )
        .is_err());
    }
}
