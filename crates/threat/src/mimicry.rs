//! Mimicry malware: signatures blended toward the nearest benign template.
//!
//! A mimicry attacker shapes its observable behaviour (governor activity,
//! instruction mix) to resemble a benign application while keeping its
//! payload. In feature space that is a convex blend: for a malware signature
//! `x` and the nearest benign template `t`,
//!
//! ```text
//! x' = x + budget · (t − x)
//! ```
//!
//! `budget ∈ [0, 1]` is the attacker's imitation capability — 0 leaves the
//! signature untouched, 1 lands exactly on the benign template. Benign rows
//! pass through unchanged, and ground-truth labels are **not** rewritten:
//! the stream still reports the row as malware, which is what lets an
//! evaluation measure how many mimicked rows the detector accepts as benign.

use crate::ThreatError;
use hmd_data::stream::{CorpusStream, StreamRecord};
use hmd_data::{Dataset, Label};

/// The mimicry attack configuration: benign templates plus a blend budget.
#[derive(Debug, Clone, PartialEq)]
pub struct Mimicry {
    templates: Vec<Vec<f64>>,
    budget: f64,
}

impl Mimicry {
    /// Builds the attack from explicit benign template rows.
    ///
    /// # Errors
    ///
    /// Returns [`ThreatError::InvalidParameter`] when `budget` is outside
    /// `[0, 1]` or not finite, when `templates` is empty, or when template
    /// rows have unequal lengths.
    pub fn new(templates: Vec<Vec<f64>>, budget: f64) -> Result<Mimicry, ThreatError> {
        if !budget.is_finite() || !(0.0..=1.0).contains(&budget) {
            return Err(ThreatError::InvalidParameter {
                name: "budget",
                message: format!("must be in [0, 1], got {budget}"),
            });
        }
        if templates.is_empty() {
            return Err(ThreatError::InvalidParameter {
                name: "templates",
                message: "at least one benign template row is required".to_string(),
            });
        }
        let width = templates[0].len();
        if templates.iter().any(|t| t.len() != width) {
            return Err(ThreatError::InvalidParameter {
                name: "templates",
                message: "template rows must all have the same length".to_string(),
            });
        }
        Ok(Mimicry { templates, budget })
    }

    /// Builds the attack using every benign row of a dataset as a template —
    /// the common case: mimic the benign applications the detector was
    /// trained to accept.
    ///
    /// # Errors
    ///
    /// Returns [`ThreatError::InvalidParameter`] when the dataset contains no
    /// benign rows, and propagates [`Mimicry::new`] validation errors.
    pub fn from_benign_rows(dataset: &Dataset, budget: f64) -> Result<Mimicry, ThreatError> {
        let features = dataset.features();
        let templates: Vec<Vec<f64>> = dataset
            .labels()
            .iter()
            .enumerate()
            .filter(|(_, label)| **label == Label::Benign)
            .map(|(i, _)| features.row(i).to_vec())
            .collect();
        if templates.is_empty() {
            return Err(ThreatError::InvalidParameter {
                name: "dataset",
                message: "no benign rows to use as mimicry templates".to_string(),
            });
        }
        Mimicry::new(templates, budget)
    }

    /// The blend budget.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// Wraps a corpus stream so that every malware row is blended toward its
    /// nearest benign template.
    ///
    /// # Errors
    ///
    /// Returns [`ThreatError::InvalidParameter`] when the template width does
    /// not match the stream's feature count.
    pub fn apply<S: CorpusStream>(self, inner: S) -> Result<MimicryStream<S>, ThreatError> {
        let width = self.templates[0].len();
        if width != inner.num_features() {
            return Err(ThreatError::InvalidParameter {
                name: "templates",
                message: format!(
                    "template width {width} does not match stream width {}",
                    inner.num_features()
                ),
            });
        }
        Ok(MimicryStream {
            inner,
            attack: self,
        })
    }

    /// Blends one signature in place toward its nearest template (squared
    /// Euclidean distance). Used by the stream adaptor; exposed so batch
    /// evaluations can mimic materialised rows too.
    pub fn blend(&self, features: &mut [f64]) {
        let mut best = 0usize;
        let mut best_distance = f64::INFINITY;
        for (index, template) in self.templates.iter().enumerate() {
            let distance: f64 = template
                .iter()
                .zip(features.iter())
                .map(|(t, x)| (t - x) * (t - x))
                .sum();
            if distance < best_distance {
                best_distance = distance;
                best = index;
            }
        }
        for (x, t) in features.iter_mut().zip(self.templates[best].iter()) {
            *x += self.budget * (t - *x);
        }
    }
}

/// A [`CorpusStream`] adaptor applying [`Mimicry`] to every malware row.
#[derive(Debug, Clone)]
pub struct MimicryStream<S> {
    inner: S,
    attack: Mimicry,
}

impl<S: CorpusStream> Iterator for MimicryStream<S> {
    type Item = StreamRecord;

    fn next(&mut self) -> Option<StreamRecord> {
        let mut record = self.inner.next()?;
        if record.label == Label::Malware {
            self.attack.blend(&mut record.features);
        }
        Some(record)
    }
}

impl<S: CorpusStream> CorpusStream for MimicryStream<S> {
    fn num_features(&self) -> usize {
        self.inner.num_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::{AppId, SampleMeta};

    struct Alternating {
        row: usize,
    }

    impl Iterator for Alternating {
        type Item = StreamRecord;
        fn next(&mut self) -> Option<StreamRecord> {
            let malware = self.row % 2 == 1;
            self.row += 1;
            Some(StreamRecord {
                features: if malware {
                    vec![10.0, 10.0]
                } else {
                    vec![0.0, 0.0]
                },
                label: Label::from(malware),
                meta: SampleMeta::known(AppId(1)),
            })
        }
    }

    impl CorpusStream for Alternating {
        fn num_features(&self) -> usize {
            2
        }
    }

    #[test]
    fn budget_zero_is_identity() {
        let attack = Mimicry::new(vec![vec![0.0, 0.0]], 0.0).unwrap();
        let mut stream = attack.apply(Alternating { row: 0 }).unwrap();
        let rows: Vec<_> = stream.by_ref().take(2).collect();
        assert_eq!(rows[1].features, vec![10.0, 10.0]);
    }

    #[test]
    fn budget_one_lands_on_the_template() {
        let attack = Mimicry::new(vec![vec![0.0, 0.0], vec![9.0, 9.0]], 1.0).unwrap();
        let mut stream = attack.apply(Alternating { row: 0 }).unwrap();
        let rows: Vec<_> = stream.by_ref().take(2).collect();
        // Malware at (10, 10) is nearest the (9, 9) template.
        assert_eq!(rows[1].features, vec![9.0, 9.0]);
        // Labels are NOT rewritten.
        assert_eq!(rows[1].label, Label::Malware);
    }

    #[test]
    fn benign_rows_pass_through() {
        let attack = Mimicry::new(vec![vec![5.0, 5.0]], 1.0).unwrap();
        let mut stream = attack.apply(Alternating { row: 0 }).unwrap();
        let first = stream.next().unwrap();
        assert_eq!(first.features, vec![0.0, 0.0]);
    }

    #[test]
    fn half_budget_blends_half_way() {
        let attack = Mimicry::new(vec![vec![0.0, 0.0]], 0.5).unwrap();
        let mut stream = attack.apply(Alternating { row: 0 }).unwrap();
        let rows: Vec<_> = stream.by_ref().take(2).collect();
        assert_eq!(rows[1].features, vec![5.0, 5.0]);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Mimicry::new(vec![], 0.5).is_err());
        assert!(Mimicry::new(vec![vec![1.0]], 1.5).is_err());
        assert!(Mimicry::new(vec![vec![1.0]], f64::NAN).is_err());
        assert!(Mimicry::new(vec![vec![1.0], vec![1.0, 2.0]], 0.5).is_err());
        // Width mismatch against the stream.
        let attack = Mimicry::new(vec![vec![1.0, 2.0, 3.0]], 0.5).unwrap();
        assert!(attack.apply(Alternating { row: 0 }).is_err());
    }
}
