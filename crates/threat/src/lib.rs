//! Adversarial threat corpora for hardware malware detectors.
//!
//! The paper's trustworthiness claim is that the rejection/escalation option
//! catches what raw accuracy misses. This crate supplies the attacks that
//! stress that claim, layered over the workspace's streaming corpus
//! generators ([`hmd_data::stream::CorpusStream`]):
//!
//! * [`mimicry`] — malware whose signatures are blended toward the nearest
//!   benign template, with a budget knob ([`Mimicry`]).
//! * [`drift`] — gradual feature-drift schedules that shift the whole
//!   distribution over time ([`GradualDrift`], [`DriftSchedule`]).
//! * [`sensor`] — dropout, saturation and stuck-at faults on selected
//!   sensor channels ([`SensorFault`]).
//! * [`evasion`] — perturbation-bounded black-box evasion search against a
//!   fitted [`hmd_core::detector::Detector`] ([`evade`], [`EvasionBudget`]).
//!
//! The first three are *stream adaptors*: they wrap any
//! [`CorpusStream`](hmd_data::stream::CorpusStream) and yield perturbed
//! records, composing like iterator adaptors. Evasion is per-row: it needs
//! the fitted detector in the loop.
//!
//! # Example
//!
//! ```
//! use hmd_data::stream::{CorpusStream, StreamRecord};
//! use hmd_data::{AppId, Label, SampleMeta};
//! use hmd_threat::{DriftSchedule, GradualDrift};
//!
//! /// A constant benign stream.
//! struct Flat;
//! impl Iterator for Flat {
//!     type Item = StreamRecord;
//!     fn next(&mut self) -> Option<StreamRecord> {
//!         Some(StreamRecord {
//!             features: vec![1.0, 2.0],
//!             label: Label::Benign,
//!             meta: SampleMeta::known(AppId(1)),
//!         })
//!     }
//! }
//! impl CorpusStream for Flat {
//!     fn num_features(&self) -> usize { 2 }
//! }
//!
//! # fn main() -> Result<(), hmd_threat::ThreatError> {
//! let drift = GradualDrift::new(vec![1.0, 0.0], DriftSchedule::linear(10))?;
//! let mut stream = drift.apply(Flat)?;
//! let rows: Vec<_> = stream.by_ref().take(11).collect();
//! assert_eq!(rows[0].features, vec![1.0, 2.0]); // intensity 0 at row 0
//! assert_eq!(rows[10].features, vec![2.0, 2.0]); // full shift from row 10
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod drift;
pub mod evasion;
pub mod mimicry;
pub mod sensor;

pub use drift::{DriftSchedule, DriftingStream, GradualDrift};
pub use evasion::{evade, evade_batch, EvasionBudget, EvasionOutcome, EvasionSummary};
pub use mimicry::{Mimicry, MimicryStream};
pub use sensor::{SensorFault, SensorFaultStream};

use std::fmt;

/// Errors of the threat layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum ThreatError {
    /// An attack parameter was outside its valid range.
    InvalidParameter {
        /// Name of the parameter.
        name: &'static str,
        /// Explanation of the valid range.
        message: String,
    },
    /// A data-layer failure (empty template set, ragged rows, …).
    Data(hmd_data::DataError),
    /// A detector inference failure during evasion search.
    Ml(hmd_ml::MlError),
}

impl fmt::Display for ThreatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreatError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            ThreatError::Data(err) => write!(f, "{err}"),
            ThreatError::Ml(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for ThreatError {}

impl From<hmd_data::DataError> for ThreatError {
    fn from(err: hmd_data::DataError) -> ThreatError {
        ThreatError::Data(err)
    }
}

impl From<hmd_ml::MlError> for ThreatError {
    fn from(err: hmd_ml::MlError) -> ThreatError {
        ThreatError::Ml(err)
    }
}
