//! Seeded-determinism and constant-memory guarantees of
//! [`HpcCorpusStream`]: bit-identical same-seed streams (despite the lazily
//! warmed per-program CPU contexts) and a million-row sweep reduced by
//! chunked folding without materializing a corpus.

use hmd_data::stream::CorpusStream;
use hmd_data::Label;
use hmd_hpc::sampler::Sampler;
use hmd_hpc::stream::HpcCorpusStream;

/// The cheapest valid sampler: 8-instruction intervals and warm-ups keep the
/// per-row cost to a few simulated instructions.
fn tiny_sampler() -> Sampler {
    let mut sampler = Sampler::new().with_interval(8);
    sampler.warmup_instructions = 8;
    sampler
}

#[test]
fn same_seed_streams_are_bit_identical() {
    let a = HpcCorpusStream::full_catalog(tiny_sampler(), 7).unwrap();
    let b = HpcCorpusStream::full_catalog(tiny_sampler(), 7).unwrap();
    for (i, (ra, rb)) in a.zip(b).take(4096).enumerate() {
        assert_eq!(ra, rb, "row {i} diverged between same-seed streams");
        for (x, y) in ra.features.iter().zip(rb.features.iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "row {i} differs in bits");
        }
    }
}

#[test]
fn different_seeds_diverge() {
    let a = HpcCorpusStream::full_catalog(tiny_sampler(), 7).unwrap();
    let b = HpcCorpusStream::full_catalog(tiny_sampler(), 8).unwrap();
    assert!(
        a.zip(b).take(64).any(|(ra, rb)| ra.features != rb.features),
        "seeds 7 and 8 produced identical streams"
    );
}

#[test]
fn million_row_stream_folds_in_constant_memory() {
    const ROWS: usize = 1_000_000;
    const CHUNK: usize = 100_000;
    let mut stream = HpcCorpusStream::known_programs(tiny_sampler(), 42).unwrap();
    let width = stream.num_features();

    let mut total = 0usize;
    let mut malware = 0usize;
    let mut checksum = 0.0f64;
    for chunk in 0..(ROWS / CHUNK) {
        let mut chunk_sum = 0.0f64;
        let mut chunk_malware = 0usize;
        for record in stream.by_ref().take(CHUNK) {
            assert_eq!(record.features.len(), width);
            let row_sum: f64 = record.features.iter().sum();
            assert!(row_sum.is_finite(), "non-finite row in chunk {chunk}");
            chunk_sum += row_sum;
            if record.label == Label::Malware {
                chunk_malware += 1;
            }
            total += 1;
        }
        assert!(
            chunk_malware > 0 && chunk_malware < CHUNK,
            "chunk {chunk} lost a class: {chunk_malware} malware of {CHUNK}"
        );
        checksum += chunk_sum;
        malware += chunk_malware;
    }
    assert_eq!(total, ROWS, "stream ended early");
    assert!(checksum.is_finite());
    let malware_fraction = malware as f64 / total as f64;
    assert!(
        (0.2..=0.8).contains(&malware_fraction),
        "label balance degenerated: {malware_fraction:.3}"
    );
}

#[test]
fn prefix_is_stable_under_longer_iteration() {
    // The lazily warmed contexts must not make early rows depend on how far
    // the stream is eventually driven.
    let short: Vec<_> = HpcCorpusStream::full_catalog(tiny_sampler(), 3)
        .unwrap()
        .take(32)
        .collect();
    let long: Vec<_> = HpcCorpusStream::full_catalog(tiny_sampler(), 3)
        .unwrap()
        .take(256)
        .collect();
    assert_eq!(short[..], long[..32]);
}
