//! Program behaviour models: parametric instruction-mix generators.
//!
//! A [`ProgramModel`] describes how a program exercises the micro-architecture
//! — its instruction mix, memory locality and branch behaviour. The CPU model
//! in [`crate::cpu`] executes the abstract instruction stream the model
//! produces and accumulates hardware counters.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// One abstract instruction of the synthetic stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Instruction {
    /// Arithmetic/logic instruction (no memory or control-flow behaviour).
    Alu,
    /// Memory load from the given byte address.
    Load(u64),
    /// Memory store to the given byte address.
    Store(u64),
    /// Conditional branch at `address` with its resolved direction.
    Branch {
        /// Address of the branch instruction (indexes the predictor table).
        address: u64,
        /// Whether the branch is taken.
        taken: bool,
    },
}

/// Parametric description of a program's micro-architectural behaviour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramModel {
    /// Fraction of instructions that are loads.
    pub load_fraction: f64,
    /// Fraction of instructions that are stores.
    pub store_fraction: f64,
    /// Fraction of instructions that are branches.
    pub branch_fraction: f64,
    /// Working-set size in bytes touched by sequential/strided accesses.
    pub working_set_bytes: u64,
    /// Probability that a memory access is a random (pointer-chasing style)
    /// access within a large region instead of a strided access within the
    /// working set.
    pub random_access_fraction: f64,
    /// Size of the region random accesses fall in (bytes).
    pub random_region_bytes: u64,
    /// Probability that a branch is taken.
    pub branch_taken_bias: f64,
    /// Number of distinct static branch sites the program cycles through.
    pub branch_sites: u64,
    /// Fraction of branches whose outcome is data-dependent (random) rather
    /// than following the bias.
    pub branch_noise: f64,
}

impl ProgramModel {
    /// A cache-friendly, well-predicted compute program (the default
    /// baseline).
    pub fn compute_bound() -> ProgramModel {
        ProgramModel {
            load_fraction: 0.22,
            store_fraction: 0.10,
            branch_fraction: 0.15,
            working_set_bytes: 16 * 1024,
            random_access_fraction: 0.05,
            random_region_bytes: 4 * 1024 * 1024,
            branch_taken_bias: 0.85,
            branch_sites: 64,
            branch_noise: 0.05,
        }
    }

    /// A memory-bound program with a large, poorly cached working set.
    pub fn memory_bound() -> ProgramModel {
        ProgramModel {
            load_fraction: 0.40,
            store_fraction: 0.15,
            branch_fraction: 0.10,
            working_set_bytes: 8 * 1024 * 1024,
            random_access_fraction: 0.60,
            random_region_bytes: 64 * 1024 * 1024,
            branch_taken_bias: 0.70,
            branch_sites: 256,
            branch_noise: 0.15,
        }
    }

    /// Validates that the instruction-mix fractions are sane.
    ///
    /// # Panics
    ///
    /// Panics when the load/store/branch fractions are negative or sum to 1.0
    /// or more.
    pub fn validate(&self) {
        assert!(
            self.load_fraction >= 0.0 && self.store_fraction >= 0.0 && self.branch_fraction >= 0.0,
            "instruction-mix fractions must be non-negative"
        );
        assert!(
            self.load_fraction + self.store_fraction + self.branch_fraction < 1.0,
            "load+store+branch fractions must leave room for ALU instructions"
        );
    }

    /// Generates the next abstract instruction.
    pub fn next_instruction<R: Rng>(&self, state: &mut ProgramState, rng: &mut R) -> Instruction {
        let r: f64 = rng.gen();
        if r < self.load_fraction {
            Instruction::Load(self.next_address(state, rng))
        } else if r < self.load_fraction + self.store_fraction {
            Instruction::Store(self.next_address(state, rng))
        } else if r < self.load_fraction + self.store_fraction + self.branch_fraction {
            let site = rng.gen_range(0..self.branch_sites.max(1));
            let address = 0x40_0000 + site * 16;
            let taken = if rng.gen_bool(self.branch_noise.clamp(0.0, 1.0)) {
                rng.gen_bool(0.5)
            } else {
                rng.gen_bool(self.branch_taken_bias.clamp(0.0, 1.0))
            };
            Instruction::Branch { address, taken }
        } else {
            Instruction::Alu
        }
    }

    fn next_address<R: Rng>(&self, state: &mut ProgramState, rng: &mut R) -> u64 {
        if rng.gen_bool(self.random_access_fraction.clamp(0.0, 1.0)) {
            0x1000_0000 + rng.gen_range(0..self.random_region_bytes.max(64))
        } else {
            state.stride_cursor = (state.stride_cursor + 64) % self.working_set_bytes.max(64);
            0x2000_0000 + state.stride_cursor
        }
    }
}

/// Mutable per-execution state of a program (the strided-access cursor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgramState {
    /// Current offset of the strided access pattern within the working set.
    pub stride_cursor: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn instruction_mix_matches_fractions() {
        let model = ProgramModel::compute_bound();
        model.validate();
        let mut state = ProgramState::default();
        let mut rng = StdRng::seed_from_u64(0);
        let mut loads = 0;
        let mut stores = 0;
        let mut branches = 0;
        let total = 20_000;
        for _ in 0..total {
            match model.next_instruction(&mut state, &mut rng) {
                Instruction::Load(_) => loads += 1,
                Instruction::Store(_) => stores += 1,
                Instruction::Branch { .. } => branches += 1,
                Instruction::Alu => {}
            }
        }
        let tol = 0.02;
        assert!((loads as f64 / total as f64 - model.load_fraction).abs() < tol);
        assert!((stores as f64 / total as f64 - model.store_fraction).abs() < tol);
        assert!((branches as f64 / total as f64 - model.branch_fraction).abs() < tol);
    }

    #[test]
    fn strided_addresses_stay_inside_working_set() {
        let model = ProgramModel {
            random_access_fraction: 0.0,
            ..ProgramModel::compute_bound()
        };
        let mut state = ProgramState::default();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5000 {
            if let Instruction::Load(addr) | Instruction::Store(addr) =
                model.next_instruction(&mut state, &mut rng)
            {
                let offset = addr - 0x2000_0000;
                assert!(offset < model.working_set_bytes);
            }
        }
    }

    #[test]
    fn branch_bias_is_respected() {
        let model = ProgramModel {
            branch_fraction: 0.9,
            load_fraction: 0.0,
            store_fraction: 0.0,
            branch_noise: 0.0,
            branch_taken_bias: 0.9,
            ..ProgramModel::compute_bound()
        };
        let mut state = ProgramState::default();
        let mut rng = StdRng::seed_from_u64(2);
        let mut taken = 0;
        let mut total = 0;
        for _ in 0..10_000 {
            if let Instruction::Branch { taken: t, .. } =
                model.next_instruction(&mut state, &mut rng)
            {
                total += 1;
                if t {
                    taken += 1;
                }
            }
        }
        let rate = taken as f64 / total as f64;
        assert!((rate - 0.9).abs() < 0.03, "taken rate {rate}");
    }

    #[test]
    #[should_panic(expected = "leave room for ALU")]
    fn overfull_mix_panics_validation() {
        let model = ProgramModel {
            load_fraction: 0.5,
            store_fraction: 0.4,
            branch_fraction: 0.2,
            ..ProgramModel::compute_bound()
        };
        model.validate();
    }

    #[test]
    fn presets_are_valid() {
        ProgramModel::compute_bound().validate();
        ProgramModel::memory_bound().validate();
    }
}
