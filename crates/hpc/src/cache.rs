//! Set-associative LRU cache model.

use serde::{Deserialize, Serialize};

/// Geometry of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 64-byte-line L1 data cache.
    pub fn l1d() -> CacheConfig {
        CacheConfig {
            size_bytes: 32 * 1024,
            line_bytes: 64,
            ways: 8,
        }
    }

    /// A 1 MiB, 16-way, 64-byte-line last-level cache.
    pub fn llc() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024 * 1024,
            line_bytes: 64,
            ways: 16,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sizes or capacity not a
    /// multiple of `line_bytes × ways`).
    pub fn num_sets(&self) -> usize {
        assert!(
            self.size_bytes > 0 && self.line_bytes > 0 && self.ways > 0,
            "cache geometry must be non-zero"
        );
        let sets = self.size_bytes / (self.line_bytes * self.ways);
        assert!(
            sets > 0,
            "cache too small for its line size and associativity"
        );
        sets
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Only tag state is modelled (no data), which is all the counter simulation
/// needs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cache {
    config: CacheConfig,
    /// `sets[set][way] = Some(tag)`, most-recently-used first.
    sets: Vec<Vec<u64>>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Cache {
        let num_sets = config.num_sets();
        Cache {
            config,
            sets: vec![Vec::with_capacity(config.ways); num_sets],
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Performs one access to byte address `address`. Returns `true` on hit.
    pub fn access(&mut self, address: u64) -> bool {
        let line = address / self.config.line_bytes as u64;
        let set_index = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[set_index];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.insert(0, t);
            self.hits += 1;
            true
        } else {
            if set.len() == self.config.ways {
                set.pop(); // evict LRU
            }
            set.insert(0, tag);
            self.misses += 1;
            false
        }
    }

    /// Number of hits since construction or the last [`Cache::reset_stats`].
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses since construction or the last [`Cache::reset_stats`].
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total number of accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Resets the hit/miss statistics (cache contents are kept, matching how
    /// perf counters are read per interval without flushing the cache).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Empties the cache and clears the statistics.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cache() -> Cache {
        // 4 sets x 2 ways x 64-byte lines = 512 bytes
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
        })
    }

    #[test]
    fn geometry_is_computed_correctly() {
        assert_eq!(CacheConfig::l1d().num_sets(), 64);
        assert_eq!(CacheConfig::llc().num_sets(), 1024);
        assert_eq!(tiny_cache().config().num_sets(), 4);
    }

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let mut cache = tiny_cache();
        assert!(!cache.access(0x1000));
        assert!(cache.access(0x1000));
        assert!(cache.access(0x1004), "same line, different offset");
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn lru_evicts_least_recently_used_line() {
        let mut cache = tiny_cache();
        // Three distinct lines mapping to the same set (stride = sets*line = 256).
        let a = 0x0000;
        let b = 0x0100;
        let c = 0x0200;
        cache.access(a); // miss
        cache.access(b); // miss
        cache.access(a); // hit, a becomes MRU
        cache.access(c); // miss, evicts b (LRU)
        assert!(cache.access(a), "a should still be resident");
        assert!(!cache.access(b), "b should have been evicted");
    }

    #[test]
    fn working_set_larger_than_cache_always_misses_on_streaming() {
        let mut cache = tiny_cache();
        // Stream through 64 distinct lines twice; capacity is 8 lines.
        for round in 0..2 {
            for i in 0..64u64 {
                cache.access(i * 64);
            }
            if round == 0 {
                assert_eq!(cache.misses(), 64);
            }
        }
        // second pass also misses everything (LRU streaming pathology)
        assert_eq!(cache.misses(), 128);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn small_working_set_fits_and_hits() {
        let mut cache = tiny_cache();
        for _ in 0..10 {
            for i in 0..4u64 {
                cache.access(i * 64);
            }
        }
        assert_eq!(cache.misses(), 4);
        assert_eq!(cache.hits(), 36);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut cache = tiny_cache();
        cache.access(0x40);
        cache.reset_stats();
        assert_eq!(cache.accesses(), 0);
        assert!(cache.access(0x40), "line survives a stats reset");
        cache.flush();
        assert!(!cache.access(0x40), "flush empties the cache");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn degenerate_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 0,
            line_bytes: 64,
            ways: 1,
        });
    }
}
