//! Interval sampling of hardware counters, mimicking a perf-style monitoring
//! daemon that reads the counters every N retired instructions.

use crate::apps::ProgramProfile;
use crate::counters::CounterSet;
use crate::cpu::{Cpu, CpuConfig};
use crate::workload::{ProgramModel, ProgramState};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the counter sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sampler {
    /// Instructions executed per sampling interval (one HPC vector each).
    pub interval_instructions: u64,
    /// Warm-up instructions executed before the first recorded interval
    /// (fills caches and trains the branch predictor).
    pub warmup_instructions: u64,
    /// Core configuration used for the simulation.
    pub cpu: CpuConfig,
}

impl Sampler {
    /// Default sampler: 4 000-instruction intervals after a 4 000-instruction
    /// warm-up on the mobile core.
    pub fn new() -> Sampler {
        Sampler {
            interval_instructions: 4000,
            warmup_instructions: 4000,
            cpu: CpuConfig::mobile_core(),
        }
    }

    /// Sets the interval length.
    pub fn with_interval(mut self, instructions: u64) -> Sampler {
        self.interval_instructions = instructions;
        self
    }

    /// Collects `num_samples` counter vectors for one program.
    ///
    /// Every sample is one sampling interval. Per-sample behaviour jitter
    /// (modelling input dependence, scheduling and co-running background
    /// work) is applied by perturbing the program model parameters, and a
    /// small multiplicative measurement noise is applied to the counters —
    /// real HPC readings are notoriously noisy.
    pub fn sample_program<R: Rng>(
        &self,
        profile: &ProgramProfile,
        num_samples: usize,
        rng: &mut R,
    ) -> Vec<CounterSet> {
        let mut cpu = Cpu::new(self.cpu);
        let mut state = ProgramState::default();
        // warm-up with the nominal model
        let warmup_model = profile.model.clone();
        warmup_model.validate();
        let _ = cpu.run_interval(&warmup_model, &mut state, self.warmup_instructions, rng);

        let mut samples = Vec::with_capacity(num_samples);
        for _ in 0..num_samples {
            let jittered = jitter_model(&profile.model, profile.behaviour_jitter, rng);
            let mut counters =
                cpu.run_interval(&jittered, &mut state, self.interval_instructions, rng);
            apply_measurement_noise(&mut counters, rng);
            samples.push(counters);
        }
        samples
    }
}

impl Default for Sampler {
    fn default() -> Self {
        Sampler::new()
    }
}

/// Perturbs a program model's behavioural parameters by up to ±`jitter`
/// (relative), clamping every field to its valid range.
pub(crate) fn jitter_model<R: Rng>(model: &ProgramModel, jitter: f64, rng: &mut R) -> ProgramModel {
    let mut scale = |value: f64, lo: f64, hi: f64| -> f64 {
        let factor = 1.0 + rng.gen_range(-jitter..=jitter);
        (value * factor).clamp(lo, hi)
    };
    let load_fraction = scale(model.load_fraction, 0.01, 0.55);
    let store_fraction = scale(model.store_fraction, 0.01, 0.35);
    let branch_fraction = scale(model.branch_fraction, 0.01, 0.35);
    let working_set_bytes = scale(model.working_set_bytes as f64, 4096.0, 1e12) as u64;
    let random_access_fraction = scale(model.random_access_fraction, 0.0, 0.95);
    let branch_taken_bias = scale(model.branch_taken_bias, 0.5, 0.99);
    let branch_noise = scale(model.branch_noise, 0.0, 0.9);
    let mut jittered = ProgramModel {
        load_fraction,
        store_fraction,
        branch_fraction,
        working_set_bytes,
        random_access_fraction,
        random_region_bytes: model.random_region_bytes,
        branch_taken_bias,
        branch_sites: model.branch_sites,
        branch_noise,
    };
    // Keep the mix feasible: leave at least 20 % ALU instructions.
    let total = jittered.load_fraction + jittered.store_fraction + jittered.branch_fraction;
    if total > 0.8 {
        let shrink = 0.8 / total;
        jittered.load_fraction *= shrink;
        jittered.store_fraction *= shrink;
        jittered.branch_fraction *= shrink;
    }
    jittered
}

/// Applies ±3 % multiplicative noise to every counter except the instruction
/// count (the sampling interval itself is exact).
pub(crate) fn apply_measurement_noise<R: Rng>(counters: &mut CounterSet, rng: &mut R) {
    let mut noisy = |value: u64| -> u64 {
        let factor = 1.0 + rng.gen_range(-0.03..=0.03);
        ((value as f64) * factor).max(0.0).round() as u64
    };
    counters.cycles = noisy(counters.cycles);
    counters.branches = noisy(counters.branches);
    counters.branch_misses = noisy(counters.branch_misses).min(counters.branches);
    counters.l1d_accesses = noisy(counters.l1d_accesses);
    counters.l1d_misses = noisy(counters.l1d_misses).min(counters.l1d_accesses);
    counters.llc_accesses = noisy(counters.llc_accesses);
    counters.llc_misses = noisy(counters.llc_misses).min(counters.llc_accesses);
    counters.loads = noisy(counters.loads);
    counters.stores = noisy(counters.stores);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::ProgramCatalog;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampler_produces_requested_number_of_samples() {
        let catalog = ProgramCatalog::standard();
        let sampler = Sampler::new().with_interval(1000);
        let mut rng = StdRng::seed_from_u64(0);
        let samples = sampler.sample_program(&catalog.programs()[0], 5, &mut rng);
        assert_eq!(samples.len(), 5);
        for s in &samples {
            assert_eq!(s.instructions, 1000);
            assert!(s.cycles > 0);
        }
    }

    #[test]
    fn jitter_respects_mix_feasibility() {
        let mut rng = StdRng::seed_from_u64(1);
        let base = ProgramModel::memory_bound();
        for _ in 0..200 {
            let j = jitter_model(&base, 0.5, &mut rng);
            j.validate();
        }
    }

    #[test]
    fn measurement_noise_preserves_counter_invariants() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counters = CounterSet {
            instructions: 1000,
            cycles: 3000,
            branches: 150,
            branch_misses: 30,
            l1d_accesses: 400,
            l1d_misses: 80,
            llc_accesses: 80,
            llc_misses: 20,
            loads: 250,
            stores: 150,
        };
        for _ in 0..100 {
            apply_measurement_noise(&mut counters, &mut rng);
            assert!(counters.branch_misses <= counters.branches);
            assert!(counters.l1d_misses <= counters.l1d_accesses);
            assert!(counters.llc_misses <= counters.llc_accesses);
        }
    }

    #[test]
    fn samples_vary_between_intervals() {
        let catalog = ProgramCatalog::standard();
        let sampler = Sampler::new().with_interval(2000);
        let mut rng = StdRng::seed_from_u64(3);
        let samples = sampler.sample_program(&catalog.programs()[3], 10, &mut rng);
        let first_cycles = samples[0].cycles;
        assert!(
            samples.iter().any(|s| s.cycles != first_cycles),
            "behaviour jitter should vary the cycle counts"
        );
    }
}
