//! The simulated in-order core: executes abstract instruction streams and
//! accumulates hardware performance counters.

use crate::branch::BranchPredictor;
use crate::cache::{Cache, CacheConfig};
use crate::counters::CounterSet;
use crate::workload::{Instruction, ProgramModel, ProgramState};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Latency and structure configuration of the simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuConfig {
    /// Cycles per ALU instruction.
    pub alu_latency: u64,
    /// Cycles for an L1 hit.
    pub l1_hit_latency: u64,
    /// Additional cycles for an LLC hit (L1 miss).
    pub llc_hit_latency: u64,
    /// Additional cycles for a memory access (LLC miss).
    pub memory_latency: u64,
    /// Pipeline-flush penalty of a mispredicted branch, in cycles.
    pub branch_miss_penalty: u64,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Last-level cache geometry.
    pub llc: CacheConfig,
    /// Branch-predictor table entries.
    pub branch_table: usize,
}

impl CpuConfig {
    /// A small mobile-class core configuration.
    pub fn mobile_core() -> CpuConfig {
        CpuConfig {
            alu_latency: 1,
            l1_hit_latency: 3,
            llc_hit_latency: 12,
            memory_latency: 90,
            branch_miss_penalty: 14,
            l1d: CacheConfig::l1d(),
            llc: CacheConfig::llc(),
            branch_table: 4096,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig::mobile_core()
    }
}

/// The simulated core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cpu {
    config: CpuConfig,
    l1d: Cache,
    llc: Cache,
    branch_predictor: BranchPredictor,
    counters: CounterSet,
}

impl Cpu {
    /// Creates a core with cold caches and an untrained predictor.
    pub fn new(config: CpuConfig) -> Cpu {
        Cpu {
            l1d: Cache::new(config.l1d),
            llc: Cache::new(config.llc),
            branch_predictor: BranchPredictor::new(config.branch_table),
            counters: CounterSet::new(),
            config,
        }
    }

    /// The core configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Counters accumulated since the last [`Cpu::take_counters`].
    pub fn counters(&self) -> &CounterSet {
        &self.counters
    }

    /// Returns the accumulated counters and starts a new sampling interval
    /// (micro-architectural state — caches, predictor — is preserved, exactly
    /// like reading perf counters on real hardware).
    pub fn take_counters(&mut self) -> CounterSet {
        let snapshot = self.counters;
        self.counters = CounterSet::new();
        snapshot
    }

    /// Executes a single abstract instruction.
    pub fn execute(&mut self, instruction: Instruction) {
        self.counters.instructions += 1;
        match instruction {
            Instruction::Alu => {
                self.counters.cycles += self.config.alu_latency;
            }
            Instruction::Load(address) | Instruction::Store(address) => {
                if matches!(instruction, Instruction::Load(_)) {
                    self.counters.loads += 1;
                } else {
                    self.counters.stores += 1;
                }
                self.counters.l1d_accesses += 1;
                let mut latency = self.config.l1_hit_latency;
                if !self.l1d.access(address) {
                    self.counters.l1d_misses += 1;
                    self.counters.llc_accesses += 1;
                    latency += self.config.llc_hit_latency;
                    if !self.llc.access(address) {
                        self.counters.llc_misses += 1;
                        latency += self.config.memory_latency;
                    }
                }
                self.counters.cycles += latency;
            }
            Instruction::Branch { address, taken } => {
                self.counters.branches += 1;
                self.counters.cycles += self.config.alu_latency;
                if !self.branch_predictor.predict_and_update(address, taken) {
                    self.counters.branch_misses += 1;
                    self.counters.cycles += self.config.branch_miss_penalty;
                }
            }
        }
    }

    /// Runs `num_instructions` instructions of the given program model and
    /// returns the counters of that interval.
    pub fn run_interval<R: Rng>(
        &mut self,
        program: &ProgramModel,
        state: &mut ProgramState,
        num_instructions: u64,
        rng: &mut R,
    ) -> CounterSet {
        for _ in 0..num_instructions {
            let instruction = program.next_instruction(state, rng);
            self.execute(instruction);
        }
        self.take_counters()
    }
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new(CpuConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn counters_account_for_every_instruction() {
        let mut cpu = Cpu::default();
        let program = ProgramModel::compute_bound();
        let mut state = ProgramState::default();
        let mut rng = StdRng::seed_from_u64(0);
        let counters = cpu.run_interval(&program, &mut state, 10_000, &mut rng);
        assert_eq!(counters.instructions, 10_000);
        assert_eq!(
            counters.loads + counters.stores,
            counters.l1d_accesses,
            "every memory instruction accesses the L1"
        );
        assert!(counters.cycles >= counters.instructions);
        assert!(counters.branch_misses <= counters.branches);
        assert!(counters.l1d_misses <= counters.l1d_accesses);
        assert!(counters.llc_misses <= counters.llc_accesses);
        assert_eq!(counters.llc_accesses, counters.l1d_misses);
    }

    #[test]
    fn memory_bound_program_misses_more_than_compute_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut run = |model: &ProgramModel| {
            let mut cpu = Cpu::default();
            let mut state = ProgramState::default();
            // warm-up interval, then measure
            cpu.run_interval(model, &mut state, 20_000, &mut rng);
            cpu.run_interval(model, &mut state, 20_000, &mut rng)
        };
        let compute = run(&ProgramModel::compute_bound());
        let memory = run(&ProgramModel::memory_bound());
        assert!(
            memory.l1d_miss_rate() > compute.l1d_miss_rate(),
            "memory-bound L1 miss rate {} should exceed compute-bound {}",
            memory.l1d_miss_rate(),
            compute.l1d_miss_rate()
        );
        assert!(memory.ipc() < compute.ipc());
    }

    #[test]
    fn take_counters_resets_interval_but_keeps_microarch_state() {
        let mut cpu = Cpu::default();
        let program = ProgramModel::compute_bound();
        let mut state = ProgramState::default();
        let mut rng = StdRng::seed_from_u64(2);
        let first = cpu.run_interval(&program, &mut state, 5000, &mut rng);
        let second = cpu.run_interval(&program, &mut state, 5000, &mut rng);
        assert_eq!(first.instructions, second.instructions);
        // The second interval benefits from warm caches and a trained
        // predictor, so it should not be slower than the cold first interval.
        assert!(second.cycles <= first.cycles);
    }

    #[test]
    fn branch_heavy_noisy_program_accumulates_mispredictions() {
        let model = ProgramModel {
            branch_fraction: 0.4,
            branch_noise: 1.0,
            ..ProgramModel::compute_bound()
        };
        let mut cpu = Cpu::default();
        let mut state = ProgramState::default();
        let mut rng = StdRng::seed_from_u64(3);
        let counters = cpu.run_interval(&model, &mut state, 20_000, &mut rng);
        assert!(
            counters.branch_miss_rate() > 0.3,
            "rate {}",
            counters.branch_miss_rate()
        );
    }
}
