//! Branch predictor model: a table of 2-bit saturating counters indexed by
//! the branch address (a bimodal predictor).

use serde::{Deserialize, Serialize};

/// A bimodal branch predictor with 2-bit saturating counters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPredictor {
    /// One 2-bit counter per table entry (0–1 predict not-taken, 2–3 taken).
    counters: Vec<u8>,
    predictions: u64,
    mispredictions: u64,
}

impl BranchPredictor {
    /// Creates a predictor with `table_size` entries (rounded up to a power
    /// of two), initialised to weakly-not-taken.
    pub fn new(table_size: usize) -> BranchPredictor {
        let size = table_size.max(2).next_power_of_two();
        BranchPredictor {
            counters: vec![1; size],
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predictor with the default 4096-entry table.
    pub fn default_table() -> BranchPredictor {
        BranchPredictor::new(4096)
    }

    fn index(&self, branch_address: u64) -> usize {
        (branch_address as usize >> 2) & (self.counters.len() - 1)
    }

    /// Predicts and then updates with the actual outcome; returns `true` when
    /// the prediction was correct.
    pub fn predict_and_update(&mut self, branch_address: u64, taken: bool) -> bool {
        let index = self.index(branch_address);
        let counter = self.counters[index];
        let predicted_taken = counter >= 2;
        let correct = predicted_taken == taken;
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        self.counters[index] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        correct
    }

    /// Total number of predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total number of mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate; 0 when no predictions were made.
    pub fn miss_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Resets the statistics, keeping the learned counter state.
    pub fn reset_stats(&mut self) {
        self.predictions = 0;
        self.mispredictions = 0;
    }
}

impl Default for BranchPredictor {
    fn default() -> Self {
        BranchPredictor::default_table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn table_size_rounds_to_power_of_two() {
        assert_eq!(BranchPredictor::new(1000).counters.len(), 1024);
        assert_eq!(BranchPredictor::new(0).counters.len(), 2);
    }

    #[test]
    fn always_taken_branch_is_learned() {
        let mut bp = BranchPredictor::new(64);
        let addr = 0x400;
        for _ in 0..100 {
            bp.predict_and_update(addr, true);
        }
        // After warm-up the branch should be predicted correctly; at most the
        // first two predictions can miss while the counter saturates.
        assert!(
            bp.mispredictions() <= 2,
            "mispredictions {}",
            bp.mispredictions()
        );
    }

    #[test]
    fn alternating_branch_defeats_bimodal_predictor() {
        let mut bp = BranchPredictor::new(64);
        let addr = 0x800;
        for i in 0..200 {
            bp.predict_and_update(addr, i % 2 == 0);
        }
        assert!(
            bp.miss_rate() > 0.4,
            "alternating pattern should be hard, rate {}",
            bp.miss_rate()
        );
    }

    #[test]
    fn random_branches_miss_about_half_the_time() {
        let mut bp = BranchPredictor::new(256);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5000 {
            bp.predict_and_update(rng.gen_range(0..1024u64) * 4, rng.gen_bool(0.5));
        }
        let rate = bp.miss_rate();
        assert!((0.35..=0.65).contains(&rate), "rate {rate}");
    }

    #[test]
    fn biased_branches_are_mostly_predicted() {
        let mut bp = BranchPredictor::new(256);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..5000 {
            bp.predict_and_update(rng.gen_range(0..64u64) * 4, rng.gen_bool(0.95));
        }
        assert!(bp.miss_rate() < 0.15, "rate {}", bp.miss_rate());
    }

    #[test]
    fn reset_stats_clears_counts_only() {
        let mut bp = BranchPredictor::new(64);
        for _ in 0..10 {
            bp.predict_and_update(0x10, true);
        }
        bp.reset_stats();
        assert_eq!(bp.predictions(), 0);
        assert_eq!(bp.miss_rate(), 0.0);
        // learned direction survives
        assert!(bp.predict_and_update(0x10, true));
    }
}
