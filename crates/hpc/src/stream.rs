//! Constant-memory streaming HPC corpus generation.
//!
//! [`HpcCorpusStream`] implements [`CorpusStream`]: each [`Iterator::next`]
//! call simulates one fresh sampling interval, cycling round-robin over a
//! fixed program mix with a single seeded RNG. Unlike the batch
//! [`HpcCorpusBuilder`](crate::dataset::HpcCorpusBuilder), which re-creates
//! and re-warms a [`Cpu`] for every `sample_program` call, the stream keeps
//! one persistent core (caches + branch predictor + program state) per
//! program and warms it lazily on that program's first row — so per-row cost
//! is one sampling interval, not interval + warm-up.
//!
//! # Example
//!
//! ```
//! use hmd_data::stream::CorpusStream;
//! use hmd_hpc::sampler::Sampler;
//! use hmd_hpc::stream::HpcCorpusStream;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sampler = Sampler::new().with_interval(64);
//! let mut stream = HpcCorpusStream::full_catalog(sampler, 7)?;
//! let width = stream.num_features();
//! let first = stream.next().expect("stream is infinite");
//! assert_eq!(first.features.len(), width);
//! # Ok(())
//! # }
//! ```

use crate::apps::{ProgramCatalog, ProgramProfile};
use crate::cpu::Cpu;
use crate::features::HpcFeatureExtractor;
use crate::sampler::{apply_measurement_noise, jitter_model, Sampler};
use crate::workload::ProgramState;
use hmd_data::stream::{CorpusStream, StreamRecord};
use hmd_data::{DataError, SampleMeta};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Persistent simulation context for one program in the mix: a core whose
/// caches and branch predictor stay trained across intervals, plus the
/// program's access-pattern state. `warmed` flips on the program's first row.
#[derive(Debug, Clone)]
struct ProgramContext {
    cpu: Cpu,
    state: ProgramState,
    warmed: bool,
}

/// An infinite, seeded stream of HPC signatures over a fixed program mix.
#[derive(Debug, Clone)]
pub struct HpcCorpusStream {
    sampler: Sampler,
    extractor: HpcFeatureExtractor,
    programs: Vec<ProgramProfile>,
    contexts: Vec<ProgramContext>,
    rng: StdRng,
    cursor: usize,
}

impl HpcCorpusStream {
    /// Streams over an explicit program mix.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Empty`] when `programs` is empty — an empty mix
    /// can never yield a row.
    pub fn new(
        sampler: Sampler,
        programs: Vec<ProgramProfile>,
        seed: u64,
    ) -> Result<HpcCorpusStream, DataError> {
        if programs.is_empty() {
            return Err(DataError::Empty {
                context: "HPC stream program mix",
            });
        }
        let contexts = programs
            .iter()
            .map(|_| ProgramContext {
                cpu: Cpu::new(sampler.cpu),
                state: ProgramState::default(),
                warmed: false,
            })
            .collect();
        Ok(HpcCorpusStream {
            sampler,
            extractor: HpcFeatureExtractor::new(),
            programs,
            contexts,
            rng: StdRng::seed_from_u64(seed),
            cursor: 0,
        })
    }

    /// Streams over the full standard catalog (known and unknown programs).
    ///
    /// # Errors
    ///
    /// Propagates [`HpcCorpusStream::new`] errors (the standard catalog is
    /// never empty, so this cannot fail in practice).
    pub fn full_catalog(sampler: Sampler, seed: u64) -> Result<HpcCorpusStream, DataError> {
        let programs = ProgramCatalog::standard().programs().to_vec();
        HpcCorpusStream::new(sampler, programs, seed)
    }

    /// Streams over the known (trainable) programs only.
    ///
    /// # Errors
    ///
    /// Propagates [`HpcCorpusStream::new`] errors.
    pub fn known_programs(sampler: Sampler, seed: u64) -> Result<HpcCorpusStream, DataError> {
        let programs = ProgramCatalog::standard()
            .known_programs()
            .into_iter()
            .cloned()
            .collect();
        HpcCorpusStream::new(sampler, programs, seed)
    }

    /// Streams over the unknown (zero-day proxy) programs only.
    ///
    /// # Errors
    ///
    /// Propagates [`HpcCorpusStream::new`] errors.
    pub fn unknown_programs(sampler: Sampler, seed: u64) -> Result<HpcCorpusStream, DataError> {
        let programs = ProgramCatalog::standard()
            .unknown_programs()
            .into_iter()
            .cloned()
            .collect();
        HpcCorpusStream::new(sampler, programs, seed)
    }

    /// The program mix this stream cycles through.
    pub fn programs(&self) -> &[ProgramProfile] {
        &self.programs
    }
}

impl Iterator for HpcCorpusStream {
    type Item = StreamRecord;

    fn next(&mut self) -> Option<StreamRecord> {
        let index = self.cursor % self.programs.len();
        self.cursor = self.cursor.wrapping_add(1);
        let program = &self.programs[index];
        let context = &mut self.contexts[index];
        if !context.warmed {
            let _ = context.cpu.run_interval(
                &program.model,
                &mut context.state,
                self.sampler.warmup_instructions,
                &mut self.rng,
            );
            context.warmed = true;
        }
        let jittered = jitter_model(&program.model, program.behaviour_jitter, &mut self.rng);
        let mut counters = context.cpu.run_interval(
            &jittered,
            &mut context.state,
            self.sampler.interval_instructions,
            &mut self.rng,
        );
        apply_measurement_noise(&mut counters, &mut self.rng);
        Some(StreamRecord {
            features: self.extractor.extract(&counters),
            label: program.label,
            meta: if program.known {
                SampleMeta::known(program.id)
            } else {
                SampleMeta::unknown(program.id)
            },
        })
    }
}

impl CorpusStream for HpcCorpusStream {
    fn num_features(&self) -> usize {
        self.extractor.num_features()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::stream::collect_dataset;

    fn tiny_sampler() -> Sampler {
        let mut sampler = Sampler::new().with_interval(64);
        sampler.warmup_instructions = 64;
        sampler
    }

    #[test]
    fn empty_mix_is_rejected() {
        assert!(matches!(
            HpcCorpusStream::new(tiny_sampler(), Vec::new(), 0),
            Err(DataError::Empty { .. })
        ));
    }

    #[test]
    fn rows_have_the_advertised_width_and_finite_values() {
        let mut stream = HpcCorpusStream::full_catalog(tiny_sampler(), 3).unwrap();
        let width = stream.num_features();
        for record in stream.by_ref().take(20) {
            assert_eq!(record.features.len(), width);
            assert!(record.features.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn round_robin_covers_the_whole_mix() {
        let mut stream = HpcCorpusStream::full_catalog(tiny_sampler(), 3).unwrap();
        let n = stream.programs().len();
        let ids: Vec<_> = stream.by_ref().take(n).map(|r| r.meta.app).collect();
        let expected: Vec<_> = ProgramCatalog::standard()
            .programs()
            .iter()
            .map(|p| p.id)
            .collect();
        assert_eq!(ids, expected);
    }

    #[test]
    fn known_stream_matches_batch_metadata() {
        let mut stream = HpcCorpusStream::known_programs(tiny_sampler(), 9).unwrap();
        let dataset = collect_dataset(&mut stream, 28).unwrap();
        assert!(dataset.meta().iter().all(|m| !m.unknown_app));
        let counts = dataset.class_counts();
        assert!(counts[0] > 0 && counts[1] > 0);
    }

    #[test]
    fn unknown_stream_is_all_unknown() {
        let mut stream = HpcCorpusStream::unknown_programs(tiny_sampler(), 9).unwrap();
        assert!(stream.by_ref().take(8).all(|r| r.meta.unknown_app));
    }
}
