//! Hardware performance counter (HPC) simulator and signature dataset
//! generator.
//!
//! The paper's second HMD (Zhou et al., *Hardware Performance Counters Can
//! Detect Malware: Myth or Fact?*, ASIACCS 2018) samples per-interval HPC
//! readings (instructions, branches, branch misses, cache accesses/misses)
//! while benign programs and malware run on bare metal, and trains classifiers
//! on those vectors. The original corpus cannot be redistributed, so this
//! crate substitutes a small micro-architecture simulator:
//!
//! * [`cache::Cache`] — set-associative LRU caches (L1D and LLC),
//! * [`branch::BranchPredictor`] — a 2-bit saturating-counter predictor,
//! * [`cpu::Cpu`] — an in-order core that executes synthetic instruction
//!   streams produced by [`workload::ProgramModel`]s and accumulates a
//!   [`counters::CounterSet`],
//! * [`sampler::Sampler`] — fixed-instruction sampling intervals, one HPC
//!   vector per interval, exactly like a perf-style sampling daemon,
//! * [`apps::ProgramCatalog`] — benign programs and malware families whose
//!   instruction mixes **overlap heavily**, reproducing Zhou et al.'s (and the
//!   paper's) central observation that benign and malware classes are not
//!   separable in HPC space.
//!
//! # Example
//!
//! ```
//! use hmd_hpc::dataset::HpcCorpusBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let split = HpcCorpusBuilder::new()
//!     .with_samples_per_app(6)
//!     .build_split(3)?;
//! assert!(split.train.len() > 0);
//! assert!(split.unknown.len() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod apps;
pub mod branch;
pub mod cache;
pub mod counters;
pub mod cpu;
pub mod dataset;
pub mod features;
pub mod sampler;
pub mod stream;
pub mod workload;

pub use apps::{ProgramCatalog, ProgramProfile};
pub use branch::BranchPredictor;
pub use cache::{Cache, CacheConfig};
pub use counters::CounterSet;
pub use cpu::{Cpu, CpuConfig};
pub use dataset::HpcCorpusBuilder;
pub use sampler::Sampler;
pub use stream::HpcCorpusStream;
pub use workload::ProgramModel;
