//! Program catalog: benign applications and malware families executed on the
//! simulated core.
//!
//! The defining property of the HPC dataset — reported by Zhou et al. and
//! confirmed by the paper's uncertainty analysis — is that benign and malware
//! programs exercise the micro-architecture in *overlapping* ways: an
//! encrypting ransomware looks like an archiver, a cryptominer looks like a
//! numeric benchmark, a spyware process looks like a background sync service.
//! The catalog therefore deliberately pairs every malware family with benign
//! programs of near-identical instruction mix, so that the resulting counter
//! distributions overlap heavily (high aleatoric / data uncertainty). The
//! "unknown" programs also fall inside this overlap region, matching the
//! paper's observation that HPC unknowns are *not* out-of-distribution.

use crate::workload::ProgramModel;
use hmd_data::{AppId, Label};
use serde::{Deserialize, Serialize};

/// A simulated program (benign application or malware family).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramProfile {
    /// Stable identifier used in dataset metadata.
    pub id: AppId,
    /// Human-readable name.
    pub name: String,
    /// Ground-truth class.
    pub label: Label,
    /// Whether the program belongs to the known (trainable) bucket.
    pub known: bool,
    /// Micro-architectural behaviour model.
    pub model: ProgramModel,
    /// Relative magnitude of per-sample behaviour jitter (inputs, scheduling,
    /// co-running background work). Higher jitter widens the class overlap.
    pub behaviour_jitter: f64,
}

impl ProgramProfile {
    fn new(
        id: u32,
        name: &str,
        label: Label,
        known: bool,
        model: ProgramModel,
        behaviour_jitter: f64,
    ) -> ProgramProfile {
        ProgramProfile {
            id: AppId(id),
            name: name.to_string(),
            label,
            known,
            model,
            behaviour_jitter,
        }
    }
}

/// The full catalog of simulated programs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgramCatalog {
    programs: Vec<ProgramProfile>,
}

impl ProgramCatalog {
    /// The default catalog: 8 known benign programs, 6 known malware
    /// families, 2 unknown benign programs and 2 unknown malware families,
    /// all drawn from overlapping behavioural regimes.
    #[allow(clippy::vec_init_then_push)]
    pub fn standard() -> ProgramCatalog {
        let mut programs = Vec::new();

        // -------- known benign programs --------
        programs.push(ProgramProfile::new(
            101,
            "file_archiver",
            Label::Benign,
            true,
            ProgramModel {
                load_fraction: 0.32,
                store_fraction: 0.18,
                branch_fraction: 0.12,
                working_set_bytes: 512 * 1024,
                random_access_fraction: 0.15,
                random_region_bytes: 16 * 1024 * 1024,
                branch_taken_bias: 0.80,
                branch_sites: 128,
                branch_noise: 0.10,
            },
            0.30,
        ));
        programs.push(ProgramProfile::new(
            102,
            "numeric_benchmark",
            Label::Benign,
            true,
            ProgramModel {
                load_fraction: 0.24,
                store_fraction: 0.08,
                branch_fraction: 0.10,
                working_set_bytes: 64 * 1024,
                random_access_fraction: 0.05,
                random_region_bytes: 8 * 1024 * 1024,
                branch_taken_bias: 0.90,
                branch_sites: 32,
                branch_noise: 0.05,
            },
            0.25,
        ));
        programs.push(ProgramProfile::new(
            103,
            "web_server",
            Label::Benign,
            true,
            ProgramModel {
                load_fraction: 0.30,
                store_fraction: 0.12,
                branch_fraction: 0.18,
                working_set_bytes: 2 * 1024 * 1024,
                random_access_fraction: 0.35,
                random_region_bytes: 32 * 1024 * 1024,
                branch_taken_bias: 0.72,
                branch_sites: 512,
                branch_noise: 0.20,
            },
            0.35,
        ));
        programs.push(ProgramProfile::new(
            104,
            "database_engine",
            Label::Benign,
            true,
            ProgramModel {
                load_fraction: 0.38,
                store_fraction: 0.14,
                branch_fraction: 0.14,
                working_set_bytes: 6 * 1024 * 1024,
                random_access_fraction: 0.50,
                random_region_bytes: 64 * 1024 * 1024,
                branch_taken_bias: 0.68,
                branch_sites: 512,
                branch_noise: 0.22,
            },
            0.35,
        ));
        programs.push(ProgramProfile::new(
            105,
            "video_codec",
            Label::Benign,
            true,
            ProgramModel {
                load_fraction: 0.30,
                store_fraction: 0.16,
                branch_fraction: 0.10,
                working_set_bytes: 1024 * 1024,
                random_access_fraction: 0.10,
                random_region_bytes: 16 * 1024 * 1024,
                branch_taken_bias: 0.85,
                branch_sites: 64,
                branch_noise: 0.08,
            },
            0.30,
        ));
        programs.push(ProgramProfile::new(
            106,
            "compiler",
            Label::Benign,
            true,
            ProgramModel {
                load_fraction: 0.33,
                store_fraction: 0.13,
                branch_fraction: 0.19,
                working_set_bytes: 3 * 1024 * 1024,
                random_access_fraction: 0.30,
                random_region_bytes: 32 * 1024 * 1024,
                branch_taken_bias: 0.74,
                branch_sites: 1024,
                branch_noise: 0.18,
            },
            0.30,
        ));
        programs.push(ProgramProfile::new(
            107,
            "image_editor",
            Label::Benign,
            true,
            ProgramModel {
                load_fraction: 0.28,
                store_fraction: 0.17,
                branch_fraction: 0.11,
                working_set_bytes: 4 * 1024 * 1024,
                random_access_fraction: 0.20,
                random_region_bytes: 24 * 1024 * 1024,
                branch_taken_bias: 0.82,
                branch_sites: 96,
                branch_noise: 0.10,
            },
            0.30,
        ));
        programs.push(ProgramProfile::new(
            108,
            "background_sync",
            Label::Benign,
            true,
            ProgramModel {
                load_fraction: 0.26,
                store_fraction: 0.10,
                branch_fraction: 0.16,
                working_set_bytes: 256 * 1024,
                random_access_fraction: 0.40,
                random_region_bytes: 48 * 1024 * 1024,
                branch_taken_bias: 0.70,
                branch_sites: 256,
                branch_noise: 0.25,
            },
            0.40,
        ));

        // -------- known malware families (each mirrors a benign profile) ----
        programs.push(ProgramProfile::new(
            121,
            "ransomware_encryptor", // mirrors file_archiver / video_codec
            Label::Malware,
            true,
            ProgramModel {
                load_fraction: 0.31,
                store_fraction: 0.18,
                branch_fraction: 0.11,
                working_set_bytes: 768 * 1024,
                random_access_fraction: 0.18,
                random_region_bytes: 16 * 1024 * 1024,
                branch_taken_bias: 0.82,
                branch_sites: 96,
                branch_noise: 0.10,
            },
            0.35,
        ));
        programs.push(ProgramProfile::new(
            122,
            "cryptominer", // mirrors numeric_benchmark
            Label::Malware,
            true,
            ProgramModel {
                load_fraction: 0.23,
                store_fraction: 0.09,
                branch_fraction: 0.10,
                working_set_bytes: 96 * 1024,
                random_access_fraction: 0.06,
                random_region_bytes: 8 * 1024 * 1024,
                branch_taken_bias: 0.88,
                branch_sites: 48,
                branch_noise: 0.06,
            },
            0.25,
        ));
        programs.push(ProgramProfile::new(
            123,
            "botnet_client", // mirrors web_server / background_sync
            Label::Malware,
            true,
            ProgramModel {
                load_fraction: 0.29,
                store_fraction: 0.11,
                branch_fraction: 0.17,
                working_set_bytes: 1536 * 1024,
                random_access_fraction: 0.38,
                random_region_bytes: 32 * 1024 * 1024,
                branch_taken_bias: 0.71,
                branch_sites: 384,
                branch_noise: 0.22,
            },
            0.40,
        ));
        programs.push(ProgramProfile::new(
            124,
            "spyware_scanner", // mirrors database_engine
            Label::Malware,
            true,
            ProgramModel {
                load_fraction: 0.37,
                store_fraction: 0.13,
                branch_fraction: 0.15,
                working_set_bytes: 5 * 1024 * 1024,
                random_access_fraction: 0.48,
                random_region_bytes: 64 * 1024 * 1024,
                branch_taken_bias: 0.69,
                branch_sites: 512,
                branch_noise: 0.22,
            },
            0.35,
        ));
        programs.push(ProgramProfile::new(
            125,
            "rootkit_patcher", // mirrors compiler
            Label::Malware,
            true,
            ProgramModel {
                load_fraction: 0.32,
                store_fraction: 0.14,
                branch_fraction: 0.18,
                working_set_bytes: 2 * 1024 * 1024,
                random_access_fraction: 0.32,
                random_region_bytes: 32 * 1024 * 1024,
                branch_taken_bias: 0.73,
                branch_sites: 768,
                branch_noise: 0.20,
            },
            0.35,
        ));
        programs.push(ProgramProfile::new(
            126,
            "adware_injector", // mirrors image_editor / web_server
            Label::Malware,
            true,
            ProgramModel {
                load_fraction: 0.29,
                store_fraction: 0.15,
                branch_fraction: 0.14,
                working_set_bytes: 3 * 1024 * 1024,
                random_access_fraction: 0.26,
                random_region_bytes: 24 * 1024 * 1024,
                branch_taken_bias: 0.78,
                branch_sites: 192,
                branch_noise: 0.15,
            },
            0.35,
        ));

        // -------- unknown programs (held out, still inside the overlap) -----
        programs.push(ProgramProfile::new(
            141,
            "unknown_media_transcoder",
            Label::Benign,
            false,
            ProgramModel {
                load_fraction: 0.30,
                store_fraction: 0.16,
                branch_fraction: 0.11,
                working_set_bytes: 1280 * 1024,
                random_access_fraction: 0.14,
                random_region_bytes: 16 * 1024 * 1024,
                branch_taken_bias: 0.84,
                branch_sites: 80,
                branch_noise: 0.09,
            },
            0.35,
        ));
        programs.push(ProgramProfile::new(
            142,
            "unknown_key_value_store",
            Label::Benign,
            false,
            ProgramModel {
                load_fraction: 0.36,
                store_fraction: 0.13,
                branch_fraction: 0.15,
                working_set_bytes: 4 * 1024 * 1024,
                random_access_fraction: 0.45,
                random_region_bytes: 48 * 1024 * 1024,
                branch_taken_bias: 0.70,
                branch_sites: 448,
                branch_noise: 0.20,
            },
            0.35,
        ));
        programs.push(ProgramProfile::new(
            143,
            "unknown_wiper_malware",
            Label::Malware,
            false,
            ProgramModel {
                load_fraction: 0.31,
                store_fraction: 0.19,
                branch_fraction: 0.12,
                working_set_bytes: 896 * 1024,
                random_access_fraction: 0.20,
                random_region_bytes: 24 * 1024 * 1024,
                branch_taken_bias: 0.80,
                branch_sites: 112,
                branch_noise: 0.12,
            },
            0.35,
        ));
        programs.push(ProgramProfile::new(
            144,
            "unknown_cryptojacker",
            Label::Malware,
            false,
            ProgramModel {
                load_fraction: 0.25,
                store_fraction: 0.09,
                branch_fraction: 0.11,
                working_set_bytes: 128 * 1024,
                random_access_fraction: 0.08,
                random_region_bytes: 8 * 1024 * 1024,
                branch_taken_bias: 0.87,
                branch_sites: 56,
                branch_noise: 0.07,
            },
            0.30,
        ));

        ProgramCatalog { programs }
    }

    /// All programs.
    pub fn programs(&self) -> &[ProgramProfile] {
        &self.programs
    }

    /// Programs in the known (trainable) bucket.
    pub fn known_programs(&self) -> Vec<&ProgramProfile> {
        self.programs.iter().filter(|p| p.known).collect()
    }

    /// Programs in the unknown (held-out) bucket.
    pub fn unknown_programs(&self) -> Vec<&ProgramProfile> {
        self.programs.iter().filter(|p| !p.known).collect()
    }

    /// Looks up a program by id.
    pub fn get(&self, id: AppId) -> Option<&ProgramProfile> {
        self.programs.iter().find(|p| p.id == id)
    }

    /// Number of programs in the catalog.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// `true` when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }
}

impl Default for ProgramCatalog {
    fn default() -> Self {
        ProgramCatalog::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_both_classes_in_both_buckets() {
        let catalog = ProgramCatalog::standard();
        let known = catalog.known_programs();
        let unknown = catalog.unknown_programs();
        assert!(known.iter().any(|p| p.label == Label::Benign));
        assert!(known.iter().any(|p| p.label == Label::Malware));
        assert!(unknown.iter().any(|p| p.label == Label::Benign));
        assert!(unknown.iter().any(|p| p.label == Label::Malware));
    }

    #[test]
    fn program_ids_are_unique_and_models_valid() {
        let catalog = ProgramCatalog::standard();
        let mut ids: Vec<u32> = catalog.programs().iter().map(|p| p.id.0).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
        for program in catalog.programs() {
            program.model.validate();
            assert!(program.behaviour_jitter >= 0.0);
        }
    }

    #[test]
    fn malware_profiles_mirror_benign_profiles() {
        // The catalog is constructed so that each malware family has a benign
        // counterpart with a near-identical instruction mix; verify the
        // closest benign neighbour of every malware profile is close in
        // parameter space (this is what creates the class overlap).
        let catalog = ProgramCatalog::standard();
        let benign: Vec<&ProgramProfile> = catalog
            .programs()
            .iter()
            .filter(|p| p.label == Label::Benign)
            .collect();
        for malware in catalog
            .programs()
            .iter()
            .filter(|p| p.label == Label::Malware)
        {
            let closest = benign
                .iter()
                .map(|b| {
                    let m = &malware.model;
                    let bm = &b.model;
                    (m.load_fraction - bm.load_fraction).abs()
                        + (m.store_fraction - bm.store_fraction).abs()
                        + (m.branch_fraction - bm.branch_fraction).abs()
                        + (m.random_access_fraction - bm.random_access_fraction).abs()
                })
                .fold(f64::INFINITY, f64::min);
            assert!(
                closest < 0.15,
                "{} has no close benign counterpart (distance {closest})",
                malware.name
            );
        }
    }

    #[test]
    fn lookup_by_id_works() {
        let catalog = ProgramCatalog::standard();
        assert_eq!(catalog.get(AppId(122)).unwrap().name, "cryptominer");
        assert!(catalog.get(AppId(9999)).is_none());
    }
}
