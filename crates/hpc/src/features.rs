//! Feature extraction from hardware counter samples.
//!
//! Raw counters scale with the interval length, so — following Zhou et al. —
//! every event count is normalised to events per kilo-instruction (PKI) and
//! complemented with the standard derived rates (IPC, miss rates).

use crate::counters::CounterSet;
use serde::{Deserialize, Serialize};

/// Converts counter samples into fixed-length feature vectors.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HpcFeatureExtractor;

impl HpcFeatureExtractor {
    /// Creates the extractor.
    pub fn new() -> HpcFeatureExtractor {
        HpcFeatureExtractor
    }

    /// Names of the extracted features, in output order.
    pub fn feature_names(&self) -> Vec<String> {
        [
            "ipc",
            "cycles_pki",
            "branches_pki",
            "branch_miss_rate",
            "branch_misses_pki",
            "l1d_accesses_pki",
            "l1d_miss_rate",
            "l1d_misses_pki",
            "llc_accesses_pki",
            "llc_miss_rate",
            "llc_misses_pki",
            "loads_pki",
            "stores_pki",
            "load_store_ratio",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    }

    /// Number of features per sample.
    pub fn num_features(&self) -> usize {
        self.feature_names().len()
    }

    /// Extracts the feature vector of one counter sample.
    pub fn extract(&self, counters: &CounterSet) -> Vec<f64> {
        let load_store_ratio = if counters.stores == 0 {
            counters.loads as f64
        } else {
            counters.loads as f64 / counters.stores as f64
        };
        vec![
            counters.ipc(),
            counters.per_kilo_instruction(counters.cycles),
            counters.per_kilo_instruction(counters.branches),
            counters.branch_miss_rate(),
            counters.per_kilo_instruction(counters.branch_misses),
            counters.per_kilo_instruction(counters.l1d_accesses),
            counters.l1d_miss_rate(),
            counters.per_kilo_instruction(counters.l1d_misses),
            counters.per_kilo_instruction(counters.llc_accesses),
            counters.llc_miss_rate(),
            counters.per_kilo_instruction(counters.llc_misses),
            counters.per_kilo_instruction(counters.loads),
            counters.per_kilo_instruction(counters.stores),
            load_store_ratio,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters() -> CounterSet {
        CounterSet {
            instructions: 4000,
            cycles: 9000,
            branches: 600,
            branch_misses: 60,
            l1d_accesses: 1600,
            l1d_misses: 200,
            llc_accesses: 200,
            llc_misses: 50,
            loads: 1100,
            stores: 500,
        }
    }

    #[test]
    fn feature_count_matches_names() {
        let extractor = HpcFeatureExtractor::new();
        let features = extractor.extract(&sample_counters());
        assert_eq!(features.len(), extractor.num_features());
        assert_eq!(features.len(), extractor.feature_names().len());
    }

    #[test]
    fn features_are_finite_and_consistent() {
        let extractor = HpcFeatureExtractor::new();
        let c = sample_counters();
        let features = extractor.extract(&c);
        assert!(features.iter().all(|f| f.is_finite()));
        // ipc
        assert!((features[0] - 4000.0 / 9000.0).abs() < 1e-12);
        // branches per kilo-instruction
        assert!((features[2] - 150.0).abs() < 1e-12);
        // load/store ratio
        assert!((features[13] - 2.2).abs() < 1e-12);
    }

    #[test]
    fn zero_counters_produce_zero_features() {
        let extractor = HpcFeatureExtractor::new();
        let features = extractor.extract(&CounterSet::new());
        assert!(features.iter().all(|f| *f == 0.0));
    }

    #[test]
    fn zero_stores_does_not_divide_by_zero() {
        let extractor = HpcFeatureExtractor::new();
        let mut c = sample_counters();
        c.stores = 0;
        let features = extractor.extract(&c);
        assert!(features.iter().all(|f| f.is_finite()));
    }
}
