//! HPC corpus generation: sampling counter vectors for every program in the
//! catalog and assembling the paper's train / known-test / unknown split
//! (Table I, HPC block: 44 605 / 6 372 / 12 727 samples).

use crate::apps::{ProgramCatalog, ProgramProfile};
use crate::features::HpcFeatureExtractor;
use crate::sampler::Sampler;
use hmd_data::split::{known_unknown_split, KnownUnknownSplit};
use hmd_data::{DataError, Dataset, Matrix, SampleMeta};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Builder for HPC signature corpora.
///
/// # Example
///
/// ```
/// use hmd_hpc::dataset::HpcCorpusBuilder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let corpus = HpcCorpusBuilder::new().with_samples_per_app(4).build_corpus(1)?;
/// assert_eq!(corpus.num_features(), 14);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HpcCorpusBuilder {
    /// Counter sampler configuration.
    pub sampler: Sampler,
    /// Samples (sampling intervals) collected per known program.
    pub samples_per_known_app: usize,
    /// Samples collected per unknown program.
    pub samples_per_unknown_app: usize,
    /// Fraction of known samples held out as the known test set.
    pub test_fraction: f64,
}

impl HpcCorpusBuilder {
    /// A small corpus suitable for unit and integration tests
    /// (20 samples per known program, 12 per unknown program).
    pub fn new() -> HpcCorpusBuilder {
        HpcCorpusBuilder {
            sampler: Sampler::new(),
            samples_per_known_app: 20,
            samples_per_unknown_app: 12,
            test_fraction: 0.125,
        }
    }

    /// The corpus scale of the paper's Table I: 14 known programs × 3 641
    /// samples ≈ 50 977 known vectors (44 605 train / 6 372 test at a 12.5 %
    /// split) and 4 unknown programs × 3 182 ≈ 12 727 unknown vectors.
    ///
    /// Generating this corpus simulates ~280 M instructions; use
    /// [`HpcCorpusBuilder::bench_scale`] for interactive runs.
    pub fn paper_scale() -> HpcCorpusBuilder {
        HpcCorpusBuilder {
            sampler: Sampler::new(),
            samples_per_known_app: 3641,
            samples_per_unknown_app: 3182,
            test_fraction: 0.125,
        }
    }

    /// A mid-sized corpus for benchmarks (≈ 4 200 known + 1 200 unknown
    /// samples) that preserves the paper's known/unknown proportions.
    pub fn bench_scale() -> HpcCorpusBuilder {
        HpcCorpusBuilder {
            sampler: Sampler::new(),
            samples_per_known_app: 300,
            samples_per_unknown_app: 300,
            test_fraction: 0.125,
        }
    }

    /// Sets both per-program sample counts to the same value.
    pub fn with_samples_per_app(mut self, n: usize) -> Self {
        self.samples_per_known_app = n;
        self.samples_per_unknown_app = n;
        self
    }

    /// Sets the known-test fraction.
    pub fn with_test_fraction(mut self, fraction: f64) -> Self {
        self.test_fraction = fraction;
        self
    }

    /// Generates the feature vector of a single fresh sampling interval for
    /// one program (used by the online-monitoring example).
    pub fn simulate_signature<R: Rng>(&self, program: &ProgramProfile, rng: &mut R) -> Vec<f64> {
        let extractor = HpcFeatureExtractor::new();
        let counters = self.sampler.sample_program(program, 1, rng);
        extractor.extract(&counters[0])
    }

    /// Generates the full corpus (all programs, with per-sample program
    /// metadata).
    ///
    /// # Errors
    ///
    /// Returns a [`DataError`] if the generated matrix is inconsistent, which
    /// indicates a bug rather than a user error.
    pub fn build_corpus(&self, seed: u64) -> Result<Dataset, DataError> {
        let catalog = ProgramCatalog::standard();
        let extractor = HpcFeatureExtractor::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        let mut meta = Vec::new();
        for program in catalog.programs() {
            let count = if program.known {
                self.samples_per_known_app
            } else {
                self.samples_per_unknown_app
            };
            let samples = self.sampler.sample_program(program, count, &mut rng);
            for counters in samples {
                rows.push(extractor.extract(&counters));
                labels.push(program.label);
                meta.push(if program.known {
                    SampleMeta::known(program.id)
                } else {
                    SampleMeta::unknown(program.id)
                });
            }
        }
        let features = Matrix::from_rows(&rows)?;
        let mut dataset = Dataset::with_meta(features, labels, meta)?;
        dataset.set_feature_names(extractor.feature_names())?;
        Ok(dataset)
    }

    /// Generates the corpus and splits it into train / known-test / unknown.
    ///
    /// # Errors
    ///
    /// Propagates corpus-generation and splitting errors.
    pub fn build_split(&self, seed: u64) -> Result<KnownUnknownSplit, DataError> {
        let corpus = self.build_corpus(seed)?;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        known_unknown_split(&corpus, self.test_fraction, &mut rng)
    }
}

impl Default for HpcCorpusBuilder {
    fn default() -> Self {
        HpcCorpusBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hmd_data::Label;

    #[test]
    fn corpus_has_expected_size_and_metadata() {
        let builder = HpcCorpusBuilder::new().with_samples_per_app(5);
        let corpus = builder.build_corpus(1).unwrap();
        let catalog = ProgramCatalog::standard();
        assert_eq!(corpus.len(), catalog.len() * 5);
        assert_eq!(corpus.meta().len(), corpus.len());
        assert_eq!(
            corpus.num_features(),
            HpcFeatureExtractor::new().num_features()
        );
        assert!(corpus.features().as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn split_respects_unknown_programs() {
        let split = HpcCorpusBuilder::new()
            .with_samples_per_app(8)
            .build_split(2)
            .unwrap();
        assert!(split.unknown.meta().iter().all(|m| m.unknown_app));
        assert!(split.train.meta().iter().all(|m| !m.unknown_app));
        let counts = split.train.class_counts();
        assert!(counts[0] > 0 && counts[1] > 0);
    }

    #[test]
    fn paper_scale_matches_table_one_proportions() {
        let builder = HpcCorpusBuilder::paper_scale();
        let known_total = 14 * builder.samples_per_known_app;
        let unknown_total = 4 * builder.samples_per_unknown_app;
        // Table I: 44 605 train + 6 372 test = 50 977 known, 12 727 unknown.
        assert_eq!(known_total, 50_974);
        assert_eq!(unknown_total, 12_728);
        assert!((builder.test_fraction - 0.125).abs() < 1e-12);
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let builder = HpcCorpusBuilder::new().with_samples_per_app(3);
        let a = builder.build_corpus(7).unwrap();
        let b = builder.build_corpus(7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn benign_and_malware_counter_distributions_overlap() {
        // The defining property of the HPC corpus: class centroids are close
        // relative to the within-class spread (unlike the DVFS corpus).
        let corpus = HpcCorpusBuilder::new()
            .with_samples_per_app(15)
            .build_corpus(3)
            .unwrap();
        let features = corpus.features();
        let d = corpus.num_features();
        let mut centroid = [vec![0.0; d], vec![0.0; d]];
        let mut counts = [0.0, 0.0];
        for i in 0..corpus.len() {
            let class = corpus.labels()[i].index();
            for (c, v) in centroid[class].iter_mut().zip(features.row(i)) {
                *c += v;
            }
            counts[class] += 1.0;
        }
        for class in 0..2 {
            for c in centroid[class].iter_mut() {
                *c /= counts[class];
            }
        }
        // Average per-feature standard deviation (pooled)
        let stds = features.column_stds();
        let mut normalised_distance = 0.0;
        let mut used = 0usize;
        for j in 0..d {
            if stds[j] > 1e-9 {
                normalised_distance += ((centroid[0][j] - centroid[1][j]) / stds[j]).powi(2);
                used += 1;
            }
        }
        let distance = (normalised_distance / used as f64).sqrt();
        assert!(
            distance < 1.0,
            "benign/malware centroids should be within one pooled standard deviation, got {distance}"
        );
    }

    #[test]
    fn labels_match_catalog_assignments() {
        let corpus = HpcCorpusBuilder::new()
            .with_samples_per_app(2)
            .build_corpus(4)
            .unwrap();
        let catalog = ProgramCatalog::standard();
        for i in 0..corpus.len() {
            let app = corpus.meta()[i].app;
            let expected = catalog.get(app).unwrap().label;
            assert_eq!(corpus.labels()[i], expected);
        }
        assert!(corpus.labels().contains(&Label::Malware));
    }
}
