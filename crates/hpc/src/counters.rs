//! The set of hardware performance counters the simulated core exposes.

use serde::{Deserialize, Serialize};
use std::ops::AddAssign;

/// One sampling interval's worth of hardware performance counter readings.
///
/// The counter selection follows Zhou et al.: retired instructions, cycles,
/// branches and branch mispredictions, L1 data-cache and last-level-cache
/// accesses and misses, plus load/store counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSet {
    /// Retired instructions.
    pub instructions: u64,
    /// Elapsed core cycles.
    pub cycles: u64,
    /// Retired branch instructions.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_misses: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// Last-level-cache accesses.
    pub llc_accesses: u64,
    /// Last-level-cache misses.
    pub llc_misses: u64,
    /// Retired load instructions.
    pub loads: u64,
    /// Retired store instructions.
    pub stores: u64,
}

impl CounterSet {
    /// An all-zero counter set.
    pub fn new() -> CounterSet {
        CounterSet::default()
    }

    /// Instructions per cycle; 0 when no cycles elapsed.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate; 0 when no branches retired.
    pub fn branch_miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_misses as f64 / self.branches as f64
        }
    }

    /// L1 data-cache miss rate; 0 when no accesses.
    pub fn l1d_miss_rate(&self) -> f64 {
        if self.l1d_accesses == 0 {
            0.0
        } else {
            self.l1d_misses as f64 / self.l1d_accesses as f64
        }
    }

    /// Last-level-cache miss rate; 0 when no accesses.
    pub fn llc_miss_rate(&self) -> f64 {
        if self.llc_accesses == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.llc_accesses as f64
        }
    }

    /// Events per kilo-instruction, the normalisation used by the feature
    /// extractor; 0 when no instructions retired.
    pub fn per_kilo_instruction(&self, events: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            events as f64 * 1000.0 / self.instructions as f64
        }
    }
}

impl AddAssign for CounterSet {
    fn add_assign(&mut self, rhs: CounterSet) {
        self.instructions += rhs.instructions;
        self.cycles += rhs.cycles;
        self.branches += rhs.branches;
        self.branch_misses += rhs.branch_misses;
        self.l1d_accesses += rhs.l1d_accesses;
        self.l1d_misses += rhs.l1d_misses;
        self.llc_accesses += rhs.llc_accesses;
        self.llc_misses += rhs.llc_misses;
        self.loads += rhs.loads;
        self.stores += rhs.stores;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_denominators() {
        let c = CounterSet::new();
        assert_eq!(c.ipc(), 0.0);
        assert_eq!(c.branch_miss_rate(), 0.0);
        assert_eq!(c.l1d_miss_rate(), 0.0);
        assert_eq!(c.llc_miss_rate(), 0.0);
        assert_eq!(c.per_kilo_instruction(5), 0.0);
    }

    #[test]
    fn rates_match_hand_computation() {
        let c = CounterSet {
            instructions: 1000,
            cycles: 2000,
            branches: 100,
            branch_misses: 10,
            l1d_accesses: 400,
            l1d_misses: 40,
            llc_accesses: 40,
            llc_misses: 8,
            loads: 250,
            stores: 150,
        };
        assert!((c.ipc() - 0.5).abs() < 1e-12);
        assert!((c.branch_miss_rate() - 0.1).abs() < 1e-12);
        assert!((c.l1d_miss_rate() - 0.1).abs() < 1e-12);
        assert!((c.llc_miss_rate() - 0.2).abs() < 1e-12);
        assert!((c.per_kilo_instruction(c.branches) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates_every_field() {
        let mut a = CounterSet {
            instructions: 1,
            cycles: 2,
            branches: 3,
            branch_misses: 4,
            l1d_accesses: 5,
            l1d_misses: 6,
            llc_accesses: 7,
            llc_misses: 8,
            loads: 9,
            stores: 10,
        };
        a += a;
        assert_eq!(a.instructions, 2);
        assert_eq!(a.stores, 20);
        assert_eq!(a.llc_misses, 16);
    }
}
