//! Seeded transport chaos tests: the wire protocol under scheduled
//! misbehaviour.
//!
//! Every test runs a real loopback [`FleetServer`] over a supervised
//! [`ShardedFleet`] and drives it through [`FleetClient`] (or a raw
//! socket, for the protocol-violation cases) while the transport half of a
//! deterministic [`FaultPlan`] injects dropped connections, slow reads,
//! truncated frames and garbage frames. The contracts proved here:
//!
//! * rows that survive the chaos score **bit-identically** to calling
//!   `detect_batch` on the same model directly — the process boundary
//!   never perturbs a result;
//! * the client recovers from every connection fault through reconnect
//!   plus seeded exponential backoff, and only for idempotent requests;
//! * backpressure **sheds instead of buffering**: row budgets surface as
//!   `Overloaded` error frames, pipelining is bounded by the in-flight
//!   budget, and connections beyond the cap are refused with one frame;
//! * protocol violations (version skew, oversized frames) are answered
//!   with stable error codes and a closed connection.

use hmd_codec::frame::{encode_frame, FrameHeader, HEADER_LEN};
use hmd_codec::Json;
use hmd_core::detector::{Detector, DetectorBackend, DetectorConfig, DetectorExt};
use hmd_data::{Dataset, Label, Matrix};
use hmd_serve::net::wire::{
    Request, CODE_FRAME_TOO_LARGE, CODE_VERSION_MISMATCH, PROTOCOL_VERSION,
};
use hmd_serve::{
    AdmissionPolicy, BreakerState, ClientConfig, FaultPlan, FleetClient, FleetError, FleetServer,
    FlushPolicy, NetError, RetryPolicy, ServerConfig, ShardConfig, ShardedFleet,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn blobs(n: usize, features: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..n {
        let malware = rng.gen_bool(0.5);
        let c = if malware { 2.0 } else { -2.0 };
        rows.push(
            (0..features)
                .map(|f| {
                    if f < 2 {
                        c + rng.gen_range(-0.8..0.8)
                    } else {
                        rng.gen_range(-1.0..1.0)
                    }
                })
                .collect(),
        );
        labels.push(Label::from(malware));
    }
    Dataset::new(Matrix::from_rows(&rows).unwrap(), labels).unwrap()
}

fn request_matrix(rows: usize, features: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f64> = (0..rows * features)
        .map(|_| rng.gen_range(-3.0..3.0))
        .collect();
    Matrix::from_vec(rows, features, data).unwrap()
}

/// Seeded training is deterministic: the same arguments produce
/// bit-identical detectors, which is how these tests hold a local
/// reference copy of the model the server serves.
fn trained(num_estimators: usize, seed: u64) -> Box<dyn Detector> {
    DetectorConfig::trusted(DetectorBackend::random_forest())
        .with_num_estimators(num_estimators)
        .with_entropy_threshold(0.4)
        .fit(&blobs(140, 4, 11), seed)
        .expect("training succeeds")
}

fn assert_bit_identical(
    a: &hmd_core::trusted::DetectionReport,
    b: &hmd_core::trusted::DetectionReport,
    context: &str,
) {
    assert_eq!(
        a.prediction.entropy.to_bits(),
        b.prediction.entropy.to_bits(),
        "{context}: entropy"
    );
    assert_eq!(
        a.prediction.malware_vote_fraction.to_bits(),
        b.prediction.malware_vote_fraction.to_bits(),
        "{context}: vote fraction"
    );
    assert_eq!(a, b, "{context}");
}

/// A served fleet with one deployed endpoint, plus the reference direct
/// scores for `rows` request rows.
fn serve(
    seed: u64,
    rows: usize,
    config: ServerConfig,
) -> (
    FleetServer,
    Arc<ShardedFleet>,
    Matrix,
    Vec<hmd_core::trusted::DetectionReport>,
) {
    let fleet = Arc::new(ShardedFleet::with_config(
        ShardConfig::new(2).with_flush(FlushPolicy::new(4096, Duration::from_secs(10))),
    ));
    fleet.deploy("hmd", trained(9, seed)).expect("deploys");
    let requests = request_matrix(rows, 4, seed.wrapping_add(1));
    let direct = trained(9, seed).detect_batch(&requests).expect("direct");
    let server = FleetServer::bind(Arc::clone(&fleet), config).expect("binds");
    (server, fleet, requests, direct)
}

/// Fast, deterministic retry for tests: generous attempts, millisecond
/// backoff.
fn fast_retry() -> RetryPolicy {
    RetryPolicy::new()
        .with_max_attempts(6)
        .with_backoff(Duration::from_millis(1), Duration::from_millis(8))
        .with_jitter_seed(42)
}

fn client(server: &FleetServer) -> FleetClient {
    FleetClient::connect(
        server.local_addr(),
        ClientConfig::new().with_retry(fast_retry()),
    )
    .expect("connects")
}

/// With no faults at all, every request kind round-trips and single-row
/// scores are bit-identical to direct scoring — the wire codec never
/// perturbs an f64.
#[test]
fn clean_round_trip_is_bit_identical_to_direct_scoring() {
    let (server, _fleet, requests, direct) = serve(101, 8, ServerConfig::new());
    let mut client = client(&server);

    for (row, expected) in direct.iter().enumerate() {
        let report = client.score("hmd", requests.row(row)).expect("scores");
        assert_eq!(report.version, 1);
        assert_bit_identical(&report.report, expected, &format!("row {row}"));
    }
    let batch = client.score_batch("hmd", &requests).expect("batch scores");
    assert_eq!(batch.len(), direct.len());
    for (row, (scored, expected)) in batch.iter().zip(direct.iter()).enumerate() {
        assert_bit_identical(&scored.report, expected, &format!("batch row {row}"));
    }
    assert_eq!(client.flush("hmd").expect("flush"), 0, "tiles were drained");
    let health = client.health("hmd").expect("health");
    assert_eq!(health.len(), 2, "one snapshot per replica");
    assert!(health.iter().all(|h| h.breaker == BreakerState::Closed));
    assert_eq!(client.stats().retries, 0, "no faults, no retries");

    let stats = server.stats();
    assert_eq!(stats.accepted, 1);
    assert_eq!(stats.faults_injected, 0);
    assert!(stats.frames_read >= 11, "8 scores + batch + flush + health");
}

/// A dropped connection mid-stream: the client reconnects, retries with
/// backoff, and every row still scores bit-identically.
#[test]
fn dropped_connection_recovers_via_reconnect_and_backoff() {
    let (server, _fleet, requests, direct) = serve(
        102,
        6,
        ServerConfig::new().with_fault_plan(FaultPlan::new().drop_connection(3)),
    );
    let mut client = client(&server);

    for (row, expected) in direct.iter().enumerate() {
        let report = client.score("hmd", requests.row(row)).expect("recovers");
        assert_bit_identical(&report.report, expected, &format!("row {row}"));
    }
    let stats = client.stats();
    assert!(
        stats.connects >= 2,
        "the drop forced a reconnect: {stats:?}"
    );
    assert!(stats.retries >= 1, "the drop forced a retry: {stats:?}");
    assert_eq!(server.stats().faults_injected, 1);
}

/// A slow reader delays one response past the fault's stall but corrupts
/// nothing; the client's response timeout is generous enough to wait it
/// out without a retry.
#[test]
fn slow_reader_delays_but_never_corrupts() {
    let delay = Duration::from_millis(40);
    let (server, _fleet, requests, direct) = serve(
        103,
        4,
        ServerConfig::new().with_fault_plan(FaultPlan::new().slow_reader(2, delay)),
    );
    let mut client = client(&server);

    let start = Instant::now();
    for (row, expected) in direct.iter().enumerate() {
        let report = client.score("hmd", requests.row(row)).expect("scores");
        assert_bit_identical(&report.report, expected, &format!("row {row}"));
    }
    assert!(start.elapsed() >= delay, "the stall really happened");
    assert_eq!(client.stats().retries, 0, "a slow frame is not a fault");
    assert_eq!(server.stats().faults_injected, 1);
}

/// A truncated response frame (header or payload cut mid-write, then the
/// connection closed): the client sees an unusable stream, reconnects,
/// and re-scores — bit-identically.
#[test]
fn truncated_response_frame_triggers_reconnect_and_retry() {
    let (server, _fleet, requests, direct) = serve(
        104,
        6,
        ServerConfig::new().with_fault_plan(FaultPlan::new().truncate_frame(2)),
    );
    let mut client = client(&server);

    for (row, expected) in direct.iter().enumerate() {
        let report = client.score("hmd", requests.row(row)).expect("recovers");
        assert_bit_identical(&report.report, expected, &format!("row {row}"));
    }
    let stats = client.stats();
    assert!(
        stats.connects >= 2,
        "truncation forced a reconnect: {stats:?}"
    );
    assert!(stats.retries >= 1, "truncation forced a retry: {stats:?}");
    assert_eq!(server.stats().faults_injected, 1);
}

/// A garbage frame (corrupted magic): with no self-synchronising
/// delimiter the client must treat the stream as lost, reconnect, and
/// retry — never attempt a resync that could mis-frame a later payload.
#[test]
fn garbage_frame_is_unrecoverable_on_that_connection_but_retried() {
    let (server, _fleet, requests, direct) = serve(
        105,
        6,
        ServerConfig::new().with_fault_plan(FaultPlan::new().garbage_frame(2)),
    );
    let mut client = client(&server);

    for (row, expected) in direct.iter().enumerate() {
        let report = client.score("hmd", requests.row(row)).expect("recovers");
        assert_bit_identical(&report.report, expected, &format!("row {row}"));
    }
    let stats = client.stats();
    assert!(stats.connects >= 2, "garbage forced a reconnect: {stats:?}");
    assert!(stats.retries >= 1, "garbage forced a retry: {stats:?}");
    assert_eq!(server.stats().faults_injected, 1);
}

/// The full fault mix in one schedule — drop, slow, truncate, garbage —
/// across a longer run: every fault fires exactly once, the client
/// recovers from each, and every surviving row is bit-identical.
#[test]
fn mixed_transport_faults_all_fire_and_all_recover() {
    let plan = FaultPlan::new()
        .drop_connection(2)
        .slow_reader(5, Duration::from_millis(10))
        .truncate_frame(4)
        .garbage_frame(8);
    let (server, _fleet, requests, direct) =
        serve(106, 12, ServerConfig::new().with_fault_plan(plan));
    let mut client = client(&server);

    for (row, expected) in direct.iter().enumerate() {
        let report = client.score("hmd", requests.row(row)).expect("recovers");
        assert_bit_identical(&report.report, expected, &format!("row {row}"));
    }
    assert_eq!(
        server.stats().faults_injected,
        4,
        "lifetime frame counting fires each fault exactly once"
    );
    assert!(client.stats().retries >= 3, "drop + truncate + garbage");
}

/// Satellite: replica redeploys racing transport faults. A writer thread
/// republishes the same model bits through `deploy_replicas` while the
/// client scores through the faulty transport; every response is
/// bit-identical regardless of which version served it, and no breaker
/// ever trips — transport chaos must not be mistaken for model failure.
#[test]
fn replica_redeploys_race_transport_faults_without_tripping_breakers() {
    let plan = FaultPlan::new()
        .drop_connection(3)
        .truncate_frame(7)
        .slow_reader(10, Duration::from_millis(5));
    let (server, fleet, requests, direct) =
        serve(107, 16, ServerConfig::new().with_fault_plan(plan));
    let mut client = client(&server);

    let deployer = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || {
            for _ in 0..6 {
                fleet
                    .deploy_replicas("hmd", vec![trained(9, 107), trained(9, 107)])
                    .expect("redeploy");
                std::thread::sleep(Duration::from_millis(3));
            }
        })
    };
    for (row, expected) in direct.iter().enumerate() {
        let report = client.score("hmd", requests.row(row)).expect("recovers");
        assert_bit_identical(&report.report, expected, &format!("row {row}"));
    }
    deployer.join().expect("deployer thread");

    assert_eq!(
        fleet.breaker_states("hmd").expect("states"),
        vec![BreakerState::Closed, BreakerState::Closed],
        "transport faults never reach the breakers"
    );
    assert_eq!(fleet.active_version("hmd").expect("version"), 7);
    assert_eq!(server.stats().faults_injected, 3);
}

/// Backpressure at the row layer crosses the wire: with the endpoint's
/// admission budget exhausted, a remote score is refused with an
/// `Overloaded` error frame carrying the exact depth and limit — and a
/// client with retry budget treats it as backpressure, backs off on the
/// *same* connection, and succeeds once the budget frees.
#[test]
fn admission_overload_crosses_the_wire_and_backoff_rides_it_out() {
    let fleet = Arc::new(ShardedFleet::with_config(
        ShardConfig::new(1)
            .with_flush(FlushPolicy::new(4096, Duration::from_secs(10)))
            .with_admission(AdmissionPolicy::new(4)),
    ));
    fleet.deploy("hmd", trained(9, 108)).expect("deploys");
    let server = FleetServer::bind(Arc::clone(&fleet), ServerConfig::new()).expect("binds");
    let requests = request_matrix(6, 4, 109);

    // Fill the whole budget in-process and hold the tickets open.
    let held: Vec<_> = (0..4)
        .map(|row| fleet.score("hmd", requests.row(row)).expect("admitted"))
        .collect();

    // A no-retry client surfaces the typed error verbatim.
    let mut strict = FleetClient::connect(
        server.local_addr(),
        ClientConfig::new().with_retry(RetryPolicy::none()),
    )
    .expect("connects");
    let err = strict.score("hmd", requests.row(4)).unwrap_err();
    assert_eq!(
        err,
        NetError::Fleet(FleetError::Overloaded { depth: 4, limit: 4 }),
        "depth and limit cross the wire exactly"
    );
    assert_eq!(err.code(), Some(6));

    // A retrying client backs off while a helper frees the budget; the
    // connection is never dropped for a semantic error.
    let mut patient = FleetClient::connect(
        server.local_addr(),
        ClientConfig::new().with_retry(
            fast_retry().with_backoff(Duration::from_millis(5), Duration::from_millis(40)),
        ),
    )
    .expect("connects");
    let flusher = {
        let fleet = Arc::clone(&fleet);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            fleet.flush("hmd").expect("flush");
        })
    };
    let report = patient
        .score("hmd", requests.row(5))
        .expect("eventually admitted");
    flusher.join().expect("flusher thread");
    for ticket in held {
        ticket.wait().expect("held rows score");
    }
    let direct = trained(9, 108).detect_batch(&requests).expect("direct");
    assert_bit_identical(&report.report, &direct[5], "post-backoff row");
    let stats = patient.stats();
    assert!(
        stats.retries >= 1,
        "the overload forced a backoff: {stats:?}"
    );
    assert_eq!(
        stats.connects, 1,
        "backpressure retries reuse the connection"
    );
}

/// Backpressure at the frame layer: a raw socket pipelines far more score
/// requests than the in-flight budget. The server answers all of them, in
/// order, but `peak_inflight` proves it paused reads at the budget instead
/// of buffering the burst.
#[test]
fn pipelined_bursts_are_bounded_by_the_inflight_budget() {
    let budget = 4;
    let (server, _fleet, requests, direct) =
        serve(111, 16, ServerConfig::new().with_inflight_budget(budget));

    let mut socket = TcpStream::connect(server.local_addr()).expect("connects");
    socket.set_nodelay(true).expect("nodelay");
    let mut burst = Vec::new();
    for row in 0..requests.rows() {
        let request = Request::ScoreRow {
            endpoint: "hmd".to_string(),
            key: None,
            row: requests.row(row).to_vec(),
        };
        let payload = request.to_json().to_string();
        burst.extend_from_slice(
            &encode_frame(PROTOCOL_VERSION, request.kind().as_u8(), &payload).expect("frame"),
        );
    }
    socket.write_all(&burst).expect("burst written");

    for (row, reference) in direct.iter().enumerate() {
        let (header, payload) = read_frame(&mut socket).expect("response frame");
        assert_eq!(header.kind, 0x81, "responses arrive in request order");
        let json = Json::parse(&payload).expect("payload parses");
        let entropy = json
            .get("entropy")
            .and_then(Json::as_f64)
            .expect("entropy field");
        assert_eq!(
            entropy.to_bits(),
            reference.prediction.entropy.to_bits(),
            "row {row} entropy crosses the pipeline bit-identically"
        );
    }
    let stats = server.stats();
    assert!(
        stats.peak_inflight <= budget,
        "reads paused at the budget: peak {} > budget {budget}",
        stats.peak_inflight
    );
    assert_eq!(stats.frames_written, 16);
}

/// Connections beyond the cap are shed with a single `Overloaded` error
/// frame and closed — never queued behind the active connection.
#[test]
fn connections_beyond_the_cap_are_shed_with_one_frame() {
    let (server, _fleet, requests, _direct) =
        serve(112, 2, ServerConfig::new().with_max_connections(1));
    let mut first = client(&server);
    first
        .score("hmd", requests.row(0))
        .expect("first client scores");

    let mut second = TcpStream::connect(server.local_addr()).expect("connects");
    let (header, payload) = read_frame(&mut second).expect("shed frame");
    assert_eq!(header.kind, 0xFF);
    let json = Json::parse(&payload).expect("payload parses");
    let code = json.get("code").and_then(Json::as_i64).expect("code field");
    assert_eq!(
        u16::try_from(code).expect("code fits"),
        FleetError::Overloaded { depth: 1, limit: 1 }.code(),
        "connection shedding reuses the Overloaded code"
    );
    let mut rest = Vec::new();
    second.read_to_end(&mut rest).expect("reads to EOF");
    assert!(rest.is_empty(), "one frame, then close");
    assert_eq!(server.stats().shed_connections, 1);

    // The active client is unaffected.
    first.score("hmd", requests.row(1)).expect("still serving");
}

/// Version skew is rejected before any payload is interpreted: the error
/// frame carries the stable mismatch code and the server's own version,
/// then the connection closes.
#[test]
fn version_mismatch_is_rejected_with_the_stable_code() {
    let (server, _fleet, _requests, _direct) = serve(113, 1, ServerConfig::new());
    let mut socket = TcpStream::connect(server.local_addr()).expect("connects");
    let payload = Json::object(vec![("endpoint", Json::Str("hmd".to_string()))]).to_string();
    socket
        .write_all(&encode_frame(9, 0x06, &payload).expect("frame"))
        .expect("written");

    let (header, payload) = read_frame(&mut socket).expect("error frame");
    assert_eq!(header.kind, 0xFF);
    assert_eq!(header.version, PROTOCOL_VERSION);
    let json = Json::parse(&payload).expect("payload parses");
    let code = json.get("code").and_then(Json::as_i64).expect("code");
    assert_eq!(code, i64::from(CODE_VERSION_MISMATCH));
    assert_eq!(json.get("ours").and_then(Json::as_i64).expect("ours"), 1);
    assert_eq!(
        json.get("theirs").and_then(Json::as_i64).expect("theirs"),
        9
    );
    let mut rest = Vec::new();
    socket.read_to_end(&mut rest).expect("reads to EOF");
    assert!(rest.is_empty(), "the connection closes after the frame");
}

/// A frame announcing a payload beyond the server's limit is refused from
/// the header alone — before any payload allocation — with the stable
/// code, then the connection closes.
#[test]
fn oversized_frames_are_refused_before_allocation() {
    let (server, _fleet, _requests, _direct) =
        serve(114, 1, ServerConfig::new().with_max_frame_bytes(256));
    let mut socket = TcpStream::connect(server.local_addr()).expect("connects");
    // Header only: announce 1 MiB but never send it. The refusal must not
    // wait for (or buffer) the payload.
    let header = FrameHeader {
        version: PROTOCOL_VERSION,
        kind: 0x06,
        len: 1 << 20,
    };
    socket.write_all(&header.encode()).expect("header written");

    let (reply, payload) = read_frame(&mut socket).expect("error frame");
    assert_eq!(reply.kind, 0xFF);
    let json = Json::parse(&payload).expect("payload parses");
    let code = json.get("code").and_then(Json::as_i64).expect("code");
    assert_eq!(code, i64::from(CODE_FRAME_TOO_LARGE));
    assert_eq!(
        json.get("len").and_then(Json::as_i64).expect("len"),
        1 << 20
    );
    let mut rest = Vec::new();
    socket.read_to_end(&mut rest).expect("reads to EOF");
    assert!(rest.is_empty(), "the connection closes after the frame");
}

/// Deploy, rollback and health are first-class protocol citizens: a new
/// version published over the wire serves immediately, rollback restores
/// the old bits, and health reflects the traffic.
#[test]
fn deploy_rollback_and_health_round_trip_over_the_wire() {
    let (server, _fleet, requests, direct_v1) = serve(115, 4, ServerConfig::new());
    let mut client = client(&server);

    let v2_model = trained(15, 116);
    let direct_v2 = v2_model.detect_batch(&requests).expect("v2 direct");
    assert_eq!(client.deploy("hmd", v2_model.as_ref()).expect("deploy"), 2);
    for (row, expected) in direct_v2.iter().enumerate() {
        let report = client.score("hmd", requests.row(row)).expect("v2 scores");
        assert_eq!(report.version, 2);
        assert_bit_identical(&report.report, expected, &format!("v2 row {row}"));
    }

    assert_eq!(client.rollback("hmd").expect("rollback"), 1);
    for (row, expected) in direct_v1.iter().enumerate() {
        let report = client.score("hmd", requests.row(row)).expect("v1 scores");
        assert_eq!(report.version, 1);
        assert_bit_identical(&report.report, expected, &format!("v1 row {row}"));
    }

    let health = client.health("hmd").expect("health");
    assert_eq!(health.len(), 2);
    assert!(health.iter().all(|h| h.breaker == BreakerState::Closed));
    assert_eq!(health.iter().map(|h| h.pending_rows).sum::<usize>(), 0);
}

/// A transport fault after a non-idempotent request reached the wire must
/// surface as `InFlight`, not retry: replaying a rollback could walk the
/// version stack twice.
#[test]
fn non_idempotent_requests_surface_in_flight_instead_of_retrying() {
    let (server, fleet, _requests, _direct) = serve(
        117,
        1,
        // Frame 1 (the rollback request) is swallowed after the client's
        // write succeeded: the canonical "did it apply?" uncertainty.
        ServerConfig::new().with_fault_plan(FaultPlan::new().drop_connection(1)),
    );
    let mut client = client(&server);

    let err = client.rollback("hmd").unwrap_err();
    assert!(
        matches!(err, NetError::InFlight { .. }),
        "expected InFlight, got {err:?}"
    );
    assert_eq!(client.stats().retries, 0, "no blind retry");
    // The fault fired before execution, so the version is provably intact
    // — which is exactly what a careful caller would check next.
    assert_eq!(fleet.active_version("hmd").expect("version"), 1);
}

/// Semantic fleet errors reconstruct client-side with their stable codes:
/// an unknown endpoint is `UnknownEndpoint` (code 1) on both sides of the
/// wire, and the connection stays usable.
#[test]
fn fleet_errors_reconstruct_with_stable_codes() {
    let (server, _fleet, requests, _direct) = serve(118, 1, ServerConfig::new());
    let mut client = client(&server);

    let err = client.score("nope", requests.row(0)).unwrap_err();
    match &err {
        NetError::Fleet(FleetError::UnknownEndpoint { name }) => assert_eq!(name, "nope"),
        other => panic!("expected UnknownEndpoint, got {other:?}"),
    }
    assert_eq!(err.code(), Some(1));
    client.score("hmd", requests.row(0)).expect("still serving");
}

/// Reads one complete frame from a raw socket (test-side counterpart of
/// the incremental reader inside the client).
fn read_frame(socket: &mut TcpStream) -> std::io::Result<(FrameHeader, String)> {
    let mut head = [0u8; HEADER_LEN];
    socket.read_exact(&mut head)?;
    let header = FrameHeader::parse(&head)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.message))?;
    let mut payload = vec![0u8; header.len as usize];
    socket.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((header, text))
}
